"""Repo-level pytest configuration: make src/ importable without install."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
