"""Setuptools shim enabling legacy editable installs in offline envs."""

from setuptools import setup

setup()
