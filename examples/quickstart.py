#!/usr/bin/env python
"""Quickstart: index a few XML documents and run twig queries.

Run with::

    python examples/quickstart.py
"""

from repro import PrixIndex, parse_document, parse_xpath

CATALOG = [
    """<book year="1994">
         <title>TCP/IP Illustrated</title>
         <author><first>W.</first><last>Stevens</last></author>
         <publisher>Addison-Wesley</publisher>
       </book>""",
    """<book year="2000">
         <title>Data on the Web</title>
         <author><first>Serge</first><last>Abiteboul</last></author>
         <author><first>Peter</first><last>Buneman</last></author>
         <publisher>Morgan Kaufmann</publisher>
       </book>""",
    """<article year="2004">
         <title>PRIX: Indexing And Querying XML Using Prufer Sequences</title>
         <author><first>Praveen</first><last>Rao</last></author>
         <author><first>Bongki</first><last>Moon</last></author>
         <venue>ICDE</venue>
       </article>""",
]


def main():
    # 1. Parse documents (the parser is part of this library: no external
    #    XML dependencies).
    documents = [parse_document(text, doc_id=i + 1)
                 for i, text in enumerate(CATALOG)]

    # 2. Build the PRIX index.  Both sequence variants are built: RPIndex
    #    (Regular-Prufer) and EPIndex (Extended-Prufer, for value
    #    predicates).  Storage is an in-memory paged file by default;
    #    pass IndexOptions(path=...) for a disk file.
    index = PrixIndex.build(documents)
    print(f"indexed {index.doc_count} documents; "
          f"variants: {index.variants()}")

    # 3. Run twig queries.  Results are TwigMatch objects mapping each
    #    query node to a postorder position in the matched document.
    queries = [
        "//book/author/last",
        '//book[./publisher="Addison-Wesley"]/title',
        "//article[./author]//last",
        '//author[./last="Moon"]',
        "//book[./author][./publisher]",
    ]
    for xpath in queries:
        matches = index.query(parse_xpath(xpath))
        docs = sorted({m.doc_id for m in matches})
        print(f"\n  {xpath}")
        print(f"    {len(matches)} match(es) in documents {docs}")
        for match in matches[:3]:
            print(f"    doc {match.doc_id}: root node "
                  f"#{match.root_image}, images {match.images}")

    # 4. Inspect how a query was executed.
    matches, stats = index.query_with_stats(
        '//book[./publisher="Addison-Wesley"]/title', cold=True)
    print(f"\nexecution: variant={stats.variant} strategy={stats.strategy} "
          f"arrangements={stats.arrangements} "
          f"range_queries={stats.filter.range_queries} "
          f"pages_read={stats.physical_reads}")


if __name__ == "__main__":
    main()
