#!/usr/bin/env python
"""Incremental index maintenance: insert, delete, persist, reopen.

Demonstrates the dynamic labeling scheme of Section 5.2.1 doing the job
it exists for -- growing the virtual trie in place as new documents
arrive -- plus deletion, scope underflow with rebuild recovery, and the
save/open cycle.

Run with::

    python examples/incremental_updates.py
"""

import os
import tempfile

from repro import PrixIndex, parse_document
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions


def main():
    workdir = tempfile.mkdtemp(prefix="prix-demo-")
    path = os.path.join(workdir, "catalog.idx")

    # Build with the dynamic labeler so trie node ranges keep slack for
    # children that appear later (the default bulk labeler is gap-free
    # and rejects inserts with RebuildRequiredError).
    options = IndexOptions(labeler="dynamic", alpha=4, path=path)
    initial = [parse_document(
        f"<order id=\"{i}\"><customer>C{i % 3}</customer>"
        f"<total>{100 + i}</total></order>", doc_id=i + 1)
        for i in range(5)]
    index = PrixIndex.build(initial, options)
    print(f"built index over {index.doc_count} orders")
    print(f"  rp trie: {index.trie_stats('rp').node_count} nodes")

    # --- insert new documents without rebuilding ------------------------
    index.insert_document(parse_document(
        '<order id="99"><customer>C1</customer><total>500</total>'
        "<rush>yes</rush></order>", doc_id=99))
    matches = index.query('//order[./customer="C1"]')
    print(f"\nafter insert: {len(matches)} orders for customer C1 "
          f"(docs {sorted({m.doc_id for m in matches})})")
    rush = index.query("//order/rush")
    print(f"rush orders: {sorted({m.doc_id for m in rush})}")

    # --- delete ----------------------------------------------------------
    index.delete_document(1)
    matches = index.query("//order/customer")
    print(f"after deleting doc 1: {len(matches)} orders remain")

    # --- persist and reopen ----------------------------------------------
    index.save()
    index.close()
    reopened = PrixIndex.open(path)
    print(f"\nreopened from {path}: {reopened.doc_count} documents")
    reopened.insert_document(parse_document(
        "<order id=\"100\"><customer>C2</customer>"
        "<total>7</total></order>", doc_id=100))
    print(f"insert after reopen works: doc 100 found = "
          f"{any(m.doc_id == 100 for m in reopened.query('//order/total'))}")

    # --- scope underflow and rebuild recovery ----------------------------
    bulk_index = PrixIndex.build(
        [parse_document("<a><b/></a>", 1)])  # bulk labels: no slack
    try:
        bulk_index.insert_document(parse_document("<x><y/></x>", 2))
    except RebuildRequiredError as error:
        print(f"\nbulk-labeled index refused the insert as expected:\n"
              f"  {error}")
        fresh = bulk_index.rebuilt()
        print(f"rebuilt index holds {fresh.doc_count} documents; "
              f"//x/y -> {len(fresh.query('//x/y'))} match")
        fresh.close()

    bulk_index.close()
    reopened.close()
    os.unlink(path)
    os.rmdir(workdir)


if __name__ == "__main__":
    main()
