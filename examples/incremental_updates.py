#!/usr/bin/env python
"""Incremental index maintenance: insert, delete, persist, recover.

Demonstrates the dynamic labeling scheme of Section 5.2.1 doing the job
it exists for -- growing the virtual trie in place as new documents
arrive -- plus deletion, scope underflow with rebuild recovery, and the
durable save/open cycle: the index keeps a write-ahead log beside the
data file, so every ``insert_document`` + ``save`` pair is crash-safe
(see docs/DURABILITY.md).

Run with::

    python examples/incremental_updates.py
"""

import os
import tempfile

from repro import PrixIndex, parse_document
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions


def main():
    workdir = tempfile.mkdtemp(prefix="prix-demo-")
    path = os.path.join(workdir, "catalog.idx")
    wal_path = path + ".wal"

    # Build with the dynamic labeler so trie node ranges keep slack for
    # children that appear later (the default bulk labeler is gap-free
    # and rejects inserts with RebuildRequiredError), and durable=True
    # so mutations are write-ahead logged.
    options = IndexOptions(labeler="dynamic", alpha=4, path=path,
                           durable=True)
    initial = [parse_document(
        f"<order id=\"{i}\"><customer>C{i % 3}</customer>"
        f"<total>{100 + i}</total></order>", doc_id=i + 1)
        for i in range(5)]

    with PrixIndex.build(initial, options) as index:
        print(f"built durable index over {index.doc_count} orders")
        print(f"  rp trie: {index.trie_stats('rp').node_count} nodes")
        print(f"  write-ahead log: {index._pool.wal.size_bytes} bytes")

        # --- insert new documents without rebuilding --------------------
        index.insert_document(parse_document(
            '<order id="99"><customer>C1</customer><total>500</total>'
            "<rush>yes</rush></order>", doc_id=99))
        index.save()  # seals the insert batch: crash-safe from here on
        matches = index.query('//order[./customer="C1"]')
        print(f"\nafter insert: {len(matches)} orders for customer C1 "
              f"(docs {sorted({m.doc_id for m in matches})})")
        rush = index.query("//order/rush")
        print(f"rush orders: {sorted({m.doc_id for m in rush})}")

        # --- delete -----------------------------------------------------
        index.delete_document(1)
        index.save()
        matches = index.query("//order/customer")
        print(f"after deleting doc 1: {len(matches)} orders remain")

        # --- checkpoint: flush the pool, truncate the log ---------------
        before = index._pool.wal.size_bytes
        index.checkpoint()
        print(f"\ncheckpoint truncated the log "
              f"{before} -> {index._pool.wal.size_bytes} bytes")

    # --- reopen: the sidecar .wal makes open() pick durable mode --------
    with PrixIndex.open(path) as reopened:
        print(f"\nreopened from {path}: {reopened.doc_count} documents "
              f"(recovery ran automatically)")
        reopened.insert_document(parse_document(
            "<order id=\"100\"><customer>C2</customer>"
            "<total>7</total></order>", doc_id=100))
        reopened.save()
        found = any(m.doc_id == 100
                    for m in reopened.query("//order/total"))
        print(f"insert after reopen works: doc 100 found = {found}")

    # --- scope underflow and rebuild recovery ---------------------------
    with PrixIndex.build(
            [parse_document("<a><b/></a>", 1)]) as bulk_index:
        # bulk labels: no slack
        try:
            bulk_index.insert_document(parse_document("<x><y/></x>", 2))
        except RebuildRequiredError as error:
            print(f"\nbulk-labeled index refused the insert as expected:"
                  f"\n  {error}")
            with bulk_index.rebuilt() as fresh:
                print(f"rebuilt index holds {fresh.doc_count} documents; "
                      f"//x/y -> {len(fresh.query('//x/y'))} match")

    os.unlink(path)
    os.unlink(wal_path)
    os.rmdir(workdir)


if __name__ == "__main__":
    main()
