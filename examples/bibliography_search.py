#!/usr/bin/env python
"""Bibliography search over a DBLP-like corpus.

Demonstrates the scenario behind the paper's Q1-Q3: selective value
queries over many small, structurally similar records, and how the
query optimizer picks between RPIndex and EPIndex (Section 5.6).

Run with::

    python examples/bibliography_search.py [n_records]
"""

import sys

from repro import PrixIndex, parse_xpath
from repro.datasets import corpus_stats, dblp


def main(n_records=1500):
    corpus = dblp(n_records=n_records)
    stats = corpus_stats(corpus)
    print(f"corpus: {stats.n_sequences} records, "
          f"{stats.n_elements} elements, {stats.n_attributes} attributes, "
          f"{stats.size_mbytes:.2f} MB of XML")

    index = PrixIndex.build(corpus.documents)
    rp = index.trie_stats("rp")
    ep = index.trie_stats("ep")
    print(f"RPIndex trie: {rp.node_count} nodes for "
          f"{rp.total_sequence_length} sequence symbols "
          f"(best path shared by {rp.max_path_sharing} records)")
    print(f"EPIndex trie: {ep.node_count} nodes "
          f"(values reduce sharing, as the paper notes)")

    searches = [
        ('author + year lookup',
         '//inproceedings[./author="Jim Gray"][./year="1990"]'),
        ('exact title', '//title[text()="Semantic Analysis Patterns"]'),
        ('web records with editors', "//www[./editor]/url"),
        ('VLDB papers', '//inproceedings[./booktitle="VLDB"]/title'),
        ('journal articles with volume', "//article[./volume]/title"),
    ]
    for label, xpath in searches:
        matches, qstats = index.query_with_stats(parse_xpath(xpath),
                                                 cold=True)
        print(f"\n{label}: {xpath}")
        print(f"  {len(matches)} matches | variant={qstats.variant} "
              f"strategy={qstats.strategy} "
              f"pages={qstats.physical_reads} "
              f"elapsed={qstats.elapsed_seconds * 1000:.2f} ms")

    # Show a concrete result: pull the matched records' titles.
    pattern = parse_xpath('//inproceedings[./author="Jim Gray"]'
                          '[./year="1990"]')
    matches = index.query(pattern)
    by_doc = {doc.doc_id: doc for doc in corpus.documents}
    print("\nJim Gray's 1990 papers in this corpus:")
    for match in matches:
        title_node = by_doc[match.doc_id].root.child_by_tag("title")
        print(f"  doc {match.doc_id}: {title_node.text()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
