#!/usr/bin/env python
"""Branching twig queries over a SWISSPROT-like protein corpus.

The scenario behind the paper's Q4-Q6: bushy entries, multi-branch
twigs, and a side-by-side of all four engines (PRIX, ViST, TwigStack,
TwigStackXB) on the same storage footing.

Run with::

    python examples/protein_twigs.py [n_entries]
"""

import sys
import time

from repro import PrixIndex, parse_xpath
from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.twigstack import twig_stack
from repro.baselines.twigstackxb import XBForest, twig_stack_xb
from repro.baselines.vist import VistIndex
from repro.datasets import swissprot
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def cold(pool):
    pool.flush_and_clear()
    return pool.stats.physical_reads


def main(n_entries=400):
    corpus = swissprot(n_entries=n_entries)
    docs = corpus.documents
    print(f"corpus: {len(docs)} protein entries")

    prix = PrixIndex.build(docs)
    stream_pool = BufferPool(Pager.in_memory())
    streams = StreamSet.build(docs, stream_pool)
    xb_pool = BufferPool(Pager.in_memory())
    forest = XBForest.build(build_stream_entries(docs), xb_pool)
    vist_pool = BufferPool(Pager.in_memory())
    vist = VistIndex.build(docs, vist_pool)

    queries = [
        '//Entry[./Keyword="Rhizomelic"]',
        '//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]',
        '//Entry[./Org="Piroplasmida"][.//Author]//from',
        "//Entry/Features//from",
    ]
    for xpath in queries:
        pattern = parse_xpath(xpath)
        print(f"\n{xpath}")

        matches, stats = prix.query_with_stats(pattern, cold=True)
        print(f"  PRIX        : {len(matches):4d} matches | "
              f"{stats.elapsed_seconds * 1000:7.2f} ms | "
              f"{stats.physical_reads:4d} pages | "
              f"variant={stats.variant} strategy={stats.strategy}")

        before = cold(vist_pool)
        started = time.perf_counter()
        vist_docs, vstats = vist.query(pattern)
        elapsed = time.perf_counter() - started
        print(f"  ViST        : {len(vist_docs):4d} docs    | "
              f"{elapsed * 1000:7.2f} ms | "
              f"{vist_pool.stats.physical_reads - before:4d} pages | "
              f"{vstats.range_queries} range queries")

        before = cold(stream_pool)
        started = time.perf_counter()
        ts_matches, _ = twig_stack(pattern, streams)
        elapsed = time.perf_counter() - started
        print(f"  TwigStack   : {len(ts_matches):4d} matches | "
              f"{elapsed * 1000:7.2f} ms | "
              f"{stream_pool.stats.physical_reads - before:4d} pages")

        before = cold(xb_pool)
        started = time.perf_counter()
        xb_matches, xstats = twig_stack_xb(pattern, forest)
        elapsed = time.perf_counter() - started
        print(f"  TwigStackXB : {len(xb_matches):4d} matches | "
              f"{elapsed * 1000:7.2f} ms | "
              f"{xb_pool.stats.physical_reads - before:4d} pages | "
              f"{xstats.coarse_advances} regions skipped")

        assert len(ts_matches) == len(xb_matches) == len(matches)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
