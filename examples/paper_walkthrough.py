#!/usr/bin/env python
"""Walk through the paper's running examples, end to end.

Reproduces, with the library's own machinery:

- Example 1: LPS(T) and NPS(T) of Figure 2(a),
- Example 2: the query twig's sequences and the subsequence match,
- Example 3: the connectedness counterexample (Theorem 2),
- Examples 4/5: gap and frequency consistency,
- Example 6: the complete refinement with leaf matching,
- Example 7: wildcard processing,
- Section 3.1: the tree <-> sequence bijection.

Run with::

    python examples/paper_walkthrough.py
"""

from repro import PrixIndex, parse_xpath
from repro.datasets import figure2_document, figure2_query
from repro.prufer.reconstruct import reconstruct_document
from repro.prufer.sequence import regular_sequence
from repro.xmlkit.tree import same_tree


def main():
    tree = figure2_document()
    seq = regular_sequence(tree)

    print("Example 1 -- Prufer sequences of the Figure 2(a) tree:")
    print(f"  LPS(T) = {' '.join(seq.lps)}")
    print(f"  NPS(T) = {' '.join(map(str, seq.nps))}")
    assert " ".join(seq.lps) == "A C B C C B A C A E E E D A"

    query = figure2_query()
    from repro.prix.plan import build_plan
    from repro.query.twig import collapse
    plan = build_plan(collapse(query), extended=False)
    print("\nExample 2 -- the query twig Q of Figure 2(b):")
    print(f"  LPS(Q) = {' '.join(plan.qlps)}")
    print(f"  NPS(Q) = {' '.join(map(str, plan.qnps))}")
    assert " ".join(plan.qlps) == "B A E D A"

    print("\nExample 3 -- refinement by connectedness:")
    n_t = seq.nps
    s_a_positions = (2, 3, 8, 10, 13)
    numbers = [n_t[p - 1] for p in s_a_positions]
    print(f"  S_A = C B C E D at positions {s_a_positions}; "
          f"numbers {numbers}")
    print("  last occurrence of 7 is not followed by the deletion of "
          "node 7 -> disconnected, rejected (Figure 2(c))")

    print("\nExample 6 -- the full match:")
    index = PrixIndex.build([tree])
    matches = index.query(query, ordered=True)
    for match in matches:
        print(f"  twig match with images {match.images}")
    example6 = {(0, 15), (1, 7), (2, 3), (3, 14), (4, 13), (5, 11)}
    assert any(set(m.images) == example6 for m in matches), (
        "the paper's worked match (positions 3 7 11 13 14) must appear")

    print("\nExample 7 -- wildcards:")
    for xpath in ("//A//C", "//A/*/D"):
        found = index.query(parse_xpath(xpath))
        print(f"  {xpath}: {len(found)} matches")

    print("\nSection 3.1 -- one-to-one correspondence:")
    rebuilt = reconstruct_document(seq.lps, seq.nps, seq.leaves)
    assert same_tree(tree.root, rebuilt.root)
    print("  reconstruct(LPS, NPS, leaves) == T   [verified]")
    index.close()

    print("\nAll paper examples reproduced.")


if __name__ == "__main__":
    main()
