#!/usr/bin/env python
"""Wildcard queries over deeply recursive parse trees.

The scenario behind the paper's Q7-Q9 and its Figure 1(b): '//' steps
over tags that recur at many depths, where ViST's structure-encoded
prefixes explode while PRIX's wildcard handling "does not add extra
overhead during subsequence matching" (Section 4.5); plus the
false-alarm demonstration.

Run with::

    python examples/treebank_wildcards.py [n_sentences]
"""

import sys
import time

from repro import PrixIndex, parse_xpath
from repro.baselines.naive import naive_match_count
from repro.baselines.vist import VistIndex
from repro.datasets import figure1_documents, figure1_query, treebank
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def main(n_sentences=500):
    corpus = treebank(n_sentences=n_sentences)
    docs = corpus.documents
    depth = max(doc.max_depth() for doc in docs)
    print(f"corpus: {len(docs)} sentences, max depth {depth}")

    prix = PrixIndex.build(docs)
    vist_pool = BufferPool(Pager.in_memory())
    vist = VistIndex.build(docs, vist_pool)

    for xpath in ("//S//NP/SYM", "//NP[./RBR_OR_JJR]/PP",
                  "//NP/PP/NP[./NNS_OR_NN][./NN]", "//S//S//NP",
                  "//VP/*/NN"):
        pattern = parse_xpath(xpath)
        matches, stats = prix.query_with_stats(pattern, cold=True)
        line = (f"  PRIX: {len(matches):4d} matches | "
                f"{stats.elapsed_seconds * 1000:8.2f} ms | "
                f"{stats.filter.range_queries:6d} range queries")
        print(f"\n{xpath}\n{line}")
        if pattern.has_wildcards() and "*" not in xpath:
            vist_pool.flush_and_clear()
            started = time.perf_counter()
            vist_docs, vstats = vist.query(pattern)
            elapsed = time.perf_counter() - started
            print(f"  ViST: {len(vist_docs):4d} docs    | "
                  f"{elapsed * 1000:8.2f} ms | "
                  f"{vstats.range_queries:6d} range queries | "
                  f"{vstats.keys_scanned} (symbol, prefix) keys scanned")
        else:
            print("  ViST: ('*' steps unsupported by the ViST baseline)")

    # Correctness spot check against the exhaustive oracle.
    pattern = parse_xpath("//S//NP/SYM")
    assert len(prix.query(pattern)) == naive_match_count(docs, pattern)

    # --- Figure 1(b): the false alarm ----------------------------------
    print("\nFigure 1(b) false-alarm demonstration (//B[./C][./D]):")
    doc1, doc2 = figure1_documents()
    query = figure1_query()
    small_prix = PrixIndex.build([doc1, doc2])
    small_pool = BufferPool(Pager.in_memory())
    small_vist = VistIndex.build([doc1, doc2], small_pool)
    prix_docs = sorted({m.doc_id for m in small_prix.query(query)})
    vist_docs, _ = small_vist.query(query)
    print(f"  twig occurs only in Doc1")
    print(f"  PRIX reports documents {prix_docs}")
    print(f"  ViST reports documents {sorted(vist_docs)}  "
          f"<- Doc2 is a false alarm: its C and D hang under "
          f"different B elements")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500)
