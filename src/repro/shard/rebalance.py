"""Shard rebalance and compaction (docs/SHARDING.md, rebalance protocol).

Incremental churn skews a shard set two ways: routing sends new
documents to edge shards until their ranges bloat, and deletes leave
dead trie nodes and stored records behind (the monolithic
:meth:`PrixIndex.delete_document` contract).  :func:`rebalance` re-cuts
the corpus into near-equal doc-id ranges and :func:`compact` rebuilds
every shard from its live documents; both are offline operations on a
shard *directory* and publish their result as a new manifest
**generation** -- shard files are never edited under a reader's feet,
replaced files are unlinked only after the new manifest is live, and
the serving tier picks the new generation up as an ordinary hot reload
(docs/SERVING.md).

Rebalance rides the incremental-update machinery where it can: when
the target cut moves only a few documents across a shard boundary, the
affected shards take ordinary Section 5.2.1 incremental deletes and
inserts instead of a rebuild; a shard whose labeler cannot absorb the
moves (:class:`~repro.prix.incremental.RebuildRequiredError`) falls
back to a fresh bulk build of just that shard.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions, PrixIndex
from repro.shard.builder import _build_one, partition_documents, shard_seed
from repro.shard.catalog import (ShardCatalog, ShardEntry, ShardError,
                                 shard_file_name)

#: Largest symmetric difference a shard absorbs incrementally; moving
#: more documents than this is cheaper as a bulk rebuild.
INCREMENTAL_MOVE_LIMIT = 8

#: Default seed for rebuilt shards' RNG streams (matches the builder).
DEFAULT_REBALANCE_SEED = 20040301


@dataclass(frozen=True)
class RebalanceReport:
    """What a rebalance/compaction did to each shard."""

    directory: str
    generation: int
    shards: int
    doc_count: int
    reused: int         # shards kept byte-identical
    incremental: int    # shards adjusted via insert/delete
    rebuilt: int        # shards bulk-rebuilt into a new file
    moved_documents: int
    elapsed_seconds: float

    def as_dict(self):
        return dataclasses.asdict(self)


def _sidecars(path):
    """The WAL and checksum companions of one shard file."""
    return (path + ".wal", path + ".sum")


def _infer_options(catalog, first_path, first_index):
    """Reconstruct build options for rebuilt shards from what is on
    disk: page size from the manifest, variants from a live shard, and
    durability/guard from the sidecar files' existence."""
    wal, sum_ = _sidecars(first_path)
    page_size = catalog.page_size or IndexOptions.page_size
    return IndexOptions(path=None,
                        page_size=page_size,
                        variants=tuple(first_index.variants()),
                        durable=os.path.exists(wal),
                        guard=os.path.exists(sum_))


def _try_incremental(index, current_docs, target_docs):
    """Absorb a small doc-set change via incremental insert/delete.

    Returns the number of moved documents on success, None when the
    change is too large or the shard demands a rebuild.
    """
    current = {doc.doc_id: doc for doc in current_docs}
    target = {doc.doc_id: doc for doc in target_docs}
    removed = sorted(set(current) - set(target))
    added = sorted(set(target) - set(current))
    moves = len(removed) + len(added)
    if moves == 0 or moves > INCREMENTAL_MOVE_LIMIT:
        return None
    try:
        for doc_id in removed:
            index.delete_document(doc_id)
        for doc_id in added:
            index.insert_document(target[doc_id])
    except RebuildRequiredError:
        return None
    index.save()
    return moves


def rebalance(directory, *, shards=None, workers=1, options=None,
              seed=DEFAULT_REBALANCE_SEED, force_rebuild=False):
    """Re-cut ``directory``'s corpus into near-equal doc-id ranges.

    Args:
        directory: an existing shard directory (``prixshard.json``).
        shards: target shard count (default: keep the current count).
        workers: build processes for rebuilt shards (1 = inline).
        options: :class:`IndexOptions` template for rebuilt shards;
            inferred from the existing set when omitted.
        seed: root of rebuilt shards' RNG streams.
        force_rebuild: rebuild every shard even when its document set
            is unchanged (this is :func:`compact`).

    Returns a :class:`RebalanceReport`.  Publishes a bumped-generation
    manifest and unlinks replaced shard files afterwards.
    """
    started = time.perf_counter()
    catalog = ShardCatalog.load(directory)
    if not catalog.entries:
        raise ShardError(f"{directory}: manifest lists no shards")
    target_count = shards if shards is not None else len(catalog.entries)
    generation = catalog.generation + 1

    opened = {}
    try:
        for entry in catalog.entries:
            opened[entry.name] = PrixIndex.open(catalog.path_for(entry))
        first_entry = catalog.entries[0]
        if options is None:
            options = _infer_options(catalog,
                                     catalog.path_for(first_entry),
                                     opened[first_entry.name])

        current_docs = {entry.name: list(opened[entry.name]
                                         .export_documents())
                        for entry in catalog.entries}
        corpus = [doc for entry in catalog.entries
                  for doc in current_docs[entry.name]]
        chunks = partition_documents(corpus, target_count)
        same_count = target_count == len(catalog.entries)

        entries = []
        reused = incremental = rebuilt = moved = 0
        rebuild_jobs = []   # (ordinal, chunk)
        for ordinal, chunk in enumerate(chunks):
            old_entry = (catalog.entries[ordinal] if same_count else None)
            chunk_ids = [doc.doc_id for doc in chunk]
            if old_entry is not None:
                old_docs = current_docs[old_entry.name]
                old_ids = [doc.doc_id for doc in old_docs]
                index = opened[old_entry.name]
                if chunk_ids == old_ids and not force_rebuild:
                    reused += 1
                    entries.append(ShardEntry(
                        name=f"shard-{ordinal:04d}", file=old_entry.file,
                        low=min(chunk_ids), high=max(chunk_ids),
                        doc_count=len(chunk_ids)))
                    continue
                if not force_rebuild:
                    moves = _try_incremental(index, old_docs, chunk)
                    if moves is not None:
                        incremental += 1
                        moved += moves
                        entries.append(ShardEntry(
                            name=f"shard-{ordinal:04d}",
                            file=old_entry.file,
                            low=min(chunk_ids), high=max(chunk_ids),
                            doc_count=len(chunk_ids)))
                        continue
            rebuild_jobs.append((ordinal, chunk))
            entries.append(ShardEntry(
                name=f"shard-{ordinal:04d}",
                file=shard_file_name(ordinal, generation),
                low=min(chunk_ids), high=max(chunk_ids),
                doc_count=len(chunk_ids)))
    finally:
        for index in opened.values():
            index.close()

    rebuilt = len(rebuild_jobs)
    moved += sum(len(chunk) for _, chunk in rebuild_jobs)
    _run_rebuilds(directory, rebuild_jobs, entries, options, seed,
                  generation, workers)

    new_catalog = catalog.next_generation(entries)
    new_catalog.save()
    _unlink_replaced(catalog, new_catalog)
    return RebalanceReport(
        directory=directory, generation=generation,
        shards=len(entries), doc_count=new_catalog.doc_count,
        reused=reused, incremental=incremental, rebuilt=rebuilt,
        moved_documents=moved,
        elapsed_seconds=time.perf_counter() - started)


def compact(directory, *, workers=1, options=None,
            seed=DEFAULT_REBALANCE_SEED):
    """Rebuild every shard from its live documents.

    The shard-set analogue of :meth:`PrixIndex.rebuilt`: dead trie
    nodes and deleted documents' records are dropped, ranges are re-cut
    evenly, and the result is published as a new manifest generation.
    """
    return rebalance(directory, workers=workers, options=options,
                     seed=seed, force_rebuild=True)


def _run_rebuilds(directory, jobs, entries, options, seed, generation,
                  workers):
    """Bulk-build the shards ``rebalance`` could not adjust in place."""
    if not jobs:
        return
    by_ordinal = {int(entry.name.split("-")[1]): entry
                  for entry in entries}
    if workers <= 1 or len(jobs) == 1:
        for ordinal, chunk in jobs:
            path = os.path.join(directory, by_ordinal[ordinal].file)
            _build_one(chunk, path, options, shard_seed(seed, ordinal))
        return
    from concurrent.futures import ProcessPoolExecutor

    from repro.shard.builder import (_build_shard_worker,
                                     _options_payload)
    from repro.xmlkit.serializer import serialize
    payload = _options_payload(options)
    work = [(os.path.join(directory, by_ordinal[ordinal].file),
             payload,
             [(doc.doc_id, serialize(doc)) for doc in chunk],
             shard_seed(seed, ordinal))
            for ordinal, chunk in jobs]
    with ProcessPoolExecutor(
            max_workers=min(workers, len(work))) as executor:
        list(executor.map(_build_shard_worker, work))


def _unlink_replaced(old_catalog, new_catalog):
    """Remove shard files (and sidecars) the new generation dropped."""
    kept = {entry.file for entry in new_catalog.entries}
    for entry in old_catalog.entries:
        if entry.file in kept:
            continue
        path = old_catalog.path_for(entry)
        for stale in (path, *_sidecars(path)):
            try:
                os.unlink(stale)
            except FileNotFoundError:
                pass
