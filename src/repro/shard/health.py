"""Shard-directory health: manifest verification over the tree scrub.

The storage layer's :func:`~repro.storage.scrub_tree` sweeps every
index file under a directory but knows nothing about shard manifests
-- the ``prixshard.json`` format belongs to this subsystem.
:func:`scrub_shards` runs the tree scrub and folds the manifest check
in: the manifest must load (checksum included), and every shard it
lists must actually have been swept.  The combined report keeps the
single-index report's vocabulary (``catalog_ok``, ``pages_corrupt``,
``healthy``), so the serving tier's ``/healthz`` endpoint and the
CLI's exit-code ladder treat a shard directory exactly like one index.
"""

from __future__ import annotations

from repro.shard.catalog import ShardCatalog, ShardCatalogError
from repro.storage import scrub_tree


def scrub_shards(directory, stamp_missing=False):
    """Scrub ``directory`` as a shard set; returns a
    :class:`~repro.storage.guard.TreeScrubReport` with the manifest
    verdict folded in."""
    report = scrub_tree(directory, stamp_missing=stamp_missing)
    try:
        catalog = ShardCatalog.load(directory)
    except ShardCatalogError as error:
        report.manifest_ok = False
        report.manifest_error = str(error)
        return report
    swept = {relative for relative, _ in report.reports}
    missing = [entry.file for entry in catalog.entries
               if entry.file not in swept]
    if missing:
        report.manifest_ok = False
        report.manifest_error = ("manifest lists missing shard "
                                 "file(s): " + ", ".join(missing))
    else:
        report.manifest_ok = True
    return report
