"""Partitioned PRIX: per-shard indexes behind one query surface.

The shard subsystem (docs/SHARDING.md) cuts a corpus into contiguous
doc-id ranges, builds one complete single-file PRIX index per range,
and makes the set a first-class index:

- :class:`ShardCatalog` -- the checksummed ``prixshard.json`` manifest
  (ranges, files, generations) published atomically;
- :func:`build_shards` -- the parallel builder (one process per
  worker, per-shard seeded RNG streams, WAL/guard unchanged);
- :class:`ShardedIndex` -- scatter-gather querying with exact
  :meth:`QueryBudget.split` budget slicing, headroom redistribution,
  and a merge that preserves the no-false-alarm guarantee
  (``approximate=True`` iff any shard degraded);
- :func:`rebalance` / :func:`compact` -- generation-bumping
  maintenance on the incremental-update machinery;
- :func:`scrub_shards` -- manifest-aware directory health for ``prix
  scrub`` and the serving tier's ``/healthz``.

Layering (``.prixarch.toml``): the ``shard`` layer sits beside the
serving tier -- atop foundation, logical, and storage-api -- and the
serving tier may import it (``IndexRegistry`` mounts shard
directories).
"""

from repro.shard.builder import (ShardBuildReport, ShardBuildStats,
                                 build_shards, partition_documents)
from repro.shard.catalog import (MANIFEST_NAME, ShardCatalog,
                                 ShardCatalogError, ShardEntry,
                                 ShardError, is_shard_directory)
from repro.shard.health import scrub_shards
from repro.shard.rebalance import RebalanceReport, compact, rebalance
from repro.shard.sharded import ShardedIndex

__all__ = [
    "MANIFEST_NAME",
    "RebalanceReport",
    "ShardBuildReport",
    "ShardBuildStats",
    "ShardCatalog",
    "ShardCatalogError",
    "ShardEntry",
    "ShardError",
    "ShardedIndex",
    "build_shards",
    "compact",
    "is_shard_directory",
    "partition_documents",
    "rebalance",
    "scrub_shards",
]
