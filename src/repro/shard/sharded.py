"""ShardedIndex: the query surface of :class:`PrixIndex` over a shard set.

Scatter-gather (docs/SHARDING.md): a query runs against every shard's
independent PRIX index and the per-shard answers are unioned.  The
decomposition is sound because shards partition the corpus by doc id --
every document lives in exactly one shard, so a twig occurrence in doc
``d`` is found by ``d``'s shard iff the monolithic index would find it
(the per-shard index *is* a complete PRIX index over its documents, so
Theorems 1-2 apply shard-locally), and the union over disjoint doc
ranges neither duplicates nor drops matches.

Budgets split exactly: a caller :class:`QueryBudget` is divided with
:meth:`~repro.prix.budget.QueryBudget.split` (countable caps conserved,
deadline shared), each finished shard's unused headroom is
:meth:`~repro.prix.budget.QueryBudget.grant`\\ ed forward to the next,
and the merge surfaces ``approximate=True`` iff any shard degraded:

- **Refinement**-phase exhaustion in a shard yields that shard's sound
  candidate-document superset; the merged answer collapses to doc-level
  matches -- the union of exact shards' matched documents and degraded
  shards' candidate documents -- which is again a guaranteed superset
  of the exact answer's documents.  Never a silent wrong answer.
- **Filter**-phase exhaustion in any shard propagates as
  :class:`~repro.prix.budget.BudgetExceededError`: that shard's filter
  pass is incomplete, no sound superset exists for its doc range, so
  none exists for the whole corpus either.

Matches are returned in canonical ``(doc_id, images)`` order, so the
answer is byte-stable across shard counts -- the oracle property the
sharding tests pin against a monolithic index.
"""

from __future__ import annotations

import time

from repro.prix.budget import (PHASE_FILTER, BudgetExceededError,
                               DegradationReason, QueryBudget)
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import PrixIndex
from repro.prix.matcher import QueryResult, QueryStats, TwigMatch
from repro.query.xpath import parse_xpath
from repro.shard.catalog import ShardCatalog, ShardError
from repro.storage import IOStats, Latch

#: ``meter.unused()`` keys double as ``QueryBudget.grant`` kwargs; the
#: headroom carry below relies on that correspondence.
_CARRY_ZERO = {"range_queries": 0, "physical_reads": 0, "candidates": 0}


class ShardSetIOStats:
    """Read-only aggregate over every shard's pool counters.

    Quacks like :class:`~repro.storage.stats.IOStats` for readers
    (``read(name)`` and ``snapshot()``), delegating to the per-shard
    stats objects -- each of which does its own latching, so this
    wrapper holds no lock of its own and supports no mutation.
    """

    def __init__(self, shards):
        self._shards = shards   # callable -> iterable[PrixIndex]

    def read(self, name):
        return sum(index.io_stats.read(name) for index in self._shards())

    def snapshot(self):
        total = IOStats()
        for index in self._shards():
            snap = index.io_stats.snapshot()
            total.add(**{name: getattr(snap, name)
                         for name in IOStats._GUARDED})
        return total


class ShardedIndex:
    """The shard set behind one directory, queryable as one index.

    Concurrency: the shard table and catalog are guarded by the
    ``shard-catalog`` latch (mutations -- insert/delete routing -- hold
    it; queries snapshot the table under it and then run unlatched, the
    same read pattern the registry uses for mounts).  Cumulative query
    counters live behind the separate ``shard-stats`` latch so metrics
    scrapes never contend with routing.
    """

    #: Machine-readable twin of the ``guarded-by`` comments; the
    #: runtime sanitizer (PRIX_SANITIZE=1) enforces this mapping.
    _GUARDED = {"_shards": "_latch", "_catalog": "_latch",
                "_totals": "_stats_latch"}

    def __init__(self, catalog, shards):
        self._latch = Latch("shard-catalog")
        self._stats_latch = Latch("shard-stats")
        with self._latch:
            self._shards = dict(shards)       # prixrace: guarded-by=_latch
            self._catalog = catalog           # prixrace: guarded-by=_latch
        with self._stats_latch:
            # Queries served / degraded, in total and per shard.
            self._totals = {  # prixrace: guarded-by=_stats_latch
                "queries": 0, "approximate_queries": 0,
                "per_shard": {entry.name: 0
                              for entry in catalog.entries}}
        self._closed = False
        self.io_stats = ShardSetIOStats(self._shard_indexes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, directory, pool_pages=None, backend="file", chaos=None):
        """Open every shard listed in ``directory``'s manifest.

        ``backend``/``pool_pages``/``chaos`` apply per shard, exactly as
        they would to a monolithic :meth:`PrixIndex.open`.  WAL and
        checksum sidecars auto-detect per shard file.
        """
        catalog = ShardCatalog.load(directory)
        if not catalog.entries:
            raise ShardError(f"{directory}: manifest lists no shards")
        shards = {}
        try:
            for entry in catalog.entries:
                shards[entry.name] = PrixIndex.open(
                    catalog.path_for(entry), pool_pages=pool_pages,
                    backend=backend, chaos=chaos)
        except BaseException:
            for index in shards.values():
                index.close()
            raise
        return cls(catalog, shards)

    def close(self):
        """Close every shard (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._latch:
            shards = list(self._shards.values())
            self._shards = {}
        for index in shards:
            index.close()

    def save(self):
        """Republish the manifest.

        Mutations (:meth:`insert_document`/:meth:`delete_document`)
        already save the touched shard and the manifest as one unit;
        this exists so callers holding either index kind can ``save()``
        polymorphically -- for a shard set it is an idempotent
        manifest rewrite.
        """
        with self._latch:
            self._catalog.save()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _shard_indexes(self):
        with self._latch:
            return [self._shards[entry.name]
                    for entry in self._catalog.entries]

    def _snapshot(self):
        """(entry, index) rows in catalog (doc-id) order."""
        with self._latch:
            return [(entry, self._shards[entry.name])
                    for entry in self._catalog.entries]

    @property
    def catalog(self):
        with self._latch:
            return self._catalog

    @property
    def shard_count(self):
        with self._latch:
            return len(self._catalog.entries)

    @property
    def doc_count(self):
        return sum(index.doc_count for _, index in self._snapshot())

    def variants(self):
        rows = self._snapshot()
        return rows[0][1].variants() if rows else []

    def flush_cache(self):
        for _, index in self._snapshot():
            index.flush_cache()

    def export_documents(self):
        """Every stored document, in doc-id order across shards."""
        for _, index in self._snapshot():
            yield from index.export_documents()

    def shard_stats(self):
        """Per-shard rows for ``prix stats`` and the serving metrics."""
        with self._stats_latch:
            queries = dict(self._totals["per_shard"])
        rows = []
        for entry, index in self._snapshot():
            snap = index.io_stats.snapshot()
            rows.append({
                "shard": entry.name,
                "file": entry.file,
                "low": entry.low,
                "high": entry.high,
                "doc_count": index.doc_count,
                "queries": queries.get(entry.name, 0),
                "physical_reads": snap.physical_reads,
                "logical_reads": snap.logical_reads,
                "evictions": snap.evictions,
            })
        return rows

    def scatter_stats(self):
        """Cumulative scatter-gather counters (metrics endpoint)."""
        with self._stats_latch:
            return {"queries": self._totals["queries"],
                    "approximate_queries":
                        self._totals["approximate_queries"]}

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(self, pattern, *, ordered=False, variant=None,
              use_maxgap=True, strategy="auto", maxgap_granularity=None,
              budget=None):
        """Scatter-gather twig query; same contract as
        :meth:`PrixIndex.query` (see module docstring for the merge)."""
        matches, _ = self.query_with_stats(
            pattern, ordered=ordered, variant=variant,
            use_maxgap=use_maxgap, strategy=strategy,
            maxgap_granularity=maxgap_granularity, budget=budget)
        return matches

    def query_with_stats(self, pattern, *, ordered=False, variant=None,
                         use_maxgap=True, strategy="auto",
                         maxgap_granularity=None, cold=False, budget=None):
        """Like :meth:`query` but also return an aggregate ``QueryStats``.

        The stats sum the per-shard work counters (physical reads,
        candidates, matches); ``stats.shards`` carries the shard count
        and ``stats.per_shard`` the per-shard breakdown the shard bench
        and the oracle test's evidence JSON scrape.
        """
        if budget is not None and not isinstance(budget, QueryBudget):
            raise TypeError("ShardedIndex budgets must be QueryBudget "
                            "templates; per-shard meters are minted "
                            "internally by the scatter")
        if isinstance(pattern, str):
            pattern = parse_xpath(pattern)
        rows = self._snapshot()
        if not rows:
            raise ShardError("sharded index is closed or empty")

        capped = budget is not None and not budget.unlimited
        slices = budget.split(len(rows)) if capped else [None] * len(rows)
        deadline = budget.deadline_seconds if capped else None
        started = time.monotonic()

        total = QueryStats(variant="", strategy="")
        per_shard = []
        exact = []          # TwigMatch rows from exact shards
        superset_docs = set()   # doc ids from degraded shards
        reason = None
        variants_seen = []
        strategies_seen = []
        carry = dict(_CARRY_ZERO)

        for (entry, index), sub in zip(rows, slices):
            meter = None
            if sub is not None:
                child = sub.grant(**carry)
                if deadline is not None:
                    elapsed = time.monotonic() - started
                    if elapsed >= deadline:
                        # The scatter's own cancellation point: shards
                        # not yet started have run no filter pass at
                        # all, so no sound superset exists for their
                        # doc ranges -- fail the query, never fake it.
                        raise BudgetExceededError(DegradationReason(
                            phase=PHASE_FILTER, limit="deadline",
                            spent=elapsed, budget=deadline))
                    child = child.fork(deadline_seconds=deadline - elapsed)
                meter = child.meter(io_stats=index.io_stats)
            matches, stats = index.query_with_stats(
                pattern, ordered=ordered, variant=variant,
                use_maxgap=use_maxgap, strategy=strategy,
                maxgap_granularity=maxgap_granularity, cold=cold,
                budget=meter)
            if meter is not None:
                unused = meter.unused()
                carry = {name: (left or 0)
                         for name, left in unused.items()}

            if stats.variant and stats.variant not in variants_seen:
                variants_seen.append(stats.variant)
            if stats.strategy and stats.strategy not in strategies_seen:
                strategies_seen.append(stats.strategy)
            total.arrangements = max(total.arrangements, stats.arrangements)
            total.filter.merge(stats.filter)
            total.candidate_documents += stats.candidate_documents
            total.candidates_refined += stats.candidates_refined
            total.candidates_accepted += stats.candidates_accepted
            total.matches += stats.matches
            total.physical_reads += stats.physical_reads
            per_shard.append({"shard": entry.name,
                              "matches": len(matches),
                              "approximate": bool(matches.approximate),
                              "physical_reads": stats.physical_reads,
                              "candidates_refined":
                                  stats.candidates_refined,
                              "elapsed_seconds": stats.elapsed_seconds})

            if matches.approximate:
                superset_docs.update(match.doc_id for match in matches)
                if reason is None:
                    reason = matches.degradation_reason
            else:
                exact.extend(matches)

            with self._stats_latch:
                self._totals["per_shard"][entry.name] = (
                    self._totals["per_shard"].get(entry.name, 0) + 1)

        if reason is not None:
            # Degraded merge: collapse to doc-level matches over the
            # union of exact shards' matched documents and degraded
            # shards' candidate documents -- a sound superset of the
            # exact answer's documents (module docstring).
            docs = superset_docs | {match.doc_id for match in exact}
            merged = QueryResult(
                (TwigMatch(doc_id, ()) for doc_id in sorted(docs)),
                approximate=True, degradation_reason=reason)
        else:
            merged = QueryResult(sorted(
                exact, key=lambda match: (match.doc_id, match.images)))

        total.variant = "+".join(variants_seen)
        total.strategy = "+".join(strategies_seen)
        total.matches = len(merged)
        total.approximate = merged.approximate
        total.degradation_reason = merged.degradation_reason
        total.elapsed_seconds = time.monotonic() - started
        total.shards = len(rows)
        total.per_shard = per_shard

        with self._stats_latch:
            self._totals["queries"] += 1
            if merged.approximate:
                self._totals["approximate_queries"] += 1
        return merged, total

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def insert_document(self, document):
        """Route an insert to the owning shard (Section 5.2.1 applies
        shard-locally).

        The owning shard's incremental insert runs unchanged; the
        catalog row's range/count are refreshed and the manifest
        republished.  On
        :class:`~repro.prix.incremental.RebuildRequiredError` the
        document's record is already cataloged in the shard (the
        monolithic contract), the manifest is still refreshed, and the
        error propagates -- ``rebalance``/``compact`` is the recovery
        path, exactly as :meth:`PrixIndex.rebuilt` is for one index.
        """
        with self._latch:
            entry = self._catalog.route(document.doc_id)
            index = self._shards[entry.name]
            try:
                index.insert_document(document)
            except RebuildRequiredError:
                # The record is cataloged despite the error (the
                # monolithic contract) -- publish the honest count
                # before propagating.
                index.save()
                self._refresh_entry_locked(entry, index, document.doc_id)
                raise
            index.save()
            self._refresh_entry_locked(entry, index, document.doc_id)

    def delete_document(self, doc_id):
        """Route a delete to the owning shard; ``KeyError`` if absent."""
        with self._latch:
            entry = self._catalog.shard_for(doc_id)
            if entry is None:
                raise KeyError(f"document {doc_id} is not indexed")
            index = self._shards[entry.name]
            index.delete_document(doc_id)
            index.save()
            self._refresh_entry_locked(entry, index, None)

    def _refresh_entry_locked(self, entry, index, doc_id):  # prixrace: requires=_latch
        """Rewrite ``entry``'s manifest row from the shard's live state.

        Caller holds ``_latch``.  Ranges only ever widen (a shard keeps
        owning a range even after deletes empty part of it), so routing
        stays stable without a rebalance.
        """
        low, high = entry.low, entry.high
        if doc_id is not None:
            low = min(low, doc_id)
            high = max(high, doc_id)
        refreshed = type(entry)(name=entry.name, file=entry.file,
                                low=low, high=high,
                                doc_count=index.doc_count)
        others = [row for row in self._catalog.entries
                  if row.name != entry.name]
        self._catalog = self._catalog.replace_entries(
            others + [refreshed])
        self._catalog.save()


def _register_with_sanitizer():
    """Opt the guarded fields into ``PRIX_SANITIZE=1`` enforcement.

    The analysis layer cannot import the shard tier (that would invert
    the layering), so the shard tier registers itself.
    """
    from repro.analysis import sanitizer  # prixlint: disable=layering
    sanitizer.register_guarded_class(ShardedIndex)


_register_with_sanitizer()
