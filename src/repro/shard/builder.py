"""Partitioned, parallel index construction (docs/SHARDING.md).

:func:`build_shards` splits a corpus into contiguous doc-id ranges,
builds one complete single-file PRIX index per range -- WAL, checksum
guard, and labeler discipline unchanged from the monolithic path -- and
publishes the set with a checksummed :class:`ShardCatalog` manifest.

Parallelism is process-level (``workers > 1``): building a shard is
CPU-bound Prufer-sequence and B+-tree work with no shared state, so
each shard ships to a worker process as *serialized XML text* (the
xmlkit round trip, cheaper and shallower than pickling a deep node
tree), is re-parsed, indexed, and saved there.  Every worker gets its
own deterministically derived seed and constructs a private seeded
``random.Random`` stream, so any stochastic choice made inside a
worker is a pure function of ``(corpus seed, shard ordinal)`` --
byte-identical output no matter how many workers ran or in what order
they finished.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass

from repro.prix.index import IndexOptions, PrixIndex
from repro.shard.catalog import (MANIFEST_NAME, ShardCatalog,
                                 ShardCatalogError, ShardEntry, ShardError,
                                 shard_file_name)
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize

#: Default seed for the per-worker RNG streams (date of the paper's
#: conference, like the corpus generators).
DEFAULT_BUILD_SEED = 20040301


@dataclass(frozen=True)
class ShardBuildStats:
    """What one shard's build cost and produced."""

    name: str
    doc_count: int
    low: int
    high: int
    build_seconds: float
    trie_nodes: int
    index_bytes: int
    salt: int   # first draw of the shard's seeded RNG stream


@dataclass(frozen=True)
class ShardBuildReport:
    """The whole build: per-shard stats plus wall-clock totals."""

    directory: str
    shards: tuple       # tuple[ShardBuildStats]
    workers: int
    elapsed_seconds: float

    @property
    def doc_count(self):
        return sum(stats.doc_count for stats in self.shards)


def partition_documents(documents, shards):
    """Split ``documents`` into ``shards`` contiguous doc-id ranges.

    Documents are sorted by doc id and cut into near-equal chunks
    (sizes differ by at most one, larger chunks first), so the split is
    a pure function of the doc-id set -- the same corpus partitions
    identically on every machine and at every worker count.
    """
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}")
    docs = sorted(documents, key=lambda doc: doc.doc_id)
    ids = [doc.doc_id for doc in docs]
    if len(set(ids)) != len(ids):
        raise ShardError("document ids must be unique across shards")
    if shards > len(docs):
        raise ShardError(f"cannot cut {len(docs)} document(s) into "
                         f"{shards} non-empty shards")
    base, spill = divmod(len(docs), shards)
    chunks = []
    start = 0
    for ordinal in range(shards):
        size = base + (1 if ordinal < spill else 0)
        chunks.append(docs[start:start + size])
        start += size
    return chunks


def shard_seed(seed, ordinal):
    """Deterministic per-shard RNG seed: mix the ordinal into the
    corpus seed with a large odd multiplier so neighbouring shards get
    well-separated streams."""
    return (seed * 1_000_003 + ordinal) & 0xFFFFFFFF


def _shard_options(options, path):
    """The per-shard :class:`IndexOptions`: the template with the path
    (and path-derived sidecars) rebound to this shard's file."""
    return dataclasses.replace(options, path=path, wal_path=None,
                               guard_path=None)


def _options_payload(options):
    """A picklable dict form of :class:`IndexOptions` for the worker.

    ``file_factory`` is a testing hook holding arbitrary callables; a
    multiprocessing build cannot ship it and never needs to.
    """
    if options.file_factory is not None:
        raise ShardError("file_factory cannot cross a process boundary; "
                         "build with workers=1")
    payload = dataclasses.asdict(options)
    payload.pop("file_factory")
    return payload


def _build_one(documents, path, options, seed):
    """Build, save, and close one shard; return its stats row."""
    rng = random.Random(seed)
    salt = rng.getrandbits(32)
    started = time.perf_counter()
    index = PrixIndex.build(documents, _shard_options(options, path))
    try:
        index.save()
        trie_nodes = sum(index.trie_stats(variant).node_count
                         for variant in index.variants())
        doc_ids = [doc.doc_id for doc in documents]
    finally:
        index.close()
    return ShardBuildStats(
        name="", doc_count=len(documents), low=min(doc_ids),
        high=max(doc_ids), build_seconds=time.perf_counter() - started,
        trie_nodes=trie_nodes, index_bytes=os.path.getsize(path),
        salt=salt)


def _build_shard_worker(job):
    """Top-level worker entry point (must be picklable by name).

    ``job`` is ``(path, options_payload, docs_payload, seed)`` where
    ``docs_payload`` is ``[(doc_id, xml_text), ...]`` -- the xmlkit
    round trip is the wire format, so the worker re-parses exactly the
    bytes the parent serialized.
    """
    path, options_payload, docs_payload, seed = job
    options = IndexOptions(**options_payload)
    documents = [parse_document(text, doc_id)
                 for doc_id, text in docs_payload]
    return _build_one(documents, path, options, seed)


def _clear_existing(directory):
    """Remove a previous generation before an ``overwrite`` rebuild.

    Shard files must not survive into the new build (``PrixIndex.build``
    requires a fresh file), so drop everything the old manifest lists --
    or, if the manifest is unreadable, anything matching the shard
    naming scheme -- plus WAL/checksum sidecars and the manifest itself.
    """
    try:
        old = ShardCatalog.load(directory)
        files = [entry.file for entry in old.entries]
    except ShardCatalogError:
        files = [name for name in os.listdir(directory)
                 if name.startswith("shard-") and ".idx" in name]
    for file in files:
        for suffix in ("", ".wal", ".sum"):
            try:
                os.unlink(os.path.join(directory, file + suffix))
            except FileNotFoundError:
                pass
    os.unlink(os.path.join(directory, MANIFEST_NAME))


def build_shards(documents, directory, *, shards=1, workers=1,
                 options=None, seed=DEFAULT_BUILD_SEED, overwrite=False):
    """Build a sharded index over ``documents`` in ``directory``.

    Args:
        documents: numbered :class:`~repro.xmlkit.tree.Document`\\ s.
        directory: target shard directory (created if missing).
        shards: how many doc-id-range partitions to cut.
        workers: build processes; 1 builds inline in this process.
        options: :class:`IndexOptions` template; ``path`` is ignored
            (each shard gets its own file inside ``directory``).
        seed: root of the per-shard RNG streams.
        overwrite: allow re-publishing over an existing manifest.

    Returns a :class:`ShardBuildReport`.  The partition, each shard's
    contents, and the manifest are all independent of ``workers``.
    """
    options = options or IndexOptions()
    chunks = partition_documents(documents, shards)
    os.makedirs(directory, exist_ok=True)
    manifest = os.path.join(directory, "prixshard.json")
    if os.path.exists(manifest):
        if not overwrite:
            raise ShardError(f"{directory}: shard manifest already "
                             "exists (pass overwrite to rebuild)")
        _clear_existing(directory)

    names = [f"shard-{ordinal:04d}" for ordinal in range(len(chunks))]
    files = [shard_file_name(ordinal) for ordinal in range(len(chunks))]
    paths = [os.path.join(directory, file) for file in files]
    seeds = [shard_seed(seed, ordinal) for ordinal in range(len(chunks))]

    started = time.perf_counter()
    if workers <= 1 or len(chunks) == 1:
        rows = [_build_one(chunk, path, options, one_seed)
                for chunk, path, one_seed in zip(chunks, paths, seeds)]
    else:
        payload = _options_payload(options)
        jobs = [(path,
                 payload,
                 [(doc.doc_id, serialize(doc)) for doc in chunk],
                 one_seed)
                for chunk, path, one_seed in zip(chunks, paths, seeds)]
        # Import here: the parent pays the multiprocessing import only
        # when it actually forks, and workers never re-import it.
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(
                max_workers=min(workers, len(jobs))) as executor:
            rows = list(executor.map(_build_shard_worker, jobs))
    elapsed = time.perf_counter() - started

    rows = [dataclasses.replace(row, name=name)
            for name, row in zip(names, rows)]
    entries = tuple(ShardEntry(name=row.name, file=file, low=row.low,
                               high=row.high, doc_count=row.doc_count)
                    for row, file in zip(rows, files))
    catalog = ShardCatalog(directory=directory, entries=entries,
                           generation=1, page_size=options.page_size)
    catalog.save()
    return ShardBuildReport(directory=directory, shards=tuple(rows),
                            workers=workers, elapsed_seconds=elapsed)
