"""The shard catalog: one checksummed manifest per shard directory.

A sharded PRIX deployment (docs/SHARDING.md) is a directory holding N
independent single-index files plus one small JSON manifest,
``prixshard.json``, that makes the set a first-class index.  The
manifest records, per shard, the index file name and the *closed*
doc-id range ``[low, high]`` it owns -- ranges are disjoint and sorted,
so routing a doc id to its shard is a scan over a handful of entries.

The manifest is guarded the same way the page catalog is: a CRC-32
over its canonical JSON payload is stored inside the file, and
:meth:`ShardCatalog.load` verifies it before trusting a byte.  A
mismatch raises :class:`ShardCatalogError`, a
:class:`~repro.storage.errors.CorruptionError` subclass, so the CLI's
existing corruption ladder (exit code 3) applies unchanged.

Writes are atomic (temp file + ``os.replace``) and carry a
``generation`` counter: rebalance and compaction never edit shard
files in place -- they build replacements, then publish a new manifest
generation in one rename, which is exactly the unit the serving tier's
hot reload swaps (docs/SERVING.md).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass

from repro.storage import CorruptionError, StorageError

#: Manifest file name inside a shard directory.
MANIFEST_NAME = "prixshard.json"
#: Manifest format version (bump on incompatible layout changes).
MANIFEST_VERSION = 1


class ShardError(StorageError):
    """Base class for shard-subsystem failures (bad layout, bad args)."""


class ShardCatalogError(CorruptionError):
    """The shard manifest is missing, malformed, or fails its checksum.

    A :class:`~repro.storage.errors.CorruptionError` so ``prix scrub``
    and the CLI's exit-code ladder treat a damaged manifest exactly
    like a damaged page catalog.
    """


@dataclass(frozen=True)
class ShardEntry:
    """One shard's row in the manifest.

    Attributes:
        name: stable shard name (``shard-0000``), the metrics label.
        file: index file name, relative to the shard directory.
        low: smallest doc id this shard owns (closed bound).
        high: largest doc id this shard owns (closed bound).
        doc_count: documents stored at manifest-write time.
    """

    name: str
    file: str
    low: int
    high: int
    doc_count: int

    def owns(self, doc_id):
        """True when ``doc_id`` falls inside this shard's range."""
        return self.low <= doc_id <= self.high

    def as_dict(self):
        return {"name": self.name, "file": self.file, "low": self.low,
                "high": self.high, "doc_count": self.doc_count}

    @classmethod
    def from_dict(cls, raw):
        try:
            return cls(name=str(raw["name"]), file=str(raw["file"]),
                       low=int(raw["low"]), high=int(raw["high"]),
                       doc_count=int(raw["doc_count"]))
        except (KeyError, TypeError, ValueError) as error:
            raise ShardCatalogError(
                f"malformed shard entry {raw!r}: {error}") from None


def _canonical(payload):
    """Canonical JSON bytes: the checksum's input must be byte-stable."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("ascii")


@dataclass(frozen=True)
class ShardCatalog:
    """The parsed, verified manifest of one shard directory.

    Immutable: mutation paths (insert/delete routing, rebalance) build
    a replacement via :meth:`replace_entries` / :meth:`next_generation`
    and publish it with :meth:`save` -- mirroring how the page layer
    publishes a new catalog rather than editing the old one.
    """

    directory: str
    entries: tuple          # tuple[ShardEntry], sorted by ``low``
    generation: int = 1
    page_size: int = 0

    def __post_init__(self):
        previous = None
        for entry in self.entries:
            if entry.low > entry.high:
                raise ShardError(f"shard {entry.name}: empty range "
                                 f"[{entry.low}, {entry.high}]")
            if previous is not None and entry.low <= previous.high:
                raise ShardError(
                    f"shard ranges overlap or are unsorted: "
                    f"{previous.name}[..{previous.high}] vs "
                    f"{entry.name}[{entry.low}..]")
            previous = entry

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_for(self, doc_id):
        """The :class:`ShardEntry` owning ``doc_id``, or None."""
        for entry in self.entries:
            if entry.owns(doc_id):
                return entry
        return None

    def route(self, doc_id):
        """Routing for *new* documents: the owner if one exists, else
        the nearest shard (ranges stretch at the edges)."""
        owner = self.shard_for(doc_id)
        if owner is not None:
            return owner
        if not self.entries:
            raise ShardError("catalog has no shards")
        if doc_id < self.entries[0].low:
            return self.entries[0]
        for entry in self.entries:
            if doc_id < entry.low:
                return entry
        return self.entries[-1]

    def entry(self, name):
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def path_for(self, entry):
        """Absolute path of one shard's index file."""
        return os.path.join(self.directory, entry.file)

    @property
    def doc_count(self):
        return sum(entry.doc_count for entry in self.entries)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def replace_entries(self, entries):
        """Same directory/generation, new entry rows (sorted by low)."""
        rows = tuple(sorted(entries, key=lambda entry: entry.low))
        return ShardCatalog(directory=self.directory, entries=rows,
                            generation=self.generation,
                            page_size=self.page_size)

    def next_generation(self, entries):
        """A bumped-generation catalog over replacement entries."""
        rows = tuple(sorted(entries, key=lambda entry: entry.low))
        return ShardCatalog(directory=self.directory, entries=rows,
                            generation=self.generation + 1,
                            page_size=self.page_size)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def _payload(self):
        return {"version": MANIFEST_VERSION,
                "generation": self.generation,
                "page_size": self.page_size,
                "shards": [entry.as_dict() for entry in self.entries]}

    def as_dict(self):
        """JSON-ready form including the checksum (what ``save`` writes)."""
        payload = self._payload()
        payload["checksum"] = zlib.crc32(_canonical(payload))
        return payload

    @property
    def manifest_path(self):
        return os.path.join(self.directory, MANIFEST_NAME)

    def save(self):
        """Atomically publish this catalog as the directory's manifest."""
        data = _canonical(self.as_dict())
        path = self.manifest_path
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, directory):
        """Read and verify ``directory``'s manifest.

        Raises :class:`ShardCatalogError` when the manifest is absent,
        unparsable, version-incompatible, or fails its checksum.
        """
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise ShardCatalogError(
                f"{directory}: no shard manifest ({MANIFEST_NAME})"
            ) from None
        except OSError as error:
            raise ShardCatalogError(
                f"{path}: unreadable manifest: {error}") from None
        try:
            payload = json.loads(raw)
        except ValueError as error:
            raise ShardCatalogError(
                f"{path}: manifest is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ShardCatalogError(f"{path}: manifest is not an object")
        stored = payload.pop("checksum", None)
        computed = zlib.crc32(_canonical(payload))
        if stored != computed:
            raise ShardCatalogError(
                f"{path}: manifest checksum mismatch "
                f"(stored {stored!r}, computed {computed})")
        if payload.get("version") != MANIFEST_VERSION:
            raise ShardCatalogError(
                f"{path}: unsupported manifest version "
                f"{payload.get('version')!r}")
        entries = tuple(ShardEntry.from_dict(raw_entry)
                        for raw_entry in payload.get("shards", []))
        try:
            return cls(directory=directory, entries=entries,
                       generation=int(payload.get("generation", 1)),
                       page_size=int(payload.get("page_size", 0)))
        except ShardError as error:
            raise ShardCatalogError(f"{path}: {error}") from None


def is_shard_directory(path):
    """True when ``path`` is a directory holding a shard manifest."""
    return os.path.isdir(path) and os.path.exists(
        os.path.join(path, MANIFEST_NAME))


def shard_file_name(ordinal, generation=1):
    """Canonical index file name for shard ``ordinal`` at ``generation``.

    Generation 1 files are bare (``shard-0000.idx``); later generations
    carry the generation in the name (``shard-0000.g2.idx``) so a
    rebuild never overwrites the file a live reader may have mapped.
    """
    stem = f"shard-{ordinal:04d}"
    if generation > 1:
        stem = f"{stem}.g{generation}"
    return f"{stem}.idx"
