"""Process exit codes shared by every PRIX front end.

One vocabulary, two surfaces: ``prix`` (the CLI, :mod:`repro.cli`)
returns these as process exit statuses, and ``prix serve`` embeds the
same numbers as ``exit_code`` in its typed JSON error responses
(:mod:`repro.serve.protocol`) -- so a script gets the identical failure
taxonomy whether it shells out or talks HTTP.  Scripts and the CI smoke
steps branch on these values; they are part of the public contract and
must not be renumbered.
"""

#: Generic failure (I/O errors, storage errors, exhausted filter-phase
#: budgets, ...).
EXIT_ERROR = 1
#: Usage error: bad arguments, unparsable query, missing input file.
EXIT_USAGE = 2
#: Corruption: checksum failure, unrecoverable WAL, failed recovery.
EXIT_CORRUPTION = 3
#: Timeout: a request (or its client-side deadline) ran out of time
#: before the work finished -- retryable, unlike a usage error.
EXIT_TIMEOUT = 4
