"""Twig pattern model.

A twig query is a small ordered labeled tree whose edges carry an axis
(child ``/`` or descendant ``//``) and whose leaves may be value-equality
predicates.  ``*`` wildcard steps are permitted; following the paper
(Section 4.5), wildcard nodes are *collapsed* into edge constraints before
the twig is transformed into its Prufer sequence, so the sequenced tree
contains named nodes and values only.

:class:`CollapsedTwig` is the query form the PRIX engine consumes: a
numbered tree plus, for every non-root node, an :class:`EdgeSpec` saying
how many tree edges may separate it from its parent in a match.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.xmlkit.tree import DUMMY_TAG, Document, XMLNode


class Axis(enum.Enum):
    """Axis connecting a twig node to its parent."""

    CHILD = "/"
    DESCENDANT = "//"


#: Label used for ``*`` wildcard steps.
STAR = "*"


class TwigNode:
    """One step of a twig pattern (element test, ``*``, or value)."""

    __slots__ = ("label", "axis", "children", "parent", "is_value")

    def __init__(self, label, axis=Axis.CHILD, is_value=False):
        self.label = label
        self.axis = axis
        self.children = []
        self.parent = None
        self.is_value = is_value

    @property
    def is_star(self):
        """True for a ``*`` wildcard step."""
        return self.label == STAR and not self.is_value

    def append(self, child):
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self):
        """Yield this node and its descendants in preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self):
        kind = "value" if self.is_value else ("star" if self.is_star else "elem")
        return f"<TwigNode {kind} {self.label!r} {self.axis.value}>"


class TwigPattern:
    """A parsed twig query."""

    def __init__(self, root, absolute=False, source=""):
        if root.is_star:
            raise ValueError("the twig root must be a named node")
        self.root = root
        self.absolute = absolute
        self.source = source

    def nodes(self):
        """All pattern nodes in preorder."""
        return list(self.root.iter_subtree())

    def named_nodes(self):
        """Pattern nodes excluding ``*`` steps."""
        return [n for n in self.root.iter_subtree() if not n.is_star]

    def has_values(self):
        """True when any leaf carries a value-equality predicate.

        The PRIX query optimizer uses this to pick EPIndex over RPIndex
        (Section 5.6).
        """
        return any(n.is_value for n in self.root.iter_subtree())

    def has_wildcards(self):
        """True when any step uses ``//`` or ``*``."""
        return any(n.is_star or n.axis is Axis.DESCENDANT
                   for n in self.root.iter_subtree())

    def branch_count(self):
        """Number of nodes with two or more children."""
        return sum(1 for n in self.root.iter_subtree()
                   if len(n.children) >= 2)

    def __repr__(self):
        return f"<TwigPattern {self.source or self.root.label!r}>"


@dataclass(frozen=True)
class EdgeSpec:
    """How many data-tree edges may separate a node from its twig parent.

    ``min_steps == max_steps == 1`` is a plain parent/child edge;
    ``max_steps is None`` means unbounded (a descendant edge).  Collapsed
    ``*`` steps raise ``min_steps`` (and ``max_steps`` when bounded).
    """

    min_steps: int = 1
    max_steps: int | None = 1

    @property
    def is_plain_child(self):
        """True for an exact one-step parent/child edge."""
        return self.min_steps == 1 and self.max_steps == 1

    def admits(self, steps):
        """True when ``steps`` tree edges satisfy this spec."""
        if steps < self.min_steps:
            return False
        return self.max_steps is None or steps <= self.max_steps


class CollapsedTwig:
    """The wildcard-free, numbered form of a twig the PRIX engine matches.

    Metadata is keyed by node *identity* so renumbering (e.g. for a
    different branch arrangement) never invalidates it.

    Attributes:
        document: the collapsed twig as a numbered :class:`Document`.
        absolute: True when the twig is anchored at the document root.
    """

    def __init__(self, document, spec_by_node, source_by_node, absolute):
        self.document = document
        self._spec_by_node = spec_by_node      # id(XMLNode) -> EdgeSpec
        self._source_by_node = source_by_node  # id(XMLNode) -> TwigNode
        self.absolute = absolute

    @property
    def n_nodes(self):
        """Number of nodes in the collapsed twig."""
        return self.document.size

    def spec_of(self, node):
        """Edge spec between ``node`` and its parent (plain child default)."""
        return self._spec_by_node.get(id(node), EdgeSpec())

    def source_of(self, node):
        """Original :class:`TwigNode` this collapsed node stands for."""
        return self._source_by_node.get(id(node))

    def spec_for(self, postorder):
        """Edge spec of the node with this postorder number."""
        return self.spec_of(self.document.node_by_postorder(postorder))

    def is_plain(self):
        """True when every edge is a plain parent/child edge."""
        return all(self.spec_of(n).is_plain_child
                   for n in self.document.nodes_in_postorder()
                   if n.parent is not None)

    def copy(self):
        """Deep-copy the twig, remapping the identity-keyed metadata."""
        mapping = {}
        new_root = _copy_mapped(self.document.root, mapping)
        spec_by_node = {id(mapping[old_id]): spec
                        for old_id, spec in self._spec_by_node.items()}
        source_by_node = {id(mapping[old_id]): src
                          for old_id, src in self._source_by_node.items()}
        twig = CollapsedTwig(Document(new_root), spec_by_node,
                             source_by_node, self.absolute)
        # Keep the mapped nodes alive: identity keys are only stable while
        # the objects exist, and `mapping` values are exactly the new nodes.
        twig._nodes_keepalive = list(mapping.values())
        return twig


def _copy_mapped(node, mapping):
    clone = XMLNode(node.tag, is_value=node.is_value)
    mapping[id(node)] = clone
    stack = [(node, clone)]
    while stack:
        src, dst = stack.pop()
        for child in src.children:
            child_clone = XMLNode(child.tag, is_value=child.is_value)
            mapping[id(child)] = child_clone
            child_clone.parent = dst
            dst.children.append(child_clone)
            stack.append((child, child_clone))
    return clone


def _combine_specs(axes):
    """Fold a chain of collapsed edges into one :class:`EdgeSpec`."""
    min_steps = 0
    bounded = True
    for axis in axes:
        min_steps += 1
        if axis is Axis.DESCENDANT:
            bounded = False
    return EdgeSpec(min_steps=min_steps,
                    max_steps=min_steps if bounded else None)


def collapse(pattern):
    """Collapse a :class:`TwigPattern` into its :class:`CollapsedTwig`.

    Wildcard ``*`` steps are removed; their axes fold into the edge spec of
    the nearest named descendant, exactly as Section 4.5 prescribes.  A
    trailing ``*`` (an existence test) survives as an anonymous node whose
    label the engine treats as unconstrained.
    """
    spec_by_node = {}
    source_by_node = {}

    def attach_children(source, clone_parent, pending_axes):
        for child in source.children:
            chain = pending_axes + [child.axis]
            if child.is_star and child.children:
                attach_children(child, clone_parent, chain)
                continue
            child_clone = XMLNode(child.label, is_value=child.is_value)
            child_clone.parent = clone_parent
            clone_parent.children.append(child_clone)
            spec_by_node[id(child_clone)] = _combine_specs(chain)
            source_by_node[id(child_clone)] = child
            if not child.is_star:
                attach_children(child, child_clone, [])

    clone_root = XMLNode(pattern.root.label, is_value=pattern.root.is_value)
    source_by_node[id(clone_root)] = pattern.root
    attach_children(pattern.root, clone_root, [])
    twig = CollapsedTwig(Document(clone_root), spec_by_node,
                         source_by_node, pattern.absolute)
    twig._nodes_keepalive = list(clone_root.iter_subtree())
    return twig


def arrangements(pattern):
    """Yield one :class:`CollapsedTwig` per distinct branch arrangement.

    Section 5.7: running ordered matching on every arrangement of the
    twig's branches yields the unordered matches.  Arrangements whose
    (label, parent, spec) signature coincides with an earlier one (e.g.
    permutations of structurally identical branches) are skipped.
    """
    base = collapse(pattern)
    root = base.document.root
    branch_nodes = [n for n in root.iter_subtree() if len(n.children) >= 2]
    if not branch_nodes:
        yield base
        return

    seen = set()
    child_orders = [list(itertools.permutations(range(len(n.children))))
                    for n in branch_nodes]
    originals = [list(n.children) for n in branch_nodes]
    for combo in itertools.product(*child_orders):
        for node, order, original in zip(branch_nodes, combo, originals):
            node.children = [original[i] for i in order]
        base.document.renumber()
        signature = _signature(base)
        if signature in seen:
            continue
        seen.add(signature)
        yield base.copy()
    for node, original in zip(branch_nodes, originals):
        node.children = original
    base.document.renumber()


def node_signatures(pattern):
    """Assign each pattern node a signature id, equal for automorphic nodes.

    Two nodes receive the same id exactly when an automorphism of the twig
    (a relabeling permuting structurally identical sibling branches) can
    map one to the other.  Embeddings deduplicated on ``(signature_id,
    image)`` pairs therefore count twig *occurrences* rather than the
    redundant assignments that identical branches would otherwise inflate.

    Returns ``{id(TwigNode): signature_id}``.
    """
    subtree_sig = {}

    def subtree(node):
        key = (node.label, node.is_value, node.axis,
               tuple(sorted(subtree(child) for child in node.children)))
        cached = subtree_sig.get(key)
        if cached is None:
            cached = len(subtree_sig)
            subtree_sig[key] = cached
        return cached

    signature_ids = {}
    assignments = {}

    def walk(node, path):
        here = path + (subtree(node),)
        sig_id = assignments.get(here)
        if sig_id is None:
            sig_id = len(assignments)
            assignments[here] = sig_id
        signature_ids[id(node)] = sig_id
        for child in node.children:
            walk(child, here)

    walk(pattern.root, ())
    return signature_ids


def _signature(collapsed):
    # Keyed on the parent's postorder number, not its tag: two different
    # arrangements can give every node identically-tagged parents (e.g. a
    # star under the root vs. under an inner node both tagged 'a') while
    # being different ordered trees, and deduplicating them would drop
    # real matches.  Equal (tag, parent-number, spec) per postorder
    # position means the arrangements are the same ordered tree.
    doc = collapsed.document
    return tuple(
        (node.tag, node.is_value,
         node.parent.postorder if node.parent else 0,
         collapsed.spec_of(node))
        for node in doc.nodes_in_postorder())
