"""Query model: twig patterns and the XPath-subset parser."""

from repro.query.twig import (Axis, CollapsedTwig, EdgeSpec, TwigNode,
                              TwigPattern)
from repro.query.xpath import XPathSyntaxError, parse_xpath

__all__ = [
    "Axis",
    "CollapsedTwig",
    "EdgeSpec",
    "TwigNode",
    "TwigPattern",
    "XPathSyntaxError",
    "parse_xpath",
]
