"""Parser for the XPath subset the paper evaluates.

Supported grammar (sufficient for every query in Table 3 and the intro
example)::

    query     := sep? step (sep step)*
    sep       := '/' | '//'
    step      := nametest predicate*
    nametest  := NAME | '*'
    predicate := '[' predpath ']'
    predpath  := ('.' | 'text()') (sep step)* ('=' STRING)?
                | NAME-relative path, e.g. [./author="X"], [.//Author]

A query with a leading ``/`` (single slash) is *absolute*: its first step
must match the document root.  A leading bare name (``book[...]/title``)
is treated as absolute, matching the paper's intro example.  Only equality
value predicates are supported, as in the paper (Section 4).
"""

from __future__ import annotations

import re

from repro.query.twig import Axis, TwigNode, TwigPattern

_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<eq>=)
  | (?P<dot>\.)
  | (?P<star>\*)
  | (?P<text>text\(\))
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<name>[A-Za-z_@\u0080-\U0010ffff][-\w.:@\u0080-\U0010ffff]*)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class XPathSyntaxError(ValueError):
    """Raised when a query string falls outside the supported subset."""


def _tokenize(query):
    pos = 0
    tokens = []
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if not match:
            raise XPathSyntaxError(
                f"unexpected character {query[pos]!r} at {pos} in {query!r}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(0), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, query):
        self._query = query
        self._tokens = _tokenize(query)
        self._pos = 0

    def _peek(self):
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return (None, "", len(self._query))

    def _next(self):
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind):
        token = self._next()
        if token[0] != kind:
            raise XPathSyntaxError(
                f"expected {kind} at position {token[2]} in {self._query!r}, "
                f"got {token[1]!r}")
        return token

    def parse(self):
        """Parse the token stream into a TwigPattern."""
        kind, _, _ = self._peek()
        absolute = True
        if kind == "dslash":
            absolute = False
            self._next()
        elif kind == "slash":
            self._next()
        root = self._parse_step(Axis.CHILD)
        self._parse_path_tail(root)
        if self._pos != len(self._tokens):
            token = self._peek()
            raise XPathSyntaxError(
                f"trailing input at position {token[2]} in {self._query!r}")
        return TwigPattern(root, absolute=absolute, source=self._query)

    def _parse_step(self, axis):
        kind, text, pos = self._next()
        if kind == "name":
            node = TwigNode(text, axis=axis)
        elif kind == "star":
            node = TwigNode("*", axis=axis)
        else:
            raise XPathSyntaxError(
                f"expected a name test at position {pos} in {self._query!r}")
        while self._peek()[0] == "lbrack":
            self._parse_predicate(node)
        return node

    def _parse_path_tail(self, context):
        """Parse ``(sep step)*`` extending a single downward path."""
        node = context
        while True:
            kind = self._peek()[0]
            if kind == "dslash":
                self._next()
                node = node.append(self._parse_step(Axis.DESCENDANT))
            elif kind == "slash":
                self._next()
                node = node.append(self._parse_step(Axis.CHILD))
            else:
                return node

    def _parse_predicate(self, context):
        self._expect("lbrack")
        kind, _, pos = self._peek()
        tail_end = context
        if kind == "text":
            self._next()
            self._expect("eq")
            literal = self._expect("string")[1][1:-1]
            context.append(TwigNode(literal, axis=Axis.CHILD, is_value=True))
            self._expect("rbrack")
            return
        if kind == "dot":
            self._next()
            tail_end = self._parse_path_tail(context)
            if tail_end is context:
                raise XPathSyntaxError(
                    f"predicate '.' must be followed by a path at {pos}")
        elif kind in ("name", "star", "slash", "dslash"):
            # [author="X"] is shorthand for [./author="X"].
            if kind in ("name", "star"):
                tail_end = context.append(self._parse_step(Axis.CHILD))
                tail_end = self._parse_path_tail(tail_end)
            else:
                tail_end = self._parse_path_tail(context)
                if tail_end is context:
                    raise XPathSyntaxError(
                        f"empty predicate path at position {pos}")
        else:
            raise XPathSyntaxError(
                f"unsupported predicate at position {pos} in {self._query!r}")
        if self._peek()[0] == "eq":
            self._next()
            literal = self._expect("string")[1][1:-1]
            tail_end.append(TwigNode(literal, axis=Axis.CHILD, is_value=True))
        self._expect("rbrack")


def parse_xpath(query):
    """Parse an XPath-subset string into a :class:`TwigPattern`."""
    if not query or not query.strip():
        raise XPathSyntaxError("empty query")
    return _Parser(query.strip()).parse()
