"""``prix serve``: the concurrent query-serving tier (``docs/SERVING.md``).

A long-lived process answering twig queries over shared **read-only**
PRIX indexes -- the step that turns the paper's filter-then-refine
matching into something that can sit behind real traffic (ROADMAP
item 2).  The subsystem is the repo's *serving* layer: it sits atop the
logical index layers in ``.prixarch.toml`` and reaches storage only
through the ``storage-api`` facade, with ``# prixeffect:`` contracts on
its handlers and ``# prixrace:`` annotations on its shared state.

Modules:

- :mod:`repro.serve.protocol` -- the HTTP/JSON request protocol: typed
  error responses mirroring the CLI exit-code vocabulary, canonical
  result serialization (including the ``approximate=True`` degradation
  contract with its structured
  :class:`~repro.prix.budget.DegradationReason`).
- :mod:`repro.serve.admission` -- admission control: a draining flag,
  an in-flight cap, and per-request
  :class:`~repro.prix.budget.QueryBudget` quotas forked from one
  server-wide configuration.
- :mod:`repro.serve.registry` -- named index mounts over
  ``PrixIndex.open(backend="mmap")`` (or ``"file"``/``"arena"``), with
  leases, hot reload-on-generation (atomic swap under the registry
  latch, old generation drained before close) and a cached
  ``scrub``-backed health report per generation.
- :mod:`repro.serve.metrics` -- per-endpoint request/latency/
  degradation counters (plus named operational events: circuit
  transitions, generation leaks) behind the ``serve-metrics`` latch.
- :mod:`repro.serve.breaker` -- the per-mount circuit breaker: a
  closed/open/half-open state machine behind the ``serve-circuit``
  latch that sheds requests against a mount whose reads keep failing
  and re-scrubs before closing again.
- :mod:`repro.serve.client` -- the retrying stdlib client: exponential
  backoff with seeded full jitter, ``Retry-After`` honoured as a
  floor, idempotent-only retries, and a typed :class:`ClientError`
  hierarchy mirroring :mod:`repro.exitcodes`.
- :mod:`repro.serve.server` -- the ``ThreadingHTTPServer`` front end,
  endpoint dispatch, per-request socket timeouts (slow-loris defense),
  ``X-Prix-Deadline-Ms`` deadline propagation, and graceful drain on
  SIGTERM.
- ``python -m repro.serve`` / ``prix serve`` -- the process entry
  points.

The chaos matrix (``tests/test_chaos_matrix.py``) drives this whole
stack over a fault-injecting storage backend
(:class:`~repro.storage.faults.ChaosBackend`) and holds it to the
robustness oracle: every response is byte-identical-correct, a typed
error, or a sound ``approximate=True`` superset -- and the retrying
client's view converges to the fault-free answers.
"""

from repro.serve.admission import AdmissionController, ServerLimits
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import (ClientCorruptionError, ClientError,
                                ClientTimeoutError, ClientUsageError,
                                PrixServeClient, ServerUnavailableError)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import ProtocolError, QueryRequest
from repro.serve.registry import IndexRegistry, ServeError

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ClientCorruptionError",
    "ClientError",
    "ClientTimeoutError",
    "ClientUsageError",
    "IndexRegistry",
    "PrixServeClient",
    "ProtocolError",
    "QueryRequest",
    "ServeError",
    "ServerLimits",
    "ServerMetrics",
    "ServerUnavailableError",
]
