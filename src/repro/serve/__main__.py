"""``python -m repro.serve`` -- run the query server standalone.

The same entry point ``prix serve`` dispatches to; see
:mod:`repro.serve.server` and ``docs/SERVING.md``.
"""

import argparse
import sys

from repro.serve.server import add_serve_arguments, run


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="serve twig queries over saved PRIX indexes")
    add_serve_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
