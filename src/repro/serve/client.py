"""A retrying stdlib client for ``prix serve``.

:class:`PrixServeClient` is the reference consumer of the serving
protocol and the convergence arm of the chaos matrix: given a server
whose storage layer is throwing deterministic faults
(:class:`~repro.storage.faults.ChaosBackend`), a client that follows
the retry discipline below must eventually read answers byte-identical
to a fault-free run -- or surface a *typed* failure, never a silent
wrong answer.

The discipline (``docs/ROBUSTNESS.md``, "Chaos & resilience"):

- **Retry only idempotent requests.**  ``POST /query`` is a pure read
  (replaying it cannot change server state), so it retries like the
  GET endpoints; ``POST /reload`` mutates the mount table and is never
  retried -- a reload whose response was lost may have succeeded.
- **Retry only retryable outcomes**: transport failures (connection
  refused/reset, socket timeouts) and the protocol's retryable
  statuses -- 408 (request timeout), 429 (budget), 500
  (corruption/internal: under chaos these are transient and the read
  path self-repairs), 503 (over-capacity / draining / circuit-open).
  Typed 4xx caller mistakes (400/404/405/403) fail fast.
- **Exponential backoff with seeded full jitter**: attempt ``k`` sleeps
  ``uniform(0, min(max, base * 2**k))`` from a ``random.Random(seed)``
  private to the client -- deterministic under test, uncorrelated
  across clients in a thundering herd.
- **Honour ``Retry-After``**: a server-provided horizon (body field or
  HTTP header -- e.g. the circuit breaker's remaining cooldown) is a
  *floor* under the jittered delay, never ignored.

Failures raise a typed :class:`ClientError` hierarchy mirroring
:mod:`repro.exitcodes` -- ``prix client`` exits with
``error.exit_code``, so scripts branch on the same taxonomy the CLI
and server already share.

Stdlib only (``urllib``); the opener and the sleep are injectable so
unit tests run without sockets or wall-clock.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from repro.exitcodes import (EXIT_CORRUPTION, EXIT_ERROR, EXIT_TIMEOUT,
                             EXIT_USAGE)
from repro.serve.protocol import DEADLINE_HEADER, DEFAULT_INDEX

#: Retries after the first attempt (so ``retries=5`` means at most six
#: requests on the wire).
DEFAULT_RETRIES = 5

#: First backoff ceiling; doubles per failed attempt.
DEFAULT_BACKOFF_BASE_SECONDS = 0.05

#: Backoff ceiling cap.
DEFAULT_BACKOFF_MAX_SECONDS = 2.0

#: Per-request socket timeout.
DEFAULT_TIMEOUT_SECONDS = 30.0

#: HTTP statuses worth retrying (see module docstring).
RETRYABLE_STATUSES = frozenset({408, 429, 500, 503})


class ClientError(Exception):
    """Base client failure; ``exit_code`` mirrors :mod:`repro.exitcodes`.

    ``status`` is the HTTP status (None for transport failures),
    ``error`` the parsed protocol error object (empty for non-protocol
    failures), ``payload`` the full parsed response body when one was
    readable, and ``retry_after`` the server's backoff floor in seconds
    (None when the server offered none).
    """

    exit_code = EXIT_ERROR

    def __init__(self, message, *, status=None, error=None, payload=None):
        super().__init__(message)
        self.status = status
        self.error = error or {}
        self.payload = payload
        self.retry_after = None


class ClientUsageError(ClientError):
    """The request itself was wrong (400/404/405); retrying is useless."""

    exit_code = EXIT_USAGE


class ClientCorruptionError(ClientError):
    """The server reported data corruption it could not repair."""

    exit_code = EXIT_CORRUPTION


class ClientTimeoutError(ClientError):
    """The request (or its propagated deadline) ran out of time."""

    exit_code = EXIT_TIMEOUT


class ServerUnavailableError(ClientError):
    """The server shed the request (over-capacity, draining,
    circuit-open) -- nothing wrong with the request itself."""

    exit_code = EXIT_ERROR


#: Protocol error codes that mean "the server is shedding load".
_UNAVAILABLE_CODES = frozenset({"over-capacity", "draining",
                                "circuit-open"})

#: exit_code -> exception class for everything else.
_ERROR_CLASSES = {
    EXIT_USAGE: ClientUsageError,
    EXIT_CORRUPTION: ClientCorruptionError,
    EXIT_TIMEOUT: ClientTimeoutError,
}


def _error_class(error):
    """Pick the typed exception for one parsed protocol error object."""
    if error.get("code") in _UNAVAILABLE_CODES:
        return ServerUnavailableError
    return _ERROR_CLASSES.get(error.get("exit_code"), ClientError)


def _default_opener(request, timeout):
    """The production opener: plain :func:`urllib.request.urlopen`."""
    return urllib.request.urlopen(request, timeout=timeout)  # noqa: S310


class PrixServeClient:
    """Typed, retrying access to one ``prix serve`` endpoint set."""

    def __init__(self, base_url, *, retries=DEFAULT_RETRIES,
                 timeout=DEFAULT_TIMEOUT_SECONDS, seed=0,
                 backoff_base=DEFAULT_BACKOFF_BASE_SECONDS,
                 backoff_max=DEFAULT_BACKOFF_MAX_SECONDS,
                 sleep=time.sleep, opener=None):
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.timeout = timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._sleep = sleep
        # Seeded by contract (the prixlint seeded-rng rule): jitter must
        # be replayable under test and uncorrelated across clients.
        self._rng = random.Random(seed)
        self._opener = opener if opener is not None else _default_opener

    # ------------------------------------------------------------ endpoints

    def query(self, xpath, *, index=DEFAULT_INDEX, ordered=False,
              variant=None, use_maxgap=True, limit=None, deadline_ms=None):
        """``POST /query`` (idempotent: retried).

        ``deadline_ms`` rides the ``X-Prix-Deadline-Ms`` header and
        tightens the server-side budget fork.  Returns the parsed
        response body (exact or ``approximate=True`` degraded).
        """
        body = {"xpath": xpath, "index": index}
        if ordered:
            body["ordered"] = True
        if variant is not None:
            body["variant"] = variant
        if not use_maxgap:
            body["use_maxgap"] = False
        if limit is not None:
            body["limit"] = limit
        headers = {}
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = repr(float(deadline_ms))
        return self._request("POST", "/query", body=body, headers=headers,
                             idempotent=True)

    def healthz(self):
        """``GET /healthz``; an unhealthy 503 returns its body rather
        than raising (the verdict *is* the answer)."""
        try:
            return self._request("GET", "/healthz", idempotent=True)
        except ClientError as error:
            if (error.status == 503 and error.payload is not None
                    and "healthy" in error.payload):
                return error.payload
            raise

    def metrics(self):
        """``GET /metrics`` (idempotent: retried)."""
        return self._request("GET", "/metrics", idempotent=True)

    def indexes(self):
        """``GET /indexes`` (idempotent: retried)."""
        return self._request("GET", "/indexes", idempotent=True)

    def reload(self, index=DEFAULT_INDEX):
        """``POST /reload`` -- **never retried**: a reload whose
        response was lost may have committed, and replaying it would
        swap generations twice."""
        return self._request("POST", "/reload", body={"index": index},
                             idempotent=False)

    # ------------------------------------------------------------ mechanics

    def _delay(self, failures, error):
        """Backoff before retry number ``failures + 1``: seeded full
        jitter, floored by the server's ``Retry-After`` when present."""
        ceiling = min(self.backoff_max,
                      self.backoff_base * (2 ** failures))
        delay = self._rng.uniform(0.0, ceiling)
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def _request(self, method, path, body=None, headers=None,
                 idempotent=True):
        attempts = self.retries + 1 if idempotent else 1
        last_error = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self._delay(attempt - 1, last_error))
            try:
                return self._attempt(method, path, body, headers)
            except ClientError as error:
                last_error = error
                if error.status is not None and (
                        error.status not in RETRYABLE_STATUSES):
                    raise
        raise last_error

    def _attempt(self, method, path, body, headers):
        url = self.base_url + path
        data = None
        request_headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        if headers:
            request_headers.update(headers)
        request = urllib.request.Request(  # noqa: S310 - http by design
            url, data=data, headers=request_headers, method=method)
        try:
            with self._opener(request, self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raise self._typed_error(url, error) from error
        except (urllib.error.URLError, TimeoutError, OSError) as error:
            # Transport failure: no response at all (status=None), so
            # always retryable for idempotent requests.
            raise ClientError(
                f"transport failure talking to {url}: {error}") from error
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            bad = ClientError(f"undecodable response from {url}: {error}",
                              status=200)
            raise bad from error

    @staticmethod
    def _typed_error(url, http_error):
        """Convert an :class:`urllib.error.HTTPError` into the typed
        hierarchy, preserving the protocol error object and the
        server's ``Retry-After`` (body field first, header fallback)."""
        status = http_error.code
        payload = None
        error = {}
        try:
            payload = json.loads(http_error.read().decode("utf-8"))
            if isinstance(payload, dict):
                error = payload.get("error") or {}
        except (ValueError, UnicodeDecodeError, OSError):
            payload = None
        code = error.get("code", f"http-{status}")
        message = error.get("message", f"HTTP {status} from {url}")
        typed = _error_class(error)(f"{code}: {message}", status=status,
                                    error=error, payload=payload)
        retry_after = error.get("retry_after")
        if retry_after is None and http_error.headers is not None:
            header = http_error.headers.get("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
        typed.retry_after = retry_after
        return typed
