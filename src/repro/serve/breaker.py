"""Per-mount circuit breaking for the serving tier.

A mount whose reads keep failing -- corrupt pages, a sick disk, an
injected chaos storm -- should stop burning admission slots and buffer
pool work on requests that are going to fail anyway.  The
:class:`CircuitBreaker` tracks consecutive *infrastructure* failures
(protocol codes ``corruption`` and ``internal``; admission rejections
and caller mistakes never count) per mount name and walks the classic
three-state machine (``docs/ROBUSTNESS.md``, "Chaos & resilience"):

- **closed** -- normal operation.  ``threshold`` consecutive tripping
  errors open the circuit.
- **open** -- every request is rejected up front with a typed
  ``circuit-open`` (HTTP 503) whose ``Retry-After`` is the remaining
  cooldown.  After ``cooldown_seconds`` the next request becomes the
  half-open probe.
- **half-open** -- exactly one probe runs; concurrent requests keep
  getting ``circuit-open``.  A successful probe *re-scrubs the mount*
  (:meth:`~repro.serve.registry.IndexRegistry.rescrub`) before closing
  -- a circuit that opened on corruption must not close on one lucky
  read -- and reopens if the scrub finds damage.  A failed probe
  reopens for another cooldown.

Concurrency: all breaker state lives behind the object's own
``serve-circuit`` latch -- a leaf like ``serve-metrics``, held for
state transitions only, never across a probe, a scrub, or any storage
call.  The ``on_event`` callback (wired to
:meth:`ServerMetrics.record_event`) and the ``rescrub`` callable are
always invoked *outside* the latch so ``serve-circuit`` never nests
with another serve latch.  ``clock`` is injectable so cooldown
behaviour is deterministic under test.
"""

from __future__ import annotations

import math
import time

from repro.serve.protocol import ProtocolError, error_for_exception
from repro.storage import Latch

#: Consecutive tripping errors that open a closed circuit.
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds an open circuit rejects before admitting a half-open probe.
DEFAULT_COOLDOWN_SECONDS = 2.0

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: Protocol error codes that count toward opening the circuit: mount
#: infrastructure failures, not caller mistakes or admission pushback.
TRIPPING_CODES = frozenset({"corruption", "internal"})


class _Circuit:
    """Mutable per-mount breaker state; guarded by the owning
    :class:`CircuitBreaker`'s ``serve-circuit`` latch (shared, so one
    latch orders every transition against every other).  No
    ``__slots__``: the ``PRIX_SANITIZE=1`` guarded-field descriptors
    store through the instance ``__dict__``."""

    #: Machine-readable twin of the ``guarded-by`` comments below.
    _GUARDED = {"state": "_latch", "failures": "_latch",
                "opened_until": "_latch", "probing": "_latch",
                "opened_total": "_latch"}

    def __init__(self, latch):
        self._latch = latch
        self.state = STATE_CLOSED   # prixrace: guarded-by=_latch
        self.failures = 0           # prixrace: guarded-by=_latch
        self.opened_until = 0.0     # prixrace: guarded-by=_latch
        self.probing = False        # prixrace: guarded-by=_latch
        self.opened_total = 0       # prixrace: guarded-by=_latch

    def as_dict(self):  # prixrace: requires=_latch
        return {"state": self.state,
                "consecutive_failures": self.failures,
                "opened_total": self.opened_total}


class CircuitBreaker:
    """Track per-mount failure streaks; gate requests when a mount is
    sick."""

    def __init__(self, threshold=DEFAULT_FAILURE_THRESHOLD,
                 cooldown_seconds=DEFAULT_COOLDOWN_SECONDS,
                 clock=time.monotonic, on_event=None):
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._on_event = on_event
        self._latch = Latch("serve-circuit")
        self._circuits = {}  # prixrace: guarded-by=_latch

    #: Machine-readable twin of the ``guarded-by`` comment above; the
    #: runtime sanitizer installs guarded-access assertions from this
    #: mapping once the object is shared between threads.
    _GUARDED = {"_circuits": "_latch"}

    def _emit(self, events):
        """Fire ``on_event`` for each transition, outside the latch."""
        if self._on_event is not None:
            for event in events:
                self._on_event(event)

    def _circuit(self, name):  # prixeffect: declares=latch-acquire
        """The (created-on-first-use) circuit for mount ``name``."""
        with self._latch:
            circuit = self._circuits.get(name)
        if circuit is None:
            fresh = _Circuit(self._latch)
            with self._latch:
                circuit = self._circuits.setdefault(name, fresh)
        return circuit

    def allow(self, name):  # prixeffect: declares=latch-acquire
        """Gate one request against mount ``name``'s circuit.

        Returns True when this request is the half-open probe (the
        caller must report its outcome via :meth:`record` with
        ``probe=True``), False for a normal closed-circuit request.
        Raises a typed ``circuit-open`` :class:`ProtocolError` -- with
        the remaining cooldown as ``Retry-After`` -- while the circuit
        is open or another probe is in flight.
        """
        circuit = self._circuit(name)
        now = self._clock()
        events = []
        try:
            with self._latch:
                if circuit.state == STATE_CLOSED:
                    return False
                if circuit.state == STATE_OPEN:
                    if now < circuit.opened_until:
                        remaining = circuit.opened_until - now
                        raise ProtocolError(
                            "circuit-open",
                            f"index {name!r}: circuit opened after "
                            f"{circuit.failures} consecutive failures; "
                            f"half-open probe in {remaining:.2f}s",
                            retry_after=max(1, math.ceil(remaining)))
                    circuit.state = STATE_HALF_OPEN
                    circuit.probing = True
                    events.append("circuit-half-open")
                    return True
                # Half-open: one probe at a time.
                if circuit.probing:
                    raise ProtocolError(
                        "circuit-open",
                        f"index {name!r}: a half-open probe is already "
                        "in flight; retry shortly",
                        retry_after=1)
                circuit.probing = True
                events.append("circuit-half-open")
                return True
        finally:
            self._emit(events)

    def record(self, name, *, probe, error=None, rescrub=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """Report one finished request against mount ``name``.

        ``error`` is the exception the request died with (None for
        success); its protocol code decides whether it *trips* the
        breaker (``corruption``/``internal``), counts as success, or is
        neutral (admission pushback, bad requests -- the probe slot is
        returned but the streak is untouched).  ``probe`` must be the
        value :meth:`allow` returned for this request.  ``rescrub`` is
        the health check a successful probe must pass before the
        circuit closes -- a callable returning True for healthy, run
        outside the latch (it sweeps the whole mount).

        The declared effects cover ``rescrub``'s scrub sweep, which the
        static inference cannot see through the callable.
        """
        code = None if error is None else error_for_exception(error).code
        now = self._clock()
        events = []
        run_rescrub = False
        with self._latch:
            circuit = self._circuits.get(name)
            if circuit is None:
                return
            if error is None:
                if probe:
                    run_rescrub = True
                elif circuit.state == STATE_CLOSED:
                    circuit.failures = 0
            elif code in TRIPPING_CODES:
                circuit.failures += 1
                if probe or (circuit.state == STATE_CLOSED
                             and circuit.failures >= self.threshold):
                    circuit.state = STATE_OPEN
                    circuit.probing = False
                    circuit.opened_until = now + self.cooldown_seconds
                    circuit.opened_total += 1
                    events.append("circuit-open")
            elif probe:
                # Neutral outcome (e.g. budget-exhausted): the probe
                # proved nothing either way; hand the slot back.
                circuit.probing = False
        self._emit(events)
        if not run_rescrub:
            return
        healthy = True
        if rescrub is not None:
            try:
                healthy = bool(rescrub())
            except Exception:  # noqa: BLE001 - a failing scrub is a verdict
                healthy = False
        events = []
        with self._latch:
            circuit.probing = False
            if healthy:
                circuit.state = STATE_CLOSED
                circuit.failures = 0
                events.append("circuit-close")
            else:
                circuit.state = STATE_OPEN
                circuit.opened_until = self._clock() + self.cooldown_seconds
                circuit.opened_total += 1
                events.append("circuit-reopen")
        self._emit(events)

    def snapshot(self):  # prixeffect: declares=latch-acquire
        """JSON-ready per-mount circuit state (the ``/metrics`` view)."""
        with self._latch:
            return {name: circuit.as_dict()
                    for name, circuit in sorted(self._circuits.items())}


def _register_with_sanitizer():
    """Opt the guarded fields into ``PRIX_SANITIZE=1`` enforcement.

    The analysis layer cannot import the serving tier (that would
    invert the layering), so the serving tier registers itself.
    """
    from repro.analysis import sanitizer  # prixlint: disable=layering
    sanitizer.register_guarded_class(CircuitBreaker)
    sanitizer.register_guarded_class(_Circuit)


_register_with_sanitizer()
