"""The serving protocol: HTTP/JSON requests, typed error responses.

Everything that crosses the wire is defined here, and only here: the
request schema (:class:`QueryRequest`), the canonical result payloads,
and the **typed error vocabulary**.  Each error code carries both the
HTTP status the server answers with and the ``exit_code`` the
equivalent CLI invocation would return (imported from
:mod:`repro.exitcodes`, not restated, so the two surfaces cannot
drift) --
a script talking to ``prix serve`` can branch on exactly the same
vocabulary it already uses for ``prix query``.

The degradation contract travels the wire unchanged
(``docs/ROBUSTNESS.md``): a refinement-phase budget exhaustion comes
back as HTTP 200 with ``"approximate": true`` and the filter phase's
candidate documents -- a guaranteed superset of the exact answer, never
a silent wrong one -- plus the structured
:class:`~repro.prix.budget.DegradationReason`; a *filter*-phase
exhaustion is a hard typed rejection (``budget-exhausted``, HTTP 429)
because no sound superset exists.

Serialization is canonical -- ``sort_keys``, compact separators -- so
the protocol golden tests can assert responses byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.exitcodes import (EXIT_CORRUPTION, EXIT_ERROR, EXIT_TIMEOUT,
                             EXIT_USAGE)
from repro.prix.budget import BudgetExceededError
from repro.storage.errors import (CorruptionError, ReadOnlyBackendError,
                                  StorageError, WalError)

#: The default mount name queries target when the request names none.
DEFAULT_INDEX = "default"

#: Error code -> (HTTP status, CLI exit code).  The closed vocabulary of
#: typed rejections; every error body the server emits names one of
#: these codes, and the golden tests cover each.
ERROR_KINDS = {
    "bad-request": (400, EXIT_USAGE),
    "not-found": (404, EXIT_USAGE),
    "method-not-allowed": (405, EXIT_USAGE),
    "read-only": (403, EXIT_ERROR),
    "request-timeout": (408, EXIT_TIMEOUT),
    "budget-exhausted": (429, EXIT_ERROR),
    "over-capacity": (503, EXIT_ERROR),
    "draining": (503, EXIT_ERROR),
    "circuit-open": (503, EXIT_ERROR),
    "corruption": (500, EXIT_CORRUPTION),
    "internal": (500, EXIT_ERROR),
}

#: Default ``Retry-After`` hint (seconds) on retryable rejections whose
#: backoff has no better-informed horizon (the circuit breaker computes
#: its own from the remaining cooldown).
DEFAULT_RETRY_AFTER_SECONDS = 1

#: Request header carrying the client's deadline in milliseconds; the
#: server propagates it into the query's budget fork
#: (:meth:`repro.prix.budget.QueryBudget.fork`), where it can tighten
#: -- never loosen -- the server-wide wall-clock cap.
DEADLINE_HEADER = "X-Prix-Deadline-Ms"


def dumps(payload):
    """Canonical JSON bytes: sorted keys, compact separators.

    One serializer for every response body, so two servers (or a server
    and a golden test) given the same payload emit identical bytes.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class ProtocolError(Exception):
    """A typed request rejection carrying its wire representation.

    Raised anywhere in the serving path (parsing, admission, registry
    lookup); the handler catches it and answers with :attr:`http_status`
    and :meth:`body`.  ``detail`` is an optional JSON-ready object
    (e.g. a serialized ``DegradationReason``).  ``retry_after`` (whole
    seconds) marks the rejection as retryable: it rides in the body and
    the handler emits it as an HTTP ``Retry-After`` header, which the
    retrying client (:mod:`repro.serve.client`) honours as a backoff
    floor.
    """

    def __init__(self, code, message, detail=None, error_type=None,
                 retry_after=None):
        if code not in ERROR_KINDS:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail
        self.error_type = error_type or type(self).__name__
        self.retry_after = retry_after

    @property
    def http_status(self):
        return ERROR_KINDS[self.code][0]

    @property
    def exit_code(self):
        """The CLI exit code this failure maps to (the shared contract)."""
        return ERROR_KINDS[self.code][1]

    def body(self):
        """The JSON-ready error response payload."""
        error = {
            "code": self.code,
            "exit_code": self.exit_code,
            "error_type": self.error_type,
            "message": self.message,
        }
        if self.detail is not None:
            error["detail"] = self.detail
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"ok": False, "error": error}


def error_for_exception(error):
    """Map a library exception to its typed :class:`ProtocolError`.

    The serving twin of ``repro.cli.main``'s exception ladder: the same
    library failure lands on the same ``exit_code`` whether it surfaced
    through the CLI or through a served request.
    """
    if isinstance(error, ProtocolError):
        return error
    name = type(error).__name__
    if isinstance(error, BudgetExceededError):
        return ProtocolError(
            "budget-exhausted", str(error),
            detail=error.reason.as_dict(), error_type=name,
            retry_after=DEFAULT_RETRY_AFTER_SECONDS)
    if isinstance(error, ReadOnlyBackendError):
        return ProtocolError("read-only", str(error), error_type=name)
    if isinstance(error, (CorruptionError, WalError)):
        return ProtocolError("corruption", str(error), error_type=name)
    if isinstance(error, TimeoutError):
        # Before the OSError arm: socket timeouts subclass OSError but
        # deserve their own typed (and retryable) rejection.
        return ProtocolError("request-timeout", str(error) or "timed out",
                             error_type=name,
                             retry_after=DEFAULT_RETRY_AFTER_SECONDS)
    if isinstance(error, FileNotFoundError):
        missing = error.filename if error.filename else str(error)
        return ProtocolError("not-found", f"missing file: {missing}",
                             error_type=name)
    if isinstance(error, KeyError):
        # Registry/variant lookups raise KeyError with the offender.
        return ProtocolError("not-found", str(error).strip("'\""),
                             error_type=name)
    if isinstance(error, (StorageError, ValueError, OSError)):
        return ProtocolError("internal", str(error), error_type=name)
    return ProtocolError("internal", f"{name}: {error}", error_type=name)


@dataclass(frozen=True)
class QueryRequest:
    """One parsed, validated ``POST /query`` body."""

    xpath: str
    index: str = DEFAULT_INDEX
    ordered: bool = False
    variant: str | None = None
    use_maxgap: bool = True
    limit: int | None = None


#: Request fields -> (expected type, default).  ``None`` default means
#: the field is required.
_QUERY_FIELDS = {
    "xpath": (str, None),
    "index": (str, DEFAULT_INDEX),
    "ordered": (bool, False),
    "variant": (str, None),
    "use_maxgap": (bool, True),
    "limit": (int, None),
}


def parse_query_request(raw):
    """Parse request body bytes into a :class:`QueryRequest`.

    Every malformation -- undecodable JSON, a non-object body, a
    missing ``xpath``, a wrong-typed or unknown field -- is a
    ``bad-request`` :class:`ProtocolError` naming the offender, so
    clients debug against messages, not stack traces.
    """
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError("bad-request",
                            f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}")
    unknown = sorted(set(payload) - set(_QUERY_FIELDS))
    if unknown:
        raise ProtocolError(
            "bad-request",
            f"unknown request field(s): {', '.join(unknown)}; expected "
            f"{', '.join(sorted(_QUERY_FIELDS))}")
    values = {}
    for field, (expected, default) in _QUERY_FIELDS.items():
        value = payload.get(field, default)
        if value is None:
            if field == "xpath":
                raise ProtocolError("bad-request",
                                    "request is missing 'xpath'")
            continue
        # bool is an int subclass: reject True where an int is expected.
        if not isinstance(value, expected) or (
                expected is int and isinstance(value, bool)):
            raise ProtocolError(
                "bad-request",
                f"field {field!r} must be {expected.__name__}, got "
                f"{type(value).__name__}")
        values[field] = value
    if values.get("variant") not in (None, "rp", "ep"):
        raise ProtocolError(
            "bad-request",
            f"field 'variant' must be 'rp' or 'ep', got "
            f"{values['variant']!r}")
    if values.get("limit") is not None and values["limit"] < 0:
        raise ProtocolError("bad-request", "field 'limit' must be >= 0")
    return QueryRequest(**values)


def match_payload(match):
    """JSON-ready form of one :class:`~repro.prix.matcher.TwigMatch`."""
    return {"doc": match.doc_id,
            "images": [[index, number] for index, number in match.images]}


def stats_payload(stats):
    """JSON-ready subset of a ``QueryStats`` (the ``--explain`` view)."""
    return {
        "variant": stats.variant,
        "strategy": stats.strategy,
        "arrangements": stats.arrangements,
        "candidates_refined": stats.candidates_refined,
        "candidates_accepted": stats.candidates_accepted,
        "physical_reads": stats.physical_reads,
        "elapsed_ms": round(stats.elapsed_seconds * 1000.0, 3),
    }


def result_payload(request, matches, stats, generation):
    """The ``POST /query`` success body (exact or degraded).

    An exact answer lists every match (truncated to ``request.limit``
    with the overflow counted, like the CLI).  A degraded answer
    (refinement-phase budget exhaustion) lists the candidate documents
    and the structured degradation reason instead -- the result
    contract of ``docs/ROBUSTNESS.md`` on the wire.
    """
    approximate = bool(getattr(matches, "approximate", False))
    body = {
        "ok": True,
        "index": {"name": request.index, "generation": generation},
        "approximate": approximate,
        "stats": stats_payload(stats),
    }
    if approximate:
        reason = matches.degradation_reason
        body["degradation"] = reason.as_dict() if reason else None
        body["candidate_docs"] = matches.doc_ids
        body["candidate_count"] = len(matches.doc_ids)
        return body
    shown = list(matches)
    truncated = 0
    if request.limit is not None and len(shown) > request.limit:
        truncated = len(shown) - request.limit
        shown = shown[:request.limit]
    body["matches"] = [match_payload(match) for match in shown]
    body["match_count"] = len(matches)
    body["doc_ids"] = matches.doc_ids
    body["truncated"] = truncated
    return body
