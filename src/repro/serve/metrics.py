"""Server-side observability: per-endpoint request counters.

:class:`ServerMetrics` is the serving tier's answer sheet for
``GET /metrics``: per-endpoint request totals, typed-error counts by
protocol code, degraded (``approximate=True``) answers, admission
rejections, and latency accumulators -- plus an in-flight gauge fed by
the admission controller.

Concurrency: one metrics object is shared by every handler thread of a
:class:`~repro.serve.server.PrixServeServer`, so every counter lives
behind the object's own ``serve-metrics`` latch, mirroring the
:class:`~repro.storage.stats.IOStats` discipline.  ``serve-metrics`` is
a leaf in the latch order -- handlers take it last, for a few dict
increments, and never call back into the registry or storage while
holding it (``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

import time

from repro.storage import Latch


class EndpointMetrics:
    """Counters for one endpoint (``/query``, ``/healthz``, ...).

    Mutated only by :class:`ServerMetrics` while it holds the parent's
    ``serve-metrics`` latch; never shared on its own.
    """

    __slots__ = ("requests", "errors", "degraded", "rejected",
                 "latency_seconds_total", "latency_seconds_max")

    def __init__(self):
        self.requests = 0
        self.errors = {}            # protocol error code -> count
        self.degraded = 0
        self.rejected = 0
        self.latency_seconds_total = 0.0
        self.latency_seconds_max = 0.0

    def as_dict(self):
        return {
            "requests": self.requests,
            "errors": dict(sorted(self.errors.items())),
            "degraded": self.degraded,
            "rejected": self.rejected,
            "latency_seconds_total": round(self.latency_seconds_total, 6),
            "latency_seconds_max": round(self.latency_seconds_max, 6),
        }


class ServerMetrics:
    """Process-wide serving counters behind one ``serve-metrics`` latch.

    Handlers wrap their work in :meth:`observe`; the admission
    controller reports its gauge through :meth:`set_inflight`.  The
    ``/metrics`` endpoint serializes :meth:`snapshot`.
    """

    def __init__(self):
        self._latch = Latch("serve-metrics")
        self._endpoints = {}   # prixrace: guarded-by=_latch
        self._started = time.time()
        self._inflight = 0     # prixrace: guarded-by=_latch
        self._events = {}      # prixrace: guarded-by=_latch

    #: Machine-readable twin of the ``guarded-by`` comments above; the
    #: runtime sanitizer installs guarded-access assertions from this
    #: mapping once the object is shared between threads.
    _GUARDED = {"_endpoints": "_latch", "_inflight": "_latch",
                "_events": "_latch"}

    def _endpoint(self, name):  # prixrace: requires=_latch
        if name not in self._endpoints:
            self._endpoints[name] = EndpointMetrics()
        return self._endpoints[name]

    def observe(self, endpoint, seconds, *,  # prixeffect: declares=latch-acquire
                error_code=None, degraded=False, rejected=False):
        """Record one finished request against ``endpoint``.

        ``error_code`` is the typed protocol error code for a failed
        request (None for success); ``degraded`` marks an HTTP 200 that
        carried ``approximate=True``; ``rejected`` marks an admission
        rejection (over-capacity / draining), which is also counted
        under ``error_code``.
        """
        with self._latch:
            stats = self._endpoint(endpoint)
            stats.requests += 1
            stats.latency_seconds_total += seconds
            if seconds > stats.latency_seconds_max:
                stats.latency_seconds_max = seconds
            if error_code is not None:
                stats.errors[error_code] = (
                    stats.errors.get(error_code, 0) + 1)
            if degraded:
                stats.degraded += 1
            if rejected:
                stats.rejected += 1

    def record_event(self, name):  # prixeffect: declares=latch-acquire
        """Count one named operational event (circuit transitions,
        generation leaks, ...) -- the breaker's ``on_event`` sink.

        Callers must not hold any other serve latch: ``serve-metrics``
        stays a leaf, which is why the circuit breaker emits events only
        after releasing ``serve-circuit``.
        """
        with self._latch:
            self._events[name] = self._events.get(name, 0) + 1

    def set_inflight(self, value):  # prixeffect: declares=latch-acquire
        """Update the in-flight gauge (admission controller only)."""
        with self._latch:
            self._inflight = value

    def inflight(self):  # prixeffect: declares=latch-acquire
        """Latched read of the in-flight gauge."""
        with self._latch:
            return self._inflight

    def snapshot(self):  # prixeffect: declares=latch-acquire
        """JSON-ready copy of every counter (the ``/metrics`` body).

        Storage counters are *not* sampled here -- the server merges
        each mount's :class:`~repro.storage.stats.IOStats` snapshot in,
        so the latch order stays ``serve-registry`` before ``io-stats``
        and ``serve-metrics`` stays a leaf.
        """
        with self._latch:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "inflight": self._inflight,
                "events": dict(sorted(self._events.items())),
                "endpoints": {name: stats.as_dict()
                              for name, stats in
                              sorted(self._endpoints.items())},
            }


def _register_with_sanitizer():
    """Teach the runtime sanitizer about this module's guarded fields.

    The analysis layer cannot import the serving tier (that would
    invert the layering), so the serving tier registers itself -- the
    same sanctioned inversion ``scrub_path`` uses to reach the index
    layer, marked for reviewers on the import line.
    """
    from repro.analysis import sanitizer  # prixlint: disable=layering
    sanitizer.register_guarded_class(ServerMetrics)


_register_with_sanitizer()
