"""The ``prix serve`` front end: a threaded HTTP server over shared indexes.

One process, one :class:`PrixServeServer` -- a stdlib
:class:`~http.server.ThreadingHTTPServer` (thread per connection, no
dependencies) whose handler threads answer twig queries over index
generations shared through the :class:`~repro.serve.registry.IndexRegistry`.
The read path is why this works without a write lock anywhere: every
mount is a read-only backend (``mmap`` by default), so concurrent
queries only contend on the storage latches the stress oracle already
exercises (``docs/CONCURRENCY.md``).

Endpoints (all JSON; see :mod:`repro.serve.protocol` for the schemas):

- ``POST /query``   -- run one twig query against a named mount.
- ``POST /reload``  -- hot-swap a mount to a fresh generation.
- ``GET /healthz``  -- cached per-generation scrub verdicts.
- ``GET /metrics``  -- request/latency/degradation counters plus the
  per-mount storage ``IOStats``.
- ``GET /indexes``  -- the mount table.

Shutdown: SIGTERM (or SIGINT) triggers :meth:`PrixServeServer.drain` --
stop admitting, wait for in-flight queries, stop accepting, close every
mount.  The accept loop runs in a worker thread so the main thread can
sit in ``signal``-interruptible waits.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve import protocol
from repro.serve.admission import (AdmissionController,
                                   DEFAULT_MAX_INFLIGHT, ServerLimits)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (ProtocolError, error_for_exception,
                                  parse_query_request, result_payload)
from repro.serve.registry import DEFAULT_DRAIN_TIMEOUT, IndexRegistry

#: Request bodies larger than this are rejected outright (a twig query
#: is a few hundred bytes; nothing legitimate approaches this).
MAX_BODY_BYTES = 1 << 20


class PrixServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wiring registry, admission and metrics.

    ``daemon_threads`` so a drained shutdown never hangs on a stuck
    connection: admission already guarantees no *query* is in flight
    when the process exits.
    """

    daemon_threads = True

    def __init__(self, address, registry, admission, metrics):
        self.registry = registry
        self.admission = admission
        self.metrics = metrics
        super().__init__(address, PrixRequestHandler)

    def drain(self, timeout=DEFAULT_DRAIN_TIMEOUT):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Graceful shutdown: reject, drain, stop accepting, close.

        Returns True when every in-flight query finished inside
        ``timeout`` (the clean-drain signal the CI smoke job asserts);
        mounts are closed either way, since the process is exiting.
        """
        self.admission.begin_drain()
        clean = self.admission.wait_drained(timeout)
        self.shutdown()
        self.server_close()
        self.registry.close_all()
        return clean


class PrixRequestHandler(BaseHTTPRequestHandler):
    """Endpoint dispatch; every response goes through :meth:`_respond`.

    The handler owns no state: registry, admission and metrics all hang
    off ``self.server``.  Effects stay behind those objects -- this
    module performs no raw I/O of its own (sockets are not pages).
    """

    protocol_version = "HTTP/1.1"
    server_version = "prix-serve"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Quiet the per-request stderr chatter; /metrics observes."""

    def _respond(self, status, payload):
        body = protocol.dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                "bad-request",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length)

    def _run(self, endpoint, work):  # prixeffect: declares=latch-acquire
        """Execute one endpoint, map failures, record metrics.

        ``work`` returns ``(status, payload)``; any exception it raises
        is converted to its typed protocol error and served as JSON --
        a handler thread must never die with a traceback on the socket.

        Metrics are recorded *before* the response bytes go out: a
        client that has read its answer is guaranteed to see that
        request in a subsequent ``/metrics`` scrape, even though the
        scrape runs on a different handler thread.
        """
        started = time.perf_counter()
        error_code = None
        degraded = False
        rejected = False
        try:
            status, payload = work()
            degraded = bool(payload.get("approximate"))
        except Exception as error:  # noqa: BLE001 - boundary by design
            typed = error_for_exception(error)
            error_code = typed.code
            rejected = typed.code in ("over-capacity", "draining")
            status, payload = typed.http_status, typed.body()
        self.server.metrics.observe(
            endpoint, time.perf_counter() - started,
            error_code=error_code, degraded=degraded, rejected=rejected)
        self._respond(status, payload)

    # ------------------------------------------------------------ endpoints

    def do_GET(self):  # prixeffect: declares=latch-acquire
        if self.path == "/healthz":
            self._run("/healthz", self._healthz)
        elif self.path == "/metrics":
            self._run("/metrics", self._metrics)
        elif self.path == "/indexes":
            self._run("/indexes", self._indexes)
        elif self.path in ("/query", "/reload"):
            self._run(self.path, self._wrong_method)
        else:
            self._run(self.path, self._unknown_path)

    def do_POST(self):  # prixeffect: declares=latch-acquire
        if self.path == "/query":
            self._run("/query", self._query)
        elif self.path == "/reload":
            self._run("/reload", self._reload)
        elif self.path in ("/healthz", "/metrics", "/indexes"):
            self._run(self.path, self._wrong_method)
        else:
            self._run(self.path, self._unknown_path)

    def _unknown_path(self):
        raise ProtocolError(
            "not-found",
            f"no endpoint {self.path!r}; available: /query /reload "
            "/healthz /metrics /indexes")

    def _wrong_method(self):
        raise ProtocolError(
            "method-not-allowed",
            f"{self.command} is not allowed on {self.path}")

    def _query(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """``POST /query``: admit, lease, execute, serialize.

        The admission fork gives this request its own budget meter; the
        lease pins the mount's generation for exactly the query's
        lifetime, so a concurrent ``/reload`` can never close the pages
        under a running matcher.
        """
        request = parse_query_request(self._read_body())
        server = self.server
        with server.admission.admit() as budget:
            with server.registry.lease(request.index) as mount:
                matches, stats = mount.index.query_with_stats(
                    request.xpath, ordered=request.ordered,
                    variant=request.variant,
                    use_maxgap=request.use_maxgap, budget=budget)
                generation = mount.generation
        return 200, result_payload(request, matches, stats, generation)

    def _reload(self):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        raw = self._read_body()
        name = protocol.DEFAULT_INDEX
        if raw:
            import json
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ProtocolError(
                    "bad-request",
                    f"request body is not valid JSON: {error}")
            if not isinstance(payload, dict):
                raise ProtocolError("bad-request",
                                    "request body must be a JSON object")
            name = payload.get("index", name)
            if not isinstance(name, str):
                raise ProtocolError("bad-request",
                                    "field 'index' must be str")
        generation = self.server.registry.reload(name)
        return 200, {"ok": True, "index": name, "generation": generation}

    def _healthz(self):  # prixeffect: declares=latch-acquire
        health = self.server.registry.health()
        healthy = bool(health) and all(entry["healthy"]
                                       for entry in health.values())
        status = 200 if healthy else 503
        return status, {"ok": healthy, "healthy": healthy,
                        "draining": self.server.admission.draining(),
                        "indexes": health}

    def _metrics(self):  # prixeffect: declares=latch-acquire
        body = self.server.metrics.snapshot()
        body["ok"] = True
        body["storage"] = self.server.registry.stats()
        body["admission"] = {
            "inflight": self.server.admission.inflight(),
            "max_inflight": self.server.admission.limits.max_inflight,
            "draining": self.server.admission.draining(),
        }
        return 200, body

    def _indexes(self):  # prixeffect: declares=latch-acquire
        return 200, {"ok": True, "indexes": self.server.registry.describe()}


# ---------------------------------------------------------------- assembly

def build_server(mounts, *, host="127.0.0.1", port=0, backend="mmap",
                 pool_pages=None, limits=None,
                 drain_timeout=DEFAULT_DRAIN_TIMEOUT):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """Mount every ``(name, path)`` and return a bound, unstarted server.

    ``port=0`` binds an ephemeral port (tests and the CI smoke job read
    it back from ``server.server_address``).
    """
    registry = IndexRegistry(drain_timeout=drain_timeout)
    for name, path in mounts:
        registry.mount(name, path, backend=backend, pool_pages=pool_pages)
    admission = AdmissionController(limits or ServerLimits())
    metrics = ServerMetrics()
    return PrixServeServer((host, port), registry, admission, metrics)


def serve_until_signaled(server, *, signals=(signal.SIGTERM, signal.SIGINT),
                         out=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """Run the accept loop until a signal arrives, then drain.

    Returns 0 on a clean drain (every in-flight query finished), 1
    otherwise -- the process exit code.
    """
    out = out if out is not None else sys.stdout
    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    previous = {number: signal.signal(number, _handle)
                for number in signals}
    accept = threading.Thread(target=server.serve_forever,
                              name="prix-serve-accept")
    accept.start()
    host, port = server.server_address[:2]
    print(f"prix serve: listening on http://{host}:{port}", file=out,
          flush=True)
    try:
        stop.wait()
    finally:
        for number, handler in previous.items():
            signal.signal(number, handler)
        print("prix serve: draining", file=out, flush=True)
        clean = server.drain()
        accept.join()
        print("prix serve: drained cleanly" if clean
              else "prix serve: drain timed out", file=out, flush=True)
    return 0 if clean else 1


def add_serve_arguments(parser):
    """Attach the ``prix serve`` flags to an argparse parser."""
    parser.add_argument("index", help="index file to mount as 'default'")
    parser.add_argument("--mount", action="append", default=[],
                        metavar="NAME=PATH",
                        help="mount an additional index under NAME "
                             "(repeatable)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8399,
                        help="listen port (0 binds an ephemeral port)")
    parser.add_argument("--backend", choices=["file", "mmap", "arena"],
                        default="mmap",
                        help="storage backend for every mount "
                             "(default: mmap, read-only shared pages)")
    parser.add_argument("--pool-pages", type=int, default=None,
                        help="buffer-pool frames per mount")
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="concurrent-query cap; excess requests get "
                             "a typed over-capacity rejection")
    parser.add_argument("--budget-range-queries", type=int, default=None,
                        metavar="N",
                        help="per-request cap on trie range queries")
    parser.add_argument("--budget-reads", type=int, default=None,
                        metavar="N",
                        help="per-request cap on physical page reads")
    parser.add_argument("--budget-candidates", type=int, default=None,
                        metavar="N",
                        help="per-request cap on refinement candidates; "
                             "exceeding degrades to the approximate "
                             "superset answer")
    parser.add_argument("--budget-ms", type=float, default=None,
                        metavar="MS",
                        help="per-request wall-clock deadline in ms")
    parser.add_argument("--drain-timeout", type=float,
                        default=DEFAULT_DRAIN_TIMEOUT,
                        help="seconds to wait for in-flight queries on "
                             "shutdown and reload")
    return parser


def run(args):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """``prix serve`` / ``python -m repro.serve`` entry point."""
    mounts = [(protocol.DEFAULT_INDEX, args.index)]
    for spec in args.mount:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"error: --mount expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        mounts.append((name, path))
    limits = ServerLimits.from_args(
        max_inflight=args.max_inflight,
        max_range_queries=args.budget_range_queries,
        max_physical_reads=args.budget_reads,
        max_candidates=args.budget_candidates,
        deadline_seconds=(args.budget_ms / 1000.0
                          if args.budget_ms is not None else None))
    server = build_server(
        mounts, host=args.host, port=args.port, backend=args.backend,
        pool_pages=args.pool_pages, limits=limits,
        drain_timeout=args.drain_timeout)
    return serve_until_signaled(server)
