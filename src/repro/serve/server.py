"""The ``prix serve`` front end: a threaded HTTP server over shared indexes.

One process, one :class:`PrixServeServer` -- a stdlib
:class:`~http.server.ThreadingHTTPServer` (thread per connection, no
dependencies) whose handler threads answer twig queries over index
generations shared through the :class:`~repro.serve.registry.IndexRegistry`.
The read path is why this works without a write lock anywhere: every
mount is a read-only backend (``mmap`` by default), so concurrent
queries only contend on the storage latches the stress oracle already
exercises (``docs/CONCURRENCY.md``).

Endpoints (all JSON; see :mod:`repro.serve.protocol` for the schemas):

- ``POST /query``   -- run one twig query against a named mount.
- ``POST /reload``  -- hot-swap a mount to a fresh generation.
- ``GET /healthz``  -- cached per-generation scrub verdicts.
- ``GET /metrics``  -- request/latency/degradation counters plus the
  per-mount storage ``IOStats``.
- ``GET /indexes``  -- the mount table.

Shutdown: SIGTERM (or SIGINT) triggers :meth:`PrixServeServer.drain` --
stop admitting, wait for in-flight queries, stop accepting, close every
mount.  The accept loop runs in a worker thread so the main thread can
sit in ``signal``-interruptible waits.

Hardening (``docs/ROBUSTNESS.md``, "Chaos & resilience"):

- every connection gets a per-request **socket read timeout**
  (``--request-timeout``), so a slow-loris client that trickles header
  bytes gets a typed ``request-timeout`` (HTTP 408) and its thread
  back, instead of parking a handler forever;
- an ``X-Prix-Deadline-Ms`` request header **tightens** the query's
  budget deadline (:meth:`QueryBudget.fork`) -- a client's deadline
  propagates into the engine's cooperative cancellation checkpoints;
- a per-mount **circuit breaker** (:mod:`repro.serve.breaker`) sheds
  requests against a mount whose reads keep failing, and only closes
  again after a half-open probe *and* a clean re-scrub;
- retryable rejections carry an HTTP ``Retry-After`` header the
  retrying client (:mod:`repro.serve.client`) uses as a backoff floor.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve import protocol
from repro.serve.admission import (AdmissionController,
                                   DEFAULT_MAX_INFLIGHT, ServerLimits)
from repro.serve.breaker import (CircuitBreaker, DEFAULT_COOLDOWN_SECONDS,
                                 DEFAULT_FAILURE_THRESHOLD)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (DEADLINE_HEADER, ProtocolError,
                                  error_for_exception, parse_query_request,
                                  result_payload)
from repro.serve.registry import DEFAULT_DRAIN_TIMEOUT, IndexRegistry

#: Request bodies larger than this are rejected outright (a twig query
#: is a few hundred bytes; nothing legitimate approaches this).
MAX_BODY_BYTES = 1 << 20

#: Seconds a connection may sit idle mid-request (request line, headers
#: or body) before the server answers 408 and reclaims the thread.
DEFAULT_REQUEST_TIMEOUT = 30.0


class PrixServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wiring registry, admission and metrics.

    ``daemon_threads`` so a drained shutdown never hangs on a stuck
    connection: admission already guarantees no *query* is in flight
    when the process exits.
    """

    daemon_threads = True

    def __init__(self, address, registry, admission, metrics, *,
                 breaker=None, request_timeout=DEFAULT_REQUEST_TIMEOUT):
        self.registry = registry
        self.admission = admission
        self.metrics = metrics
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            on_event=metrics.record_event)
        self.request_timeout = request_timeout
        super().__init__(address, PrixRequestHandler)

    def drain(self, timeout=DEFAULT_DRAIN_TIMEOUT):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Graceful shutdown: reject, drain, stop accepting, close.

        Returns True when every in-flight query finished inside
        ``timeout`` (the clean-drain signal the CI smoke job asserts);
        mounts are closed either way, since the process is exiting.
        """
        self.admission.begin_drain()
        clean = self.admission.wait_drained(timeout)
        self.shutdown()
        self.server_close()
        self.registry.close_all()
        return clean


class PrixRequestHandler(BaseHTTPRequestHandler):
    """Endpoint dispatch; every response goes through :meth:`_respond`.

    The handler owns no state: registry, admission and metrics all hang
    off ``self.server``.  Effects stay behind those objects -- this
    module performs no raw I/O of its own (sockets are not pages).
    """

    protocol_version = "HTTP/1.1"
    server_version = "prix-serve"

    #: Socket read timeout; :meth:`setup` overrides it per-connection
    #: from the server's configuration and ``StreamRequestHandler``
    #: applies it via ``connection.settimeout`` -- the slow-loris
    #: defense (``docs/ROBUSTNESS.md``).
    timeout = DEFAULT_REQUEST_TIMEOUT

    # ------------------------------------------------------------- plumbing

    def setup(self):
        self.timeout = self.server.request_timeout
        self._timed_out = False
        super().setup()

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Quiet the per-request stderr chatter; /metrics observes."""

    def log_error(self, format, *args):  # noqa: A002 - stdlib signature
        """Detect the stdlib's request-line timeout.

        ``BaseHTTPRequestHandler.handle_one_request`` swallows the
        ``TimeoutError`` from a request line that never arrives and
        reports it only through this hook; flagging it here lets
        :meth:`handle_one_request` still answer with a typed 408
        instead of silently dropping the connection.
        """
        if str(format).startswith("Request timed out"):
            self._timed_out = True

    def handle_one_request(self):
        super().handle_one_request()
        if getattr(self, "_timed_out", False):
            self._timed_out = False
            self._respond_timeout()

    def _respond_timeout(self):
        """Answer a request-line timeout with a typed 408 and hang up."""
        # The timeout fired before request parsing: the attributes the
        # stdlib response machinery logs from may not exist yet.
        for attr, default in (("requestline", ""), ("command", ""),
                              ("request_version", "HTTP/1.1")):
            if not getattr(self, attr, None):
                setattr(self, attr, default)
        typed = ProtocolError(
            "request-timeout",
            f"no complete request within {self.timeout:.1f}s",
            retry_after=protocol.DEFAULT_RETRY_AFTER_SECONDS)
        self.server.metrics.observe("(request-line)", float(self.timeout),
                                    error_code=typed.code)
        self.close_connection = True
        try:
            self._respond(typed.http_status, typed.body(),
                          retry_after=typed.retry_after)
        except OSError:
            pass  # the client may already be gone; the thread is free

    def _respond(self, status, payload, retry_after=None):
        body = protocol.dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                "bad-request",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length)

    def _run(self, endpoint, work):  # prixeffect: declares=latch-acquire
        """Execute one endpoint, map failures, record metrics.

        ``work`` returns ``(status, payload)``; any exception it raises
        is converted to its typed protocol error and served as JSON --
        a handler thread must never die with a traceback on the socket.

        Metrics are recorded *before* the response bytes go out: a
        client that has read its answer is guaranteed to see that
        request in a subsequent ``/metrics`` scrape, even though the
        scrape runs on a different handler thread.
        """
        started = time.perf_counter()
        error_code = None
        degraded = False
        rejected = False
        retry_after = None
        try:
            status, payload = work()
            degraded = bool(payload.get("approximate"))
        except Exception as error:  # noqa: BLE001 - boundary by design
            typed = error_for_exception(error)
            error_code = typed.code
            retry_after = typed.retry_after
            rejected = typed.code in ("over-capacity", "draining")
            status, payload = typed.http_status, typed.body()
            if typed.code == "request-timeout":
                # A body read timed out mid-request: the connection's
                # framing is unrecoverable, so answer and hang up.
                self.close_connection = True
        self.server.metrics.observe(
            endpoint, time.perf_counter() - started,
            error_code=error_code, degraded=degraded, rejected=rejected)
        self._respond(status, payload, retry_after=retry_after)

    # ------------------------------------------------------------ endpoints

    def do_GET(self):  # prixeffect: declares=latch-acquire
        if self.path == "/healthz":
            self._run("/healthz", self._healthz)
        elif self.path == "/metrics":
            self._run("/metrics", self._metrics)
        elif self.path == "/indexes":
            self._run("/indexes", self._indexes)
        elif self.path in ("/query", "/reload"):
            self._run(self.path, self._wrong_method)
        else:
            self._run(self.path, self._unknown_path)

    def do_POST(self):  # prixeffect: declares=latch-acquire
        if self.path == "/query":
            self._run("/query", self._query)
        elif self.path == "/reload":
            self._run("/reload", self._reload)
        elif self.path in ("/healthz", "/metrics", "/indexes"):
            self._run(self.path, self._wrong_method)
        else:
            self._run(self.path, self._unknown_path)

    def _unknown_path(self):
        raise ProtocolError(
            "not-found",
            f"no endpoint {self.path!r}; available: /query /reload "
            "/healthz /metrics /indexes")

    def _wrong_method(self):
        raise ProtocolError(
            "method-not-allowed",
            f"{self.command} is not allowed on {self.path}")

    def _deadline_ms(self):
        """Parse the optional ``X-Prix-Deadline-Ms`` request header."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ProtocolError(
                "bad-request",
                f"header {DEADLINE_HEADER} must be a number of "
                f"milliseconds, got {raw!r}")
        if value <= 0:
            raise ProtocolError(
                "bad-request",
                f"header {DEADLINE_HEADER} must be > 0, got {raw!r}")
        return value

    def _query(self):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """``POST /query``: gate, admit, lease, execute, serialize.

        The circuit breaker gate runs first (an open circuit sheds the
        request before it costs an admission slot); the admission fork
        gives this request its own budget meter, tightened by the
        request's ``X-Prix-Deadline-Ms`` header when present; the lease
        pins the mount's generation for exactly the query's lifetime,
        so a concurrent ``/reload`` can never close the pages under a
        running matcher.  Every outcome is reported back to the breaker
        -- including the half-open probe's, whose success triggers the
        registry re-scrub (the declared ``raw-io`` upper bound) before
        the circuit closes.
        """
        request = parse_query_request(self._read_body())
        deadline_ms = self._deadline_ms()
        server = self.server
        probe = server.breaker.allow(request.index)
        try:
            with server.admission.admit(deadline_ms=deadline_ms) as budget:
                with server.registry.lease(request.index) as mount:
                    matches, stats = mount.index.query_with_stats(
                        request.xpath, ordered=request.ordered,
                        variant=request.variant,
                        use_maxgap=request.use_maxgap, budget=budget)
                    generation = mount.generation
        except Exception as error:
            server.breaker.record(request.index, probe=probe, error=error)
            raise
        server.breaker.record(
            request.index, probe=probe,
            rescrub=lambda: server.registry.rescrub(request.index))
        return 200, result_payload(request, matches, stats, generation)

    def _reload(self):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        raw = self._read_body()
        name = protocol.DEFAULT_INDEX
        if raw:
            import json
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ProtocolError(
                    "bad-request",
                    f"request body is not valid JSON: {error}")
            if not isinstance(payload, dict):
                raise ProtocolError("bad-request",
                                    "request body must be a JSON object")
            name = payload.get("index", name)
            if not isinstance(name, str):
                raise ProtocolError("bad-request",
                                    "field 'index' must be str")
        generation = self.server.registry.reload(name)
        return 200, {"ok": True, "index": name, "generation": generation}

    def _healthz(self):  # prixeffect: declares=latch-acquire
        health = self.server.registry.health()
        healthy = bool(health) and all(entry["healthy"]
                                       for entry in health.values())
        status = 200 if healthy else 503
        return status, {"ok": healthy, "healthy": healthy,
                        "draining": self.server.admission.draining(),
                        "indexes": health}

    def _metrics(self):  # prixeffect: declares=latch-acquire
        body = self.server.metrics.snapshot()
        body["ok"] = True
        body["storage"] = self.server.registry.stats()
        body["circuit"] = self.server.breaker.snapshot()
        body["leaked_generations"] = self.server.registry.leaked()
        body["admission"] = {
            "inflight": self.server.admission.inflight(),
            "max_inflight": self.server.admission.limits.max_inflight,
            "draining": self.server.admission.draining(),
        }
        return 200, body

    def _indexes(self):  # prixeffect: declares=latch-acquire
        return 200, {"ok": True, "indexes": self.server.registry.describe()}


# ---------------------------------------------------------------- assembly

def build_server(mounts, *, host="127.0.0.1", port=0, backend="mmap",
                 pool_pages=None, limits=None,
                 drain_timeout=DEFAULT_DRAIN_TIMEOUT, chaos=None,
                 request_timeout=DEFAULT_REQUEST_TIMEOUT,
                 circuit_threshold=DEFAULT_FAILURE_THRESHOLD,
                 circuit_cooldown=DEFAULT_COOLDOWN_SECONDS):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """Mount every ``(name, path)`` and return a bound, unstarted server.

    ``port=0`` binds an ephemeral port (tests and the CI smoke job read
    it back from ``server.server_address``).  ``chaos`` (a
    :class:`~repro.storage.faults.ChaosConfig`) wraps every mount's
    backend in deterministic fault injection -- the chaos matrix's
    entry point, never set in production.
    """
    registry = IndexRegistry(drain_timeout=drain_timeout)
    for name, path in mounts:
        registry.mount(name, path, backend=backend, pool_pages=pool_pages,
                       chaos=chaos)
    admission = AdmissionController(limits or ServerLimits())
    metrics = ServerMetrics()
    breaker = CircuitBreaker(threshold=circuit_threshold,
                             cooldown_seconds=circuit_cooldown,
                             on_event=metrics.record_event)
    return PrixServeServer((host, port), registry, admission, metrics,
                           breaker=breaker, request_timeout=request_timeout)


def serve_until_signaled(server, *, signals=(signal.SIGTERM, signal.SIGINT),
                         out=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """Run the accept loop until a signal arrives, then drain.

    Returns 0 on a clean drain (every in-flight query finished), 1
    otherwise -- the process exit code.
    """
    out = out if out is not None else sys.stdout
    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    previous = {number: signal.signal(number, _handle)
                for number in signals}
    accept = threading.Thread(target=server.serve_forever,
                              name="prix-serve-accept")
    accept.start()
    host, port = server.server_address[:2]
    print(f"prix serve: listening on http://{host}:{port}", file=out,
          flush=True)
    try:
        stop.wait()
    finally:
        for number, handler in previous.items():
            signal.signal(number, handler)
        print("prix serve: draining", file=out, flush=True)
        clean = server.drain()
        accept.join()
        print("prix serve: drained cleanly" if clean
              else "prix serve: drain timed out", file=out, flush=True)
    return 0 if clean else 1


def add_serve_arguments(parser):
    """Attach the ``prix serve`` flags to an argparse parser."""
    parser.add_argument("index", help="index file to mount as 'default'")
    parser.add_argument("--mount", action="append", default=[],
                        metavar="NAME=PATH",
                        help="mount an additional index under NAME "
                             "(repeatable)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8399,
                        help="listen port (0 binds an ephemeral port)")
    parser.add_argument("--backend", choices=["file", "mmap", "arena"],
                        default="mmap",
                        help="storage backend for every mount "
                             "(default: mmap, read-only shared pages)")
    parser.add_argument("--pool-pages", type=int, default=None,
                        help="buffer-pool frames per mount")
    parser.add_argument("--max-inflight", type=int,
                        default=DEFAULT_MAX_INFLIGHT,
                        help="concurrent-query cap; excess requests get "
                             "a typed over-capacity rejection")
    parser.add_argument("--budget-range-queries", type=int, default=None,
                        metavar="N",
                        help="per-request cap on trie range queries")
    parser.add_argument("--budget-reads", type=int, default=None,
                        metavar="N",
                        help="per-request cap on physical page reads")
    parser.add_argument("--budget-candidates", type=int, default=None,
                        metavar="N",
                        help="per-request cap on refinement candidates; "
                             "exceeding degrades to the approximate "
                             "superset answer")
    parser.add_argument("--budget-ms", type=float, default=None,
                        metavar="MS",
                        help="per-request wall-clock deadline in ms")
    parser.add_argument("--drain-timeout", type=float,
                        default=DEFAULT_DRAIN_TIMEOUT,
                        help="seconds to wait for in-flight queries on "
                             "shutdown and reload")
    parser.add_argument("--request-timeout", type=float,
                        default=DEFAULT_REQUEST_TIMEOUT, metavar="S",
                        help="socket read timeout per request; a stalled "
                             "client gets a typed 408 (slow-loris "
                             "defense)")
    parser.add_argument("--circuit-threshold", type=int,
                        default=DEFAULT_FAILURE_THRESHOLD, metavar="N",
                        help="consecutive corruption/internal errors that "
                             "open a mount's circuit")
    parser.add_argument("--circuit-cooldown", type=float,
                        default=DEFAULT_COOLDOWN_SECONDS, metavar="S",
                        help="seconds an open circuit rejects before its "
                             "half-open probe")
    chaos = parser.add_argument_group(
        "chaos", "deterministic fault injection (testing only; see "
                 "docs/ROBUSTNESS.md)")
    chaos.add_argument("--chaos-seed", type=int, default=None,
                       metavar="SEED",
                       help="arm the chaos backend with this seed "
                            "(required for any other --chaos-* flag)")
    chaos.add_argument("--chaos-read-error-period", type=int, default=None,
                       metavar="N",
                       help="inject a transient read error roughly every "
                            "N read ops")
    chaos.add_argument("--chaos-latency-period", type=int, default=None,
                       metavar="N",
                       help="inject read latency roughly every N read ops")
    chaos.add_argument("--chaos-latency-ms", type=float, default=1.0,
                       metavar="MS",
                       help="injected latency per latency fault")
    chaos.add_argument("--chaos-corrupt-period", type=int, default=None,
                       metavar="N",
                       help="serve a checksum-corrupted page image "
                            "roughly every N read ops (exercises the "
                            "guard's read-repair path)")
    chaos.add_argument("--chaos-fail-first", type=int, default=0,
                       metavar="N",
                       help="fail the first N read ops, then heal")
    return parser


def run(args):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
    """``prix serve`` / ``python -m repro.serve`` entry point."""
    mounts = [(protocol.DEFAULT_INDEX, args.index)]
    for spec in args.mount:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            print(f"error: --mount expects NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        mounts.append((name, path))
    limits = ServerLimits.from_args(
        max_inflight=args.max_inflight,
        max_range_queries=args.budget_range_queries,
        max_physical_reads=args.budget_reads,
        max_candidates=args.budget_candidates,
        deadline_seconds=(args.budget_ms / 1000.0
                          if args.budget_ms is not None else None))
    chaos = None
    if args.chaos_seed is not None:
        from repro.storage import ChaosConfig
        chaos = ChaosConfig(
            seed=args.chaos_seed,
            read_error_period=args.chaos_read_error_period,
            latency_period=args.chaos_latency_period,
            latency_ms=args.chaos_latency_ms,
            corrupt_period=args.chaos_corrupt_period,
            fail_first=args.chaos_fail_first)
    elif (args.chaos_read_error_period is not None
            or args.chaos_latency_period is not None
            or args.chaos_corrupt_period is not None
            or args.chaos_fail_first):
        print("error: --chaos-* flags require --chaos-seed",
              file=sys.stderr)
        return 2
    server = build_server(
        mounts, host=args.host, port=args.port, backend=args.backend,
        pool_pages=args.pool_pages, limits=limits,
        drain_timeout=args.drain_timeout, chaos=chaos,
        request_timeout=args.request_timeout,
        circuit_threshold=args.circuit_threshold,
        circuit_cooldown=args.circuit_cooldown)
    return serve_until_signaled(server)
