"""Admission control: capacity caps and per-request query budgets.

Every served query passes through one :class:`AdmissionController`
before it touches an index.  Admission enforces two server-wide limits
(:class:`ServerLimits`):

- **capacity** -- at most ``max_inflight`` queries run concurrently;
  request N+1 gets a typed ``over-capacity`` rejection (HTTP 503)
  instead of queueing unboundedly behind the GIL;
- **work** -- each admitted request is handed a *fresh*
  :class:`~repro.prix.budget.QueryBudget` forked from the server-wide
  configuration (:meth:`QueryBudget.fork`), so one expensive query can
  exhaust its own quota but never a neighbour's.  Filter-phase
  exhaustion surfaces as a typed ``budget-exhausted`` rejection;
  refinement-phase exhaustion degrades to the sound
  ``approximate=True`` superset (``docs/ROBUSTNESS.md``) and is served
  as a success.

Admission also owns the **drain** protocol used by graceful shutdown:
:meth:`AdmissionController.begin_drain` flips the controller into
draining mode (new queries get a typed ``draining`` rejection) and
:meth:`wait_drained` blocks until the in-flight count reaches zero.

Concurrency: the counter and flag live behind the controller's own
``serve-admission`` latch -- a leaf in the latch order, held only for
the increment/decrement, never across query execution.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.prix.budget import QueryBudget
from repro.serve.protocol import DEFAULT_RETRY_AFTER_SECONDS, ProtocolError
from repro.storage import Latch

#: Default concurrent-query cap; sized for a thread-per-request stdlib
#: server, where useful parallelism tops out near the core count.
DEFAULT_MAX_INFLIGHT = 32


@dataclass(frozen=True)
class ServerLimits:
    """Server-wide admission configuration (immutable once serving).

    ``budget`` is the per-request work quota *template*: every admitted
    request gets its own fork, never a shared meter.
    """

    max_inflight: int = DEFAULT_MAX_INFLIGHT
    budget: QueryBudget = field(default_factory=QueryBudget)

    @classmethod
    def from_args(cls, *, max_inflight=DEFAULT_MAX_INFLIGHT,
                  max_range_queries=None, max_physical_reads=None,
                  max_candidates=None, deadline_seconds=None):
        """Limits from CLI-flag values (None means unlimited)."""
        return cls(
            max_inflight=max_inflight,
            budget=QueryBudget(max_range_queries=max_range_queries,
                               max_physical_reads=max_physical_reads,
                               max_candidates=max_candidates,
                               deadline_seconds=deadline_seconds))


class AdmissionController:
    """Gate queries behind capacity, drain state and budget quotas."""

    def __init__(self, limits=None):
        self.limits = limits or ServerLimits()
        self._latch = Latch("serve-admission")
        self._idle = threading.Event()
        self._idle.set()
        self._inflight = 0      # prixrace: guarded-by=_latch
        self._draining = False  # prixrace: guarded-by=_latch

    #: Machine-readable twin of the ``guarded-by`` comments above; the
    #: runtime sanitizer installs guarded-access assertions from this
    #: mapping once the object is shared between threads.
    _GUARDED = {"_inflight": "_latch", "_draining": "_latch"}

    def inflight(self):  # prixeffect: declares=latch-acquire
        """Latched read of the number of admitted, unfinished queries."""
        with self._latch:
            return self._inflight

    def draining(self):  # prixeffect: declares=latch-acquire
        """Latched read of the drain flag."""
        with self._latch:
            return self._draining

    @contextmanager
    def admit(self, deadline_ms=None):  # prixeffect: declares=latch-acquire
        """Admit one query for the duration of a ``with`` block.

        Yields the request's private
        :class:`~repro.prix.budget.QueryBudget` (a fork of the
        server-wide template; ``deadline_ms`` -- the request's
        ``X-Prix-Deadline-Ms`` header -- tightens the fork's wall-clock
        cap but can never loosen the template's).  Raises a typed
        :class:`~repro.serve.protocol.ProtocolError` -- ``draining`` or
        ``over-capacity``, both carrying a ``Retry-After`` hint -- when
        the request must be rejected; the counter is only incremented on
        successful admission, so a rejection never leaks capacity.
        """
        with self._latch:
            if self._draining:
                raise ProtocolError(
                    "draining",
                    "server is draining; no new queries are admitted",
                    retry_after=DEFAULT_RETRY_AFTER_SECONDS)
            if self._inflight >= self.limits.max_inflight:
                raise ProtocolError(
                    "over-capacity",
                    f"server is at capacity "
                    f"({self.limits.max_inflight} queries in flight); "
                    "retry later",
                    retry_after=DEFAULT_RETRY_AFTER_SECONDS)
            self._inflight += 1
            self._idle.clear()
        try:
            yield self.limits.budget.fork(
                deadline_seconds=(deadline_ms / 1000.0
                                  if deadline_ms is not None else None))
        finally:
            with self._latch:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.set()

    def begin_drain(self):  # prixeffect: declares=latch-acquire
        """Stop admitting new queries (idempotent)."""
        with self._latch:
            self._draining = True

    def wait_drained(self, timeout=None):  # prixeffect: declares=latch-acquire
        """Block until every admitted query has finished.

        Call after :meth:`begin_drain`; returns True once in-flight hits
        zero, False on timeout.  Waits on an Event rather than spinning
        on the latch so draining threads do not contend with finishing
        queries.
        """
        return self._idle.wait(timeout)


def _register_with_sanitizer():
    """Opt the guarded fields into ``PRIX_SANITIZE=1`` enforcement.

    The analysis layer cannot import the serving tier (that would
    invert the layering), so the serving tier registers itself.
    """
    from repro.analysis import sanitizer  # prixlint: disable=layering
    sanitizer.register_guarded_class(AdmissionController)


_register_with_sanitizer()
