"""Named index mounts: shared handles, leases, hot reload, health.

The :class:`IndexRegistry` owns every :class:`~repro.prix.index.PrixIndex`
a server answers queries from.  Handlers never hold a raw index
reference across a request; they take a *lease* (:meth:`IndexRegistry.lease`)
for the duration of one query, which pins the mounted generation --
a hot :meth:`reload` can swap in a new generation at any moment, and
the old one is only closed once its last lease is released.

The reload protocol (``docs/SERVING.md``):

1. the new generation is opened and scrubbed *outside* the registry
   latch (opening is slow; the latch is for pointer swaps only);
2. the mount table entry is swapped under ``serve-registry`` -- new
   queries lease the new generation from this instant;
3. the old generation is marked retired; when its lease count reaches
   zero its ``drained`` event fires and the reloader closes it.  A
   generation with live leases is *never* closed, so an in-flight query
   keeps byte-stable pages under its feet for its whole lifetime.

Health is cached per generation: mounting (or reloading) runs a full
:func:`repro.storage.scrub_path` sweep and stores the report's
canonical :meth:`~repro.storage.guard.ScrubReport.to_json` string --
``GET /healthz`` serves that cached verdict instead of rescanning the
file on every probe.

Concurrency: the mount table and each mount's lease count live behind
the registry's single ``serve-registry`` latch.  The latch ordering is
``serve-registry`` strictly before any storage latch (a leased query
acquires buffer-pool/io-stats latches while the lease exists, never
the other way around) and ``serve-registry`` is never held while
opening or closing an index.
"""

from __future__ import annotations

import json
import threading

from repro.prix.index import PrixIndex
from repro.serve.protocol import ProtocolError
from repro.shard import ShardedIndex, is_shard_directory, scrub_shards
from repro.storage import Latch, scrub_path

#: How long a reload waits for the old generation's leases to drain
#: before giving up (queries are budgeted, so seconds suffice).
DEFAULT_DRAIN_TIMEOUT = 30.0


class ServeError(RuntimeError):
    """An operational serving failure (mount conflict, drain timeout).

    Distinct from :class:`~repro.serve.protocol.ProtocolError`: these are
    operator-facing conditions (bad configuration, a reload that cannot
    complete), not per-request rejections.
    """


class _Mount:
    """One mounted index generation.

    ``index``, ``path``, ``backend``, ``chaos`` and ``generation`` are
    immutable after construction; the mutable lease/retire/health state
    is guarded by the owning registry's ``serve-registry`` latch (shared
    via ``_latch``).  ``health_json`` is mutable because a circuit
    breaker's half-open probe re-scrubs the mount
    (:meth:`IndexRegistry.rescrub`) and refreshes the cached verdict.
    No ``__slots__``: the sanitizer's guarded-field descriptors store
    through ``__dict__``.
    """

    #: Machine-readable guarded-field map (runtime sanitizer); the latch
    #: is the *registry's* -- every mount of a registry shares it.
    _GUARDED = {"leases": "_latch", "retired": "_latch",
                "health_json": "_latch"}

    def __init__(self, name, path, backend, generation, index,
                 health_json, registry_latch, chaos=None):
        self.name = name
        self.path = path
        self.backend = backend
        self.generation = generation
        self.index = index
        self.chaos = chaos
        self._latch = registry_latch
        with registry_latch:
            self.leases = 0    # prixrace: guarded-by=_latch
            self.retired = False  # prixrace: guarded-by=_latch
            self.health_json = health_json  # prixrace: guarded-by=_latch
        self.drained = threading.Event()


class IndexRegistry:
    """The server's mount table: name -> live index generation."""

    def __init__(self, drain_timeout=DEFAULT_DRAIN_TIMEOUT):
        self._latch = Latch("serve-registry")
        self._mounts = {}  # prixrace: guarded-by=_latch
        self._leaked = []  # prixrace: guarded-by=_latch
        self.drain_timeout = drain_timeout

    #: Machine-readable twin of the ``guarded-by`` comments above.
    _GUARDED = {"_mounts": "_latch", "_leaked": "_latch"}

    def _open_generation(self, name, path, backend, generation,
                         pool_pages, chaos=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Scrub ``path``, open it read-shared, build the mount record.

        The scrub runs *before* the open so the cached health verdict
        describes exactly the bytes this generation serves, and so the
        checksum sidecar it materializes is already present for the
        open's guard auto-detection.  ``chaos`` (a
        :class:`~repro.storage.faults.ChaosConfig`) wraps the
        generation's backend in a fault-injecting
        :class:`~repro.storage.faults.ChaosBackend` -- the chaos-matrix
        harness's hook, never set in production serving.

        A *shard directory* (``prixshard.json`` manifest,
        ``docs/SHARDING.md``) mounts the same way: the scrub sweeps
        every shard plus the manifest, the open yields a
        :class:`~repro.shard.ShardedIndex` whose per-shard backends all
        use ``backend``, and a reload re-reads the manifest -- so a
        rebalance's new generation swaps in as one atomic hot reload.
        """
        if is_shard_directory(path):
            report = scrub_shards(path)
            index = ShardedIndex.open(path, backend=backend,
                                      pool_pages=pool_pages, chaos=chaos)
        else:
            report = scrub_path(path)
            index = PrixIndex.open(path, backend=backend,
                                   pool_pages=pool_pages, chaos=chaos)
        return _Mount(name, path, backend, generation, index,
                      report.to_json(), self._latch, chaos=chaos)

    def mount(self, name, path, *, backend="mmap",
              pool_pages=None, chaos=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Open ``path`` and serve it as ``name``.

        ``backend`` is any :func:`repro.storage.open_backend` kind --
        ``"mmap"`` (the serving default), ``"file"`` or ``"arena"``.
        Mounting an already-mounted name is a :class:`ServeError`; use
        :meth:`reload` to replace a generation.  ``chaos`` injects
        deterministic read faults into every generation of this mount
        (chaos testing only; see ``docs/ROBUSTNESS.md``).
        """
        with self._latch:
            if name in self._mounts:
                raise ServeError(f"index {name!r} is already mounted; "
                                 "use reload to replace it")
        mount = self._open_generation(name, path, backend, 1, pool_pages,
                                      chaos)
        with self._latch:
            if name in self._mounts:  # lost a mount race
                racer = True
            else:
                self._mounts[name] = mount
                racer = False
        if racer:
            mount.index.close()
            raise ServeError(f"index {name!r} is already mounted; "
                             "use reload to replace it")
        return mount.generation

    def reload(self, name, timeout=None):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Hot-swap ``name`` to a fresh generation of its index file.

        Re-opens the mount's path (picking up a rebuilt index), swaps it
        in atomically, then waits for the old generation's leases to
        drain before closing it.  Returns the new generation number.
        Unknown names raise ``KeyError`` (a typed ``not-found`` on the
        wire); a drain that exceeds ``timeout`` raises
        :class:`ServeError` -- the new generation stays live either way,
        and the stuck old generation is recorded in the :meth:`leaked`
        ledger (visible under ``/metrics``) until its last lease finally
        releases it, at which point :meth:`_release` closes it.
        """
        with self._latch:
            if name not in self._mounts:
                raise KeyError(f"no index mounted as {name!r}")
            old = self._mounts[name]
        fresh = self._open_generation(name, old.path, old.backend,
                                      old.generation + 1, None, old.chaos)
        with self._latch:
            self._mounts[name] = fresh
            old.retired = True
            idle = old.leases == 0
        if idle:
            old.drained.set()
        if timeout is None:
            timeout = self.drain_timeout
        if not old.drained.wait(timeout):
            with self._latch:
                # Re-check under the latch: the last lease may have
                # drained between the wait timing out and this instant,
                # in which case the old generation is safe to close now
                # rather than leak.
                stuck = old.leases > 0
                if stuck:
                    self._leaked.append(old)
            if not stuck:
                old.index.close()
                return fresh.generation
            raise ServeError(
                f"reload of {name!r}: generation {old.generation} still "
                f"has leases after {timeout:.1f}s; it stays open and "
                "leaks until its queries finish")
        old.index.close()
        return fresh.generation

    def lease(self, name):  # prixeffect: declares=latch-acquire
        """Pin the current generation of ``name`` for one query.

        Returns a context manager yielding the :class:`_Mount`; the
        mounted index cannot be closed by a concurrent reload until the
        ``with`` block exits.  Unknown names raise a typed
        ``not-found`` :class:`~repro.serve.protocol.ProtocolError`.
        """
        with self._latch:
            mount = self._mounts.get(name)
            if mount is None:
                raise ProtocolError(
                    "not-found",
                    f"no index mounted as {name!r}; mounted: "
                    f"{', '.join(sorted(self._mounts)) or '(none)'}")
            mount.leases += 1
        return _Lease(self, mount)

    def _release(self, mount):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """Return one lease; the last release of a leaked generation
        also closes it (the reload that retired it already gave up
        waiting, so nobody else will).
        """
        with self._latch:
            mount.leases -= 1
            fire = mount.retired and mount.leases == 0
            reap = fire and mount in self._leaked
            if reap:
                self._leaked.remove(mount)
        if fire:
            mount.drained.set()
        if reap:
            mount.index.close()

    def leaked(self):  # prixeffect: declares=latch-acquire
        """JSON-ready ledger of generations stuck past their reload's
        drain timeout (merged into ``GET /metrics``)."""
        with self._latch:
            return [{"name": mount.name,
                     "generation": mount.generation,
                     "leases": mount.leases}
                    for mount in self._leaked]

    def rescrub(self, name):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """Re-run the full scrub sweep for mount ``name`` and refresh
        its cached ``/healthz`` verdict.

        The circuit breaker's half-open probe calls this before closing
        a circuit that opened on corruption: one lucky read proves
        nothing, a clean sweep over every page does.  The sweep runs
        outside the registry latch (it is O(file)); only the cached
        verdict swap is latched.  Returns True when the mount's bytes
        are healthy.  Unknown names raise ``KeyError``.
        """
        with self._latch:
            mount = self._mounts.get(name)
        if mount is None:
            raise KeyError(f"no index mounted as {name!r}")
        if is_shard_directory(mount.path):
            report = scrub_shards(mount.path)
        else:
            report = scrub_path(mount.path)
        with self._latch:
            mount.health_json = report.to_json()
        return report.healthy

    def describe(self):  # prixeffect: declares=latch-acquire
        """JSON-ready mount table (the ``GET /indexes`` body)."""
        out = {}
        with self._latch:
            for name, mount in sorted(self._mounts.items()):
                row = {
                    "path": mount.path,
                    "backend": mount.backend,
                    "generation": mount.generation,
                    "leases": mount.leases,
                }
                if isinstance(mount.index, ShardedIndex):
                    row["shards"] = mount.index.shard_count
                out[name] = row
        return out

    def health(self):  # prixeffect: declares=latch-acquire
        """Cached per-mount scrub verdicts (the ``GET /healthz`` body).

        Each mount's ``scrub`` entry is the parsed form of the exact
        :meth:`~repro.storage.guard.ScrubReport.to_json` string cached
        when its generation was opened -- the same serializer ``prix
        scrub --json`` prints, so the two surfaces cannot drift.
        """
        with self._latch:
            # health_json is guarded by _latch (rescrub and hot reload
            # rewrite it in place), so snapshot it before parsing.
            rows = [(name, mount.generation, mount.health_json)
                    for name, mount in sorted(self._mounts.items())]
        out = {}
        for name, generation, health_json in rows:
            scrub = json.loads(health_json)
            out[name] = {
                "generation": generation,
                "healthy": (scrub["catalog_ok"]
                            and not scrub["pages_corrupt"]),
                "scrub": scrub,
            }
        return out

    def stats(self):  # prixeffect: declares=latch-acquire
        """Per-mount IOStats snapshots (merged into ``GET /metrics``)."""
        with self._latch:
            mounts = dict(self._mounts)
        out = {}
        for name, mount in sorted(mounts.items()):
            snap = mount.index.io_stats.snapshot()
            row = {
                "physical_reads": snap.physical_reads,
                "logical_reads": snap.logical_reads,
                "evictions": snap.evictions,
                "guard_verifications": snap.guard_verifications,
                "guard_repairs": snap.guard_repairs,
                "guard_quarantines": snap.guard_quarantines,
            }
            if isinstance(mount.index, ShardedIndex):
                # Sharded mounts break the totals down per shard so the
                # metrics endpoint shows scatter skew, not just sums.
                row["shards"] = mount.index.shard_stats()
                row["scatter"] = mount.index.scatter_stats()
            out[name] = row
        return out

    def close_all(self):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate,alloc-page
        """Close every mount (shutdown path; callers drain first)."""
        with self._latch:
            mounts = list(self._mounts.values()) + list(self._leaked)
            self._mounts = {}
            self._leaked = []
        for mount in mounts:
            mount.index.close()


class _Lease(object):
    """Context manager pinning one mount for one query."""

    __slots__ = ("_registry", "mount")

    def __init__(self, registry, mount):
        self._registry = registry
        self.mount = mount

    def __enter__(self):
        return self.mount

    def __exit__(self, *exc):
        self._registry._release(self.mount)
        return False


def _register_with_sanitizer():
    """Opt the guarded fields into ``PRIX_SANITIZE=1`` enforcement.

    The analysis layer cannot import the serving tier (that would
    invert the layering), so the serving tier registers itself.
    """
    from repro.analysis import sanitizer  # prixlint: disable=layering
    sanitizer.register_guarded_class(IndexRegistry)
    sanitizer.register_guarded_class(_Mount)


_register_with_sanitizer()
