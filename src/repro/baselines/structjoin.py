"""Binary structural joins (Al-Khalifa et al., ICDE 2002).

The decomposition approach the PRIX paper's introduction argues against:
a twig is broken into binary ancestor-descendant / parent-child edges,
each edge is evaluated with the Stack-Tree-Desc merge join, the pair
lists are stitched into root-to-leaf path tuples, and finally the paths
are merged.  Correct, but the intermediate pair lists can vastly exceed
the final answer -- the "cost of post-processing may not always be
trivial" motivation (Section 2) that holistic processing removes.

Implemented here:

- :func:`structural_join` -- Stack-Tree-Desc over two region-sorted
  element lists (one sequential pass, a stack of pending ancestors),
- :func:`binary_twig_join` -- full twig evaluation by cascaded binary
  joins plus path merging, with intermediate-size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.twigstack import build_query_tree
from repro.query.twig import Axis, node_signatures


@dataclass
class BinaryJoinStats:
    """Work counters: the intermediate blow-up is the headline number."""

    edge_joins: int = 0
    pairs_produced: int = 0
    path_tuples: int = 0
    merged_solutions: int = 0


def structural_join(ancestors, descendants, axis=Axis.DESCENDANT):
    """Stack-Tree-Desc: all (ancestor, descendant) pairs in one pass.

    Both inputs must be sorted by ``start`` (region document order).
    ``axis=Axis.CHILD`` additionally requires a direct parent level.
    """
    pairs = []
    stack = []
    a_index = 0
    d_index = 0
    while d_index < len(descendants):
        descendant = descendants[d_index]
        if a_index < len(ancestors) and \
                ancestors[a_index].start < descendant.start:
            candidate = ancestors[a_index]
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            stack.append(candidate)
            a_index += 1
            continue
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        for ancestor in stack:
            if ancestor.end < descendant.end:
                continue  # not containing (disjoint overlap impossible)
            if ancestor.start >= descendant.start:
                continue  # an element is not its own strict ancestor
            if axis is Axis.CHILD and \
                    ancestor.level + 1 != descendant.level:
                continue
            pairs.append((ancestor, descendant))
        d_index += 1
    return pairs


def binary_twig_join(pattern, stream_set, stats=None):
    """Evaluate a twig by cascaded binary joins; return ``(matches, stats)``.

    Matches are in the same canonical ``(doc_id, frozenset)`` form as the
    other engines.
    """
    if stats is None:
        stats = BinaryJoinStats()
    root = build_query_tree(pattern)
    signatures = node_signatures(pattern)

    elements = {}

    def list_of(node):
        if id(node) not in elements:
            cursor = stream_set.stream(node.tag).cursor()
            out = []
            while cursor.head() is not None:
                out.append(cursor.head())
                cursor.advance()
            elements[id(node)] = out
        return elements[id(node)]

    # Evaluate each root-to-leaf path by cascading edge joins.
    paths = []
    for leaf in (n for n in root.subtree() if n.is_leaf):
        path = []
        node = leaf
        while node is not None:
            path.append(node)
            node = node.parent
        paths.append(list(reversed(path)))

    path_solutions = []
    for path in paths:
        tuples = [{path[0]: element} for element in list_of(path[0])]
        for upper, lower in zip(path, path[1:]):
            stats.edge_joins += 1
            pairs = structural_join(list_of(upper), list_of(lower),
                                    axis=lower.axis)
            stats.pairs_produced += len(pairs)
            by_ancestor = {}
            for ancestor, descendant in pairs:
                by_ancestor.setdefault(ancestor.start, []).append(
                    descendant)
            extended = []
            for partial in tuples:
                anchor = partial[upper]
                for descendant in by_ancestor.get(anchor.start, ()):
                    grown = dict(partial)
                    grown[lower] = descendant
                    extended.append(grown)
            tuples = extended
            if not tuples:
                break
        stats.path_tuples += len(tuples)
        path_solutions.append((path, tuples))

    # Merge the per-path tuples on their shared ancestor nodes.
    merged = path_solutions[0][1] if path_solutions else []
    covered = set(path_solutions[0][0]) if path_solutions else set()
    for path, tuples in path_solutions[1:]:
        shared = [node for node in path if node in covered]
        covered.update(path)
        buckets = {}
        for solution in tuples:
            key = tuple(solution[node].start for node in shared)
            buckets.setdefault(key, []).append(solution)
        joined = []
        for partial in merged:
            key = tuple(partial[node].start for node in shared)
            for solution in buckets.get(key, ()):
                combined = dict(partial)
                combined.update(solution)
                joined.append(combined)
        merged = joined
        if not merged:
            break
    stats.merged_solutions = len(merged)

    matches = set()
    for solution in merged:
        doc_ids = {element.doc_id for element in solution.values()}
        if len(doc_ids) != 1:
            continue
        canonical = frozenset(
            (signatures[id(node.source)], element.postorder)
            for node, element in solution.items()
            if not node.source.is_star)
        matches.add((doc_ids.pop(), canonical))
    return matches, stats
