"""ViST (Wang, Park, Fan, Yu -- SIGMOD 2003).

ViST transforms each document into its *structure-encoded sequence*: the
preorder list of ``(symbol, prefix)`` pairs, where ``prefix`` is the full
root-to-parent tag path of the node.  Sequences are inserted into a
virtual trie; a D-Ancestorship B+-tree keyed by ``(symbol, prefix,
LeftPos)`` locates occurrences, and twig queries are answered by scoped
subsequence matching, exactly as in PRIX's Algorithm 1 but over the
two-dimensional alphabet.

This baseline faithfully reproduces the behaviours the PRIX paper
criticizes:

- **quadratic growth**: total prefix text is O(n^2) for skinny documents
  (demonstrated by ``benchmarks/bench_ablation_space.py``),
- **top-down matching**: the first query symbol is matched against the
  whole trie, so frequent root tags fan out immediately,
- **wildcard explosion**: a ``//`` step matches *every distinct
  (symbol, prefix) key of that symbol* (cf. the paper's Q7/Q8 analysis,
  46,355 keys for Q8), found here by scanning the symbol's key range,
- **false alarms**: matching stops at subsequence level -- no
  connectedness/structure refinement -- so sibling branches may match
  disconnected instances (Figure 1(b)).
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from repro.query.twig import arrangements
from repro.storage.bptree import BPlusTree
from repro.storage.codec import encode_int, encode_key
from repro.trie.labeling import BulkDFSLabeler
from repro.trie.trie import SequenceTrie
from repro.xmlkit.tree import sequence_label

_POS_VALUE = struct.Struct("<Q")   # RightPos
_DOC_VALUE = struct.Struct("<I")   # document id

#: Separator in prefix paths; 0x1E cannot occur in tags or values.
_SEP = "\x1e"


@dataclass
class VistStats:
    """Work counters for one ViST query."""

    range_queries: int = 0
    keys_scanned: int = 0
    matching_keys: int = 0
    nodes_visited: int = 0
    candidate_docs: int = 0


def structure_encoded_sequence(document):
    """The (symbol, prefix) sequence of a document, in preorder."""
    sequence = []
    stack = [(document.root, "")]
    while stack:
        node, prefix = stack.pop()
        symbol = sequence_label(node)
        sequence.append((symbol, prefix))
        child_prefix = prefix + symbol + _SEP
        for child in reversed(node.children):
            stack.append((child, child_prefix))
    return sequence


def total_sequence_text(document):
    """Total characters of the structure-encoded sequence (space metric)."""
    return sum(len(symbol) + len(prefix)
               for symbol, prefix in structure_encoded_sequence(document))


class VistIndex:
    """Disk-backed ViST index over a collection of documents."""

    def __init__(self, pool, d_ancestorship, docid_tree, root_range,
                 doc_count):
        self._pool = pool
        self._d_ancestorship = d_ancestorship
        self._docid_tree = docid_tree
        self._root_range = root_range
        self.doc_count = doc_count

    @classmethod
    def build(cls, documents, pool):
        """Build the ViST index over ``documents``."""
        trie = SequenceTrie()
        for document in documents:
            sequence = structure_encoded_sequence(document)
            trie.insert(tuple(sequence), document.doc_id)
        root_range = BulkDFSLabeler().label(trie)

        symbol_entries = []
        docid_entries = []
        for node in trie.iter_nodes():
            symbol, prefix = node.label
            key = encode_key(symbol, prefix, node.left)
            symbol_entries.append((key, _POS_VALUE.pack(node.right)))
            for doc_id in node.doc_ids:
                docid_entries.append((encode_int(node.left),
                                      _DOC_VALUE.pack(doc_id)))
        symbol_entries.sort(key=lambda pair: pair[0])
        docid_entries.sort(key=lambda pair: pair[0])
        d_ancestorship = BPlusTree.bulk_load(pool, symbol_entries)
        docid_tree = BPlusTree.bulk_load(pool, docid_entries)
        return cls(pool, d_ancestorship, docid_tree, root_range,
                   len(documents))

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def query(self, pattern, stats=None, ordered=False):
        """Return candidate document ids (with possible false alarms).

        Like PRIX, ViST's sequence matching is order-sensitive, so
        unordered (XPath) semantics unions the branch arrangements of the
        twig (the default); ``ordered=True`` matches the twig's own
        branch order only.
        """
        if stats is None:
            stats = VistStats()
        docs = set()
        seen_steps = set()
        for arranged in arrangements(pattern):
            steps = _query_sequence(arranged)
            step_key = tuple(steps)
            if step_key in seen_steps:
                continue
            seen_steps.add(step_key)
            self._run_steps(steps, docs, stats)
            if ordered:
                break
        stats.candidate_docs = len(docs)
        return docs, stats

    def _run_steps(self, steps, docs, stats):
        key_sets = [self._matching_keys(symbol, prefix_regex, exact, stats)
                    for symbol, prefix_regex, exact in steps]

        def recurse(i, lo, hi):
            for symbol, prefix in key_sets[i]:
                stats.range_queries += 1
                lo_key = encode_key(symbol, prefix, lo + 1)
                hi_key = encode_key(symbol, prefix, hi)
                for key, value in self._d_ancestorship.range_scan(lo_key,
                                                                  hi_key):
                    stats.nodes_visited += 1
                    left = int.from_bytes(key[-8:], "big")
                    (right,) = _POS_VALUE.unpack(value)
                    if i + 1 == len(key_sets):
                        for _, doc_value in self._docid_tree.range_scan(
                                encode_int(left), encode_int(right),
                                inclusive_hi=True):
                            docs.add(_DOC_VALUE.unpack(doc_value)[0])
                    else:
                        recurse(i + 1, left, right)

        recurse(0, self._root_range[0], self._root_range[1])

    def _matching_keys(self, symbol, prefix_regex, exact, stats):
        """The distinct (symbol, prefix) keys matching one query step.

        Exact steps need no scan; wildcard steps scan the symbol's whole
        key range, the behaviour the PRIX paper measures on Q7/Q8.
        """
        if exact is not None:
            return [(symbol, exact)]
        lo = encode_key(symbol)
        hi = encode_key(symbol + "\x00")
        keys = []
        seen = set()
        pattern = re.compile(prefix_regex)
        for key, _ in self._d_ancestorship.range_scan(lo, hi):
            stats.keys_scanned += 1
            prefix = _decode_prefix(key)
            if prefix in seen:
                continue
            seen.add(prefix)
            if pattern.fullmatch(prefix):
                keys.append((symbol, prefix))
        stats.matching_keys += len(keys)
        return keys


def _decode_prefix(key):
    """Extract the prefix component from a (symbol, prefix, left) key."""
    from repro.storage.codec import decode_key
    return decode_key(key)[1]


def _query_sequence(collapsed):
    """Transform a collapsed twig into its (symbol, prefix-pattern) steps.

    Returns a list of ``(symbol, prefix_regex, exact_prefix_or_None)``
    in preorder.  ``exact_prefix`` is set when the root-to-node path uses
    child axes only, in which case no key scan is needed.
    """
    if any(node.tag == "*" and not node.is_value
           for node in collapsed.document.root.iter_subtree()):
        raise NotImplementedError(
            "the ViST baseline does not support '*' steps")

    steps = []
    root = collapsed.document.root

    def walk(node, regex_parts, exact_parts, is_exact):
        spec = collapsed.spec_of(node)
        if node.parent is None:
            node_exact = collapsed.absolute
            # A non-absolute root may occur at any depth: wildcard prefix.
            lead = "" if collapsed.absolute else rf"(?:[^{_SEP}]+{_SEP})*"
            my_regex = regex_parts + [lead]
            my_exact = list(exact_parts)
        else:
            gap = (rf"(?:[^{_SEP}]+{_SEP})*"
                   if spec.max_steps is None or spec.max_steps > 1 else "")
            my_regex = regex_parts + [gap]
            my_exact = list(exact_parts)
            node_exact = is_exact and gap == ""
        prefix_regex = "".join(my_regex)
        exact_prefix = "".join(my_exact) if node_exact else None
        symbol = sequence_label(node)
        steps.append((symbol, prefix_regex, exact_prefix))
        child_regex = my_regex + [re.escape(symbol) + _SEP]
        child_exact = my_exact + [symbol + _SEP]
        for child in node.children:
            walk(child, child_regex, child_exact, node_exact)

    walk(root, [], [], True)
    return steps
