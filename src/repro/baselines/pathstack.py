"""PathStack (Bruno, Koudas, Srivastava -- SIGMOD 2002, Algorithm 1).

The linear-path special case of the holistic stack join, implemented as
published rather than via TwigStack's getNext: at each step the query
node with the minimal next start is taken, every stack is cleaned of
elements that cannot be ancestors of it, and the element is pushed linked
to the current top of its parent's stack.  Leaf pushes emit path
solutions.  PathStack is I/O and CPU optimal for ancestor-descendant
paths: each input element is touched exactly once.
"""

from __future__ import annotations

from repro.baselines.twigstack import (QueryNode, TwigJoinStats,
                                       _solutions_to_matches,
                                       build_query_tree)
from repro.query.twig import Axis

_INF = float("inf")


def _chain_of(pattern):
    root = build_query_tree(pattern)
    chain = []
    node = root
    while True:
        chain.append(node)
        if not node.children:
            break
        if len(node.children) > 1:
            raise ValueError("path_stack only handles linear path queries")
        node = node.children[0]
    return root, chain


def path_stack(pattern, stream_set, stats=None):
    """Run PathStack; return ``(matches, stats)`` like ``twig_stack``."""
    if stats is None:
        stats = TwigJoinStats()
    root, chain = _chain_of(pattern)
    for node in chain:
        node.cursor = stream_set.stream(node.tag).cursor()
    leaf = chain[-1]

    solutions = []

    def next_l(node):
        head = node.cursor.head()
        return head.start if head is not None else _INF

    def expand(element, limit, depth):
        """Emit all root-to-leaf combinations ending at ``element``.

        Walks upward through the stacks, taking every ancestor below the
        pointer recorded at push time, and enforcing parent/child level
        constraints where the query uses the child axis.
        """
        partials = [([element], limit)]
        for position in range(depth - 1, -1, -1):
            parent = chain[position]
            child_axis = chain[position + 1].axis
            extended = []
            for partial, bound in partials:
                for index in range(bound):
                    ancestor, ancestor_bound = parent.stack[index]
                    # A node is not its own strict ancestor (same-tag
                    # chains put one element on several stacks).
                    if ancestor.start >= partial[-1].start:
                        continue
                    if child_axis is Axis.CHILD and \
                            ancestor.level + 1 != partial[-1].level:
                        continue
                    extended.append((partial + [ancestor], ancestor_bound))
            partials = extended
        for partial, _ in partials:
            solution = {chain[i]: element_at
                        for i, element_at in enumerate(reversed(partial))}
            solutions.append(solution)
            stats.path_solutions += 1

    while any(node.cursor.head() is not None for node in chain):
        q_min = min(chain, key=next_l)
        head = q_min.cursor.head()
        if head is None:
            break
        stats.elements_scanned += 1
        for node in chain:
            while node.stack and node.stack[-1][0].end < head.start:
                node.stack.pop()
        depth = chain.index(q_min)
        parent_size = len(chain[depth - 1].stack) if depth else 0
        if depth == 0 or parent_size > 0:
            q_min.stack.append((head, parent_size))
            stats.elements_pushed += 1
            if q_min is leaf:
                expand(head, parent_size, depth)
                q_min.stack.pop()
        q_min.cursor.advance()

    stats.merged_solutions = len(solutions)
    return _solutions_to_matches(solutions, pattern, root), stats