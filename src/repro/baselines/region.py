"""Region-encoded element streams for the TwigStack family.

Every node of every document becomes a stream entry
``(start, end, level, doc_id, postorder)``.  Starts and ends are
*globalized* -- each document's region numbers are offset by a running
base -- so containment never holds across documents and the stack joins
can run over the whole corpus as one stream per tag, exactly like the
paper's sorted input lists.

Streams are stored in pages through the buffer pool, so the baselines'
"Disk IO (pages)" is measured on the same footing as PRIX's.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.xmlkit.tree import sequence_label

_ENTRY = struct.Struct("<QQIII")  # start, end, level, doc_id, postorder
_COUNT = struct.Struct("<I")


@dataclass(frozen=True)
class Element:
    """One stream entry (a node instance in region encoding)."""

    start: int
    end: int
    level: int
    doc_id: int
    postorder: int

    def contains(self, other):
        """Strict region containment (ancestor test)."""
        return self.start < other.start and other.end < self.end

    def is_parent_of(self, other):
        """Containment at exactly one level below."""
        return self.contains(other) and other.level == self.level + 1


#: Stream key carrying every element (not value) node, for '*' steps.
ALL_ELEMENTS = "*"


def build_stream_entries(documents):
    """Compute the per-tag, globally sorted element streams.

    Returns ``{sequence_label: [Element, ...]}`` with each list sorted by
    ``start`` (document order).  The special key :data:`ALL_ELEMENTS`
    holds every element node, which is what a ``*`` query step scans.
    """
    streams = {ALL_ELEMENTS: []}
    base = 0
    for document in documents:
        max_end = 0
        for node in document.nodes_in_postorder():
            entry = Element(start=base + node.start, end=base + node.end,
                            level=node.level, doc_id=document.doc_id,
                            postorder=node.postorder)
            streams.setdefault(sequence_label(node), []).append(entry)
            if not node.is_value:
                streams[ALL_ELEMENTS].append(entry)
            if node.end > max_end:
                max_end = node.end
        base += max_end + 1
    for entries in streams.values():
        entries.sort(key=lambda e: e.start)
    return streams


class DiskStream:
    """One tag's element list laid out in pages, read through the pool."""

    def __init__(self, pool, page_ids, count):
        self._pool = pool
        self._page_ids = page_ids
        self.count = count
        self._per_page = (pool.page_size - _COUNT.size) // _ENTRY.size

    @classmethod
    def write(cls, pool, entries):
        """Write ``entries`` into fresh pages; return the stream."""
        page_size = pool.page_size
        per_page = (page_size - _COUNT.size) // _ENTRY.size
        page_ids = []
        for offset in range(0, len(entries), per_page):
            chunk = entries[offset:offset + per_page]
            page_id, frame = pool.new_page()
            _COUNT.pack_into(frame, 0, len(chunk))
            pos = _COUNT.size
            for element in chunk:
                _ENTRY.pack_into(frame, pos, element.start, element.end,
                                 element.level, element.doc_id,
                                 element.postorder)
                pos += _ENTRY.size
            pool.mark_dirty(page_id)
            page_ids.append(page_id)
        if not page_ids:
            page_id, frame = pool.new_page()
            _COUNT.pack_into(frame, 0, 0)
            pool.mark_dirty(page_id)
            page_ids.append(page_id)
        return cls(pool, page_ids, len(entries))

    def _read_page(self, index):
        def decode(_page_id, frame):
            (count,) = _COUNT.unpack_from(frame, 0)
            pos = _COUNT.size
            elements = []
            for _ in range(count):
                values = _ENTRY.unpack_from(frame, pos)
                elements.append(Element(*values))
                pos += _ENTRY.size
            return elements
        return self._pool.get_decoded(self._page_ids[index], decode)

    def cursor(self):
        """A fresh sequential cursor over this stream."""
        return StreamCursor(self)

    def __len__(self):
        return self.count


class StreamCursor:
    """Sequential reader over a :class:`DiskStream` with a lookahead head."""

    def __init__(self, stream):
        self._stream = stream
        self._page_index = 0
        self._entry_index = 0
        self._page = stream._read_page(0) if stream._page_ids else []

    @property
    def eof(self):
        """True when no elements remain."""
        return self._entry_index >= len(self._page) and \
            self._page_index >= len(self._stream._page_ids) - 1

    def head(self):
        """The current element, or None at end of stream."""
        while self._entry_index >= len(self._page):
            if self._page_index >= len(self._stream._page_ids) - 1:
                return None
            self._page_index += 1
            self._page = self._stream._read_page(self._page_index)
            self._entry_index = 0
        return self._page[self._entry_index]

    def advance(self):
        """Move past the current element."""
        if self.head() is not None:
            self._entry_index += 1


class StreamSet:
    """All tag streams of a corpus, written to one storage stack."""

    def __init__(self, pool, streams):
        self._pool = pool
        self._streams = streams
        self._empty = DiskStream.write(pool, [])

    @classmethod
    def build(cls, documents, pool):
        """Write every tag stream of ``documents`` into ``pool``."""
        entries_by_tag = build_stream_entries(documents)
        streams = {tag: DiskStream.write(pool, entries)
                   for tag, entries in entries_by_tag.items()}
        return cls(pool, streams)

    def stream(self, tag):
        """The stream for ``tag`` (an empty stream for unseen tags)."""
        return self._streams.get(tag, self._empty)

    def tags(self):
        """Document tags with streams (excludes the '*' union stream)."""
        return sorted(tag for tag in self._streams
                      if tag != ALL_ELEMENTS)
