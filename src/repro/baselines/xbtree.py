"""XB-trees (Bruno et al., SIGMOD 2002, Section 5).

An XB-tree is a B-tree-like hierarchy over one tag's region-sorted element
list.  Each internal entry summarizes a child page with the pair
``(L, R)`` = (smallest start, largest end) of the elements below it, so a
twig join can reason about -- and skip -- whole subtrees of the input
list without reading their leaf pages.

A :class:`XBPointer` walks the tree the way TwigStackXB drives it:

- ``advance()`` moves to the next entry of the current node, ascending to
  the parent when the node is exhausted (this is where skipping happens:
  once ascended, the sibling leaf pages are never read),
- ``drill_down()`` descends into the child page of the current internal
  entry when the algorithm needs finer resolution.
"""

from __future__ import annotations

import struct

from repro.baselines.region import Element

_LEAF_ENTRY = struct.Struct("<QQIII")   # start, end, level, doc, postorder
_INNER_ENTRY = struct.Struct("<QQI")    # L, R, child page id
_HEADER = struct.Struct("<BH")          # is_leaf, count


class XBTree:
    """Disk-resident XB-tree over one element stream."""

    def __init__(self, pool, root_page, height, count):
        self._pool = pool
        self.root_page = root_page
        self.height = height
        self.count = count

    @classmethod
    def build(cls, pool, elements):
        """Bulk-build from elements sorted by ``start``."""
        page_size = pool.page_size
        leaf_cap = (page_size - _HEADER.size) // _LEAF_ENTRY.size
        inner_cap = (page_size - _HEADER.size) // _INNER_ENTRY.size

        level = []  # (L, R, page_id)
        for offset in range(0, max(len(elements), 1), leaf_cap):
            chunk = elements[offset:offset + leaf_cap]
            page_id, frame = pool.new_page()
            _HEADER.pack_into(frame, 0, 1, len(chunk))
            pos = _HEADER.size
            for element in chunk:
                _LEAF_ENTRY.pack_into(frame, pos, element.start, element.end,
                                      element.level, element.doc_id,
                                      element.postorder)
                pos += _LEAF_ENTRY.size
            pool.mark_dirty(page_id)
            if chunk:
                level.append((chunk[0].start,
                              max(e.end for e in chunk), page_id))
            else:
                level.append((0, 0, page_id))

        height = 1
        while len(level) > 1:
            next_level = []
            for offset in range(0, len(level), inner_cap):
                chunk = level[offset:offset + inner_cap]
                page_id, frame = pool.new_page()
                _HEADER.pack_into(frame, 0, 0, len(chunk))
                pos = _HEADER.size
                for left, right, child in chunk:
                    _INNER_ENTRY.pack_into(frame, pos, left, right, child)
                    pos += _INNER_ENTRY.size
                pool.mark_dirty(page_id)
                next_level.append((chunk[0][0],
                                   max(r for _, r, _ in chunk), page_id))
            level = next_level
            height += 1
        return cls(pool, level[0][2], height, len(elements))

    def _read(self, page_id):
        def decode(_pid, frame):
            is_leaf, count = _HEADER.unpack_from(frame, 0)
            pos = _HEADER.size
            entries = []
            if is_leaf:
                for _ in range(count):
                    entries.append(Element(*_LEAF_ENTRY.unpack_from(frame,
                                                                    pos)))
                    pos += _LEAF_ENTRY.size
            else:
                for _ in range(count):
                    entries.append(_INNER_ENTRY.unpack_from(frame, pos))
                    pos += _INNER_ENTRY.size
            return bool(is_leaf), entries
        return self._pool.get_decoded(page_id, decode)

    def pointer(self):
        """A fresh pointer positioned at the tree's first entry."""
        return XBPointer(self)


class XBPointer:
    """A TwigStackXB cursor into an XB-tree."""

    def __init__(self, tree):
        self._tree = tree
        #: Stack of (page_id, index) from the root to the current node.
        self._path = [(tree.root_page, 0)]
        if tree.count == 0:
            self._path = []

    @property
    def eof(self):
        """True when the pointer has run off the tree."""
        return not self._path

    def _current(self):
        page_id, index = self._path[-1]
        is_leaf, entries = self._tree._read(page_id)
        return is_leaf, entries, index

    @property
    def at_leaf(self):
        """True when the pointer addresses a concrete element."""
        if self.eof:
            return True
        is_leaf, _, _ = self._current()
        return is_leaf

    def head(self):
        """The concrete element under the pointer (leaf positions only)."""
        if self.eof:
            return None
        is_leaf, entries, index = self._current()
        if not is_leaf:
            raise ValueError("pointer is at an internal entry; drill down")
        return entries[index]

    @property
    def left(self):
        """L of the current entry (exact min start of the region below)."""
        if self.eof:
            return float("inf")
        is_leaf, entries, index = self._current()
        entry = entries[index]
        return entry.start if is_leaf else entry[0]

    @property
    def right(self):
        """R of the current entry (exact max end of the region below)."""
        if self.eof:
            return float("inf")
        is_leaf, entries, index = self._current()
        entry = entries[index]
        return entry.end if is_leaf else entry[1]

    def advance(self):
        """Move to the next entry, ascending when the node is exhausted."""
        while self._path:
            page_id, index = self._path[-1]
            _, entries = self._tree._read(page_id)
            if index + 1 < len(entries):
                self._path[-1] = (page_id, index + 1)
                return
            self._path.pop()

    def drill_down(self):
        """Descend into the child page of the current internal entry."""
        is_leaf, entries, index = self._current()
        if is_leaf:
            raise ValueError("cannot drill down from a leaf entry")
        child_page = entries[index][2]
        self._path.append((child_page, 0))
