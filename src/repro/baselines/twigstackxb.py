"""TwigStackXB: TwigStack driven by XB-tree pointers (Bruno et al. §5).

Identical join logic to :mod:`repro.baselines.twigstack`, but every query
node reads its input through an :class:`~repro.baselines.xbtree.XBPointer`
whose position may be an *internal* XB-tree entry summarizing a whole
region of the element list.  The join only drills down to concrete
elements when the region may contribute to a solution; otherwise it
advances at the coarse level and the region's leaf pages are never read.

The skip rule (applied when the parent's stack is empty): a region whose
maximum end precedes the parent stream's next start can contain no element
that any future parent contains, so the whole region is skipped -- exactly
the condition under which plain TwigStack would have advanced over each of
its elements one page read at a time.
"""

from __future__ import annotations

from repro.baselines.twigstack import (TwigJoinStats, _SolutionCollector,
                                       _clean_stack, _solutions_to_matches,
                                       build_query_tree)
from repro.baselines.xbtree import XBTree

_INF = float("inf")


class XBForest:
    """One XB-tree per tag over a corpus's element streams."""

    def __init__(self, pool, trees):
        self._pool = pool
        self._trees = trees
        self._empty = XBTree.build(pool, [])

    @classmethod
    def build(cls, entries_by_tag, pool):
        """Build one XB-tree per tag from the entry lists."""
        trees = {tag: XBTree.build(pool, entries)
                 for tag, entries in entries_by_tag.items()}
        return cls(pool, trees)

    def tree(self, tag):
        """The XB-tree for ``tag`` (empty tree if unseen)."""
        return self._trees.get(tag, self._empty)


def _next_l(node):
    return node.ptr.left if not node.ptr.eof else _INF


def _next_r(node):
    return node.ptr.right if not node.ptr.eof else _INF


def _end(root):
    return all(node.ptr.eof for node in root.subtree() if node.is_leaf)


def _get_next(q):
    """getNext over XB pointers; regions stand in for elements."""
    if q.is_leaf:
        return q
    candidates = []
    for child in q.children:
        result = _get_next(child)
        if result is not child:
            if not result.ptr.eof:
                return result
            continue
        if child.ptr.eof:
            continue
        candidates.append(child)
    if not candidates:
        child = q.children[0]
        return child if child.is_leaf else _get_next(child)
    n_min = min(candidates, key=_next_l)
    n_max = max(candidates, key=_next_l)
    while _next_r(q) < _next_l(n_max):
        q.ptr.advance()
    if _next_l(q) < _next_l(n_min):
        return q
    return n_min


def twig_stack_xb(pattern, xb_forest, stats=None):
    """Run TwigStackXB; return ``(matches, stats)`` like ``twig_stack``."""
    if stats is None:
        stats = TwigJoinStats()
    root = build_query_tree(pattern)
    for node in root.subtree():
        node.ptr = xb_forest.tree(node.tag).pointer()

    collector = _SolutionCollector(root)
    while not _end(root):
        q_act = _get_next(root)
        if q_act.ptr.eof:
            break
        if not q_act.ptr.at_leaf:
            parent = q_act.parent
            if q_act.is_root or (parent is not None and parent.stack):
                q_act.ptr.drill_down()
                stats.drilldowns += 1
            elif q_act.ptr.right < _next_l(parent):
                q_act.ptr.advance()
                stats.coarse_advances += 1
            else:
                q_act.ptr.drill_down()
                stats.drilldowns += 1
            continue
        head = q_act.ptr.head()
        if head is None:
            break
        stats.elements_scanned += 1
        if not q_act.is_root:
            _clean_stack(q_act.parent, head.start)
        if q_act.is_root or q_act.parent.stack:
            _clean_stack(q_act, head.start)
            q_act.stack.append((head, len(q_act.parent.stack)
                                if q_act.parent else 0))
            stats.elements_pushed += 1
            if q_act.is_leaf:
                collector.expand(q_act, stats)
                q_act.stack.pop()
        q_act.ptr.advance()

    merged = collector.merge(stats)
    return _solutions_to_matches(merged, pattern, root), stats
