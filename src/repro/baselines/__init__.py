"""Baseline systems the paper compares against, plus a ground-truth oracle.

- :mod:`repro.baselines.naive` -- exhaustive tree-walk twig matcher; the
  correctness oracle for every engine in this repository.
- :mod:`repro.baselines.region` -- region (containment) encoding streams.
- :mod:`repro.baselines.structjoin` -- binary structural joins
  (Al-Khalifa et al., ICDE 2002): the decomposition approach the paper's
  introduction argues against.
- :mod:`repro.baselines.pathstack` / :mod:`repro.baselines.twigstack` --
  the holistic stack joins of Bruno et al. (SIGMOD 2002).
- :mod:`repro.baselines.xbtree` / :mod:`repro.baselines.twigstackxb` --
  the XB-tree variant that skips input-list regions.
- :mod:`repro.baselines.vist` -- the structure-encoded sequence index of
  Wang et al. (SIGMOD 2003), including its false-alarm behaviour.
"""

from repro.baselines.naive import naive_match_count, naive_matches
from repro.baselines.pathstack import path_stack
from repro.baselines.structjoin import binary_twig_join, structural_join
from repro.baselines.twigstack import twig_stack
from repro.baselines.twigstackxb import twig_stack_xb

__all__ = ["binary_twig_join", "naive_match_count", "naive_matches",
           "path_stack", "structural_join", "twig_stack",
           "twig_stack_xb"]
