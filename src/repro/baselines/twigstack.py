"""TwigStack and PathStack (Bruno, Koudas, Srivastava -- SIGMOD 2002).

Holistic stack-based twig joins over region-encoded element streams.
TwigStack is optimal for descendant-only twigs; with parent/child edges it
emits partial path solutions that the final merge discards -- the
sub-optimality the PRIX paper exploits in its Q8 experiment
(Section 6.4.2).  This implementation keeps that behaviour faithfully:
``getNext`` only reasons about ancestor/descendant containment, and
parent/child constraints are enforced during path expansion and merging.

The query tree is built from a :class:`~repro.query.twig.TwigPattern`;
``*`` steps are not supported (none of the paper's queries use them with
the TwigStack baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.twig import Axis, node_signatures
from repro.xmlkit.tree import value_label

_INF = float("inf")


class QueryNode:
    """One node of the twig-join query tree."""

    __slots__ = ("tag", "axis", "children", "parent", "cursor", "ptr",
                 "stack", "source", "index")

    def __init__(self, tag, axis, source):
        self.tag = tag
        self.axis = axis
        self.children = []
        self.parent = None
        self.cursor = None   # StreamCursor (TwigStack)
        self.ptr = None      # XBPointer (TwigStackXB)
        self.stack = []   # list of (Element, parent_stack_size_at_push)
        self.source = source
        self.index = 0

    @property
    def is_leaf(self):
        """True for a query node without children."""
        return not self.children

    @property
    def is_root(self):
        """True for the query root."""
        return self.parent is None

    def subtree(self):
        """This node and its descendants, preorder."""
        out = [self]
        for child in self.children:
            out.extend(child.subtree())
        return out


def build_query_tree(pattern):
    """Convert a :class:`TwigPattern` into a :class:`QueryNode` tree.

    ``*`` steps become query nodes over the all-elements stream (tag
    ``"*"``); they join structurally like any other node but are stripped
    from the reported embeddings.
    """
    def convert(twig_node):
        if twig_node.is_star:
            tag = "*"
        elif twig_node.is_value:
            tag = value_label(twig_node.label)
        else:
            tag = twig_node.label
        node = QueryNode(tag, twig_node.axis, twig_node)
        for child in twig_node.children:
            child_node = convert(child)
            child_node.parent = node
            node.children.append(child_node)
        return node

    root = convert(pattern.root)
    for index, node in enumerate(root.subtree()):
        node.index = index
    return root


def _next_l(node):
    head = node.cursor.head()
    return head.start if head is not None else _INF


def _next_r(node):
    head = node.cursor.head()
    return head.end if head is not None else _INF


def _end(root):
    """Termination test: every leaf stream exhausted."""
    return all(node.cursor.head() is None
               for node in root.subtree() if node.is_leaf)


def _get_next(q):
    """The getNext of Bruno et al.: the next query node to work on.

    Extended with explicit handling of exhausted subtrees: a branch whose
    leaf streams have run dry can produce no further path solutions, so it
    is skipped while the remaining branches keep streaming (their path
    solutions still merge against the finalized ones).  The published
    pseudocode gets the same effect implicitly via infinite sentinels.
    """
    if q.is_leaf:
        return q
    candidates = []
    for child in q.children:
        result = _get_next(child)
        if result is not child:
            if result.cursor.head() is not None:
                return result
            continue  # exhausted subtree: skip this branch
        if child.cursor.head() is None:
            continue  # exhausted branch head
        candidates.append(child)
    if not candidates:
        # Every branch below q is exhausted; report it so ancestors (or
        # the main loop, at the root) can move on.
        return q.children[0] if q.children[0].is_leaf else _get_next(
            q.children[0])
    n_min = min(candidates, key=_next_l)
    n_max = max(candidates, key=_next_l)
    while _next_r(q) < _next_l(n_max):
        q.cursor.advance()
    if _next_l(q) < _next_l(n_min):
        return q
    return n_min


def _clean_stack(node, act_l):
    """Pop stack entries that cannot be ancestors of the next element."""
    while node.stack and node.stack[-1][0].end < act_l:
        node.stack.pop()


@dataclass
class TwigJoinStats:
    """Work counters for one twig-join execution."""

    elements_scanned: int = 0
    elements_pushed: int = 0
    path_solutions: int = 0
    merged_solutions: int = 0
    drilldowns: int = 0
    coarse_advances: int = 0


class _SolutionCollector:
    """Accumulates per-leaf path solutions and merges them at the end."""

    def __init__(self, root):
        self.root = root
        self.paths = {}    # leaf QueryNode -> path (root..leaf)
        self.solutions = {}  # leaf QueryNode -> list of dicts {qnode: Element}
        for node in root.subtree():
            if node.is_leaf:
                path = []
                walk = node
                while walk is not None:
                    path.append(walk)
                    walk = walk.parent
                self.paths[node] = list(reversed(path))
                self.solutions[node] = []

    def expand(self, leaf, stats):
        """Expand the just-pushed head of ``leaf``'s stack into path
        solutions, honoring parent/child level constraints."""
        path = self.paths[leaf]

        def walk(position, element, limit):
            """Yield partial solutions for path[0..position] ending at
            ``element`` whose stack pointer is ``limit``."""
            if position == 0:
                yield {path[0]: element}
                return
            qnode = path[position]
            parent_q = path[position - 1]
            for idx in range(limit):
                ancestor, ancestor_limit = parent_q.stack[idx]
                # When two query nodes share a tag (e.g. c//c), the same
                # element sits on both stacks; a node is not its own
                # strict ancestor, so require a strictly earlier start.
                if ancestor.start >= element.start:
                    continue
                if qnode.axis is Axis.CHILD and \
                        ancestor.level + 1 != element.level:
                    continue
                for partial in walk(position - 1, ancestor, ancestor_limit):
                    solution = dict(partial)
                    solution[qnode] = element
                    yield solution

        element, limit = leaf.stack[-1]
        for solution in walk(len(path) - 1, element, limit):
            self.solutions[leaf].append(solution)
            stats.path_solutions += 1

    def merge(self, stats):
        """Join the per-path solutions into full twig matches."""
        leaves = list(self.paths)
        merged = [dict(sol) for sol in self.solutions[leaves[0]]]
        covered = set(self.paths[leaves[0]])
        for leaf in leaves[1:]:
            incoming = self.solutions[leaf]
            shared = [q for q in self.paths[leaf] if q in covered]
            covered.update(self.paths[leaf])
            buckets = {}
            for solution in incoming:
                key = tuple(solution[q].start for q in shared
                            if q in solution)
                buckets.setdefault(key, []).append(solution)
            joined = []
            for partial in merged:
                key = tuple(partial[q].start for q in shared
                            if q in partial)
                for solution in buckets.get(key, ()):
                    combined = dict(partial)
                    combined.update(solution)
                    joined.append(combined)
            merged = joined
            if not merged:
                break
        stats.merged_solutions = len(merged)
        return merged


def _solutions_to_matches(merged, pattern, root):
    """Convert merged solutions into canonical (doc, embedding) sets.

    ``*`` nodes are existence tests, not result nodes: they are stripped
    before deduplication, matching the oracle's reporting convention.
    """
    signatures = node_signatures(pattern)
    matches = set()
    for solution in merged:
        doc_ids = {element.doc_id for element in solution.values()}
        if len(doc_ids) != 1:
            continue
        doc_id = doc_ids.pop()
        canonical = frozenset(
            (signatures[id(qnode.source)], element.postorder)
            for qnode, element in solution.items()
            if not qnode.source.is_star)
        matches.add((doc_id, canonical))
    return matches


def twig_stack(pattern, stream_set, stats=None):
    """Run TwigStack; return ``(matches, stats)``.

    ``matches`` is a set of ``(doc_id, canonical_embedding)`` pairs in the
    same canonical form the PRIX engine reports, so results compare
    directly in tests and benchmarks.
    """
    if stats is None:
        stats = TwigJoinStats()
    root = build_query_tree(pattern)
    for node in root.subtree():
        node.cursor = stream_set.stream(node.tag).cursor()

    collector = _SolutionCollector(root)
    while not _end(root):
        q_act = _get_next(root)
        head = q_act.cursor.head()
        if head is None:
            break
        stats.elements_scanned += 1
        if not q_act.is_root:
            _clean_stack(q_act.parent, head.start)
        if q_act.is_root or q_act.parent.stack:
            _clean_stack(q_act, head.start)
            q_act.stack.append((head, len(q_act.parent.stack)
                                if q_act.parent else 0))
            stats.elements_pushed += 1
            if q_act.is_leaf:
                collector.expand(q_act, stats)
                q_act.stack.pop()
        q_act.cursor.advance()

    merged = collector.merge(stats)
    return _solutions_to_matches(merged, pattern, root), stats


def path_stack(pattern, stream_set, stats=None):
    """PathStack: the linear-path algorithm (see
    :mod:`repro.baselines.pathstack` for the implementation)."""
    from repro.baselines.pathstack import path_stack as run
    return run(pattern, stream_set, stats=stats)
