"""Exhaustive twig matcher: the correctness oracle.

Enumerates every *injective* embedding of a twig's named nodes into a
document tree, honoring child/descendant axes, collapsed ``*`` steps and
value predicates.  ``*`` existence-test leaves participate in the
injective assignment but are stripped from the reported embedding,
mirroring the PRIX engine's semantics (a twig occurrence is a set of
distinct deletion events; star nodes are structural tests, not results).

Embeddings are *LCA-preserving* (homeomorphic): distinct branches of a
query node must map into distinct child subtrees of its image, i.e. the
lowest common ancestor of two branch images is exactly the branch parent's
image.  This is the semantics PRIX's sequence matching computes -- each
branch contributes its own deletion event (chain top) under the shared
image, and subsequence positions are strictly increasing -- and therefore
the semantics the paper's match counts report.  (Plain XPath is laxer: it
would also accept one branch nested inside another.)

Ordered matching additionally requires the match's deletion events (the
chain tops between each node's image and its parent's image) to appear in
the same order as the twig's own postorder deletions -- exactly the
condition PRIX's strictly-increasing subsequence positions impose.
"""

from __future__ import annotations

from repro.query.twig import collapse, node_signatures
from repro.xmlkit.tree import sequence_label


def _label_ok(query_node, data_node):
    if query_node.tag == "*" and not query_node.is_value:
        return not data_node.is_value
    if query_node.is_value != data_node.is_value:
        return False
    return query_node.tag == data_node.tag


def _candidates_below(anchor, spec, query_node):
    """Data nodes under ``anchor`` whose depth satisfies ``spec``."""
    results = []
    stack = [(child, 1) for child in anchor.children]
    while stack:
        node, depth = stack.pop()
        if spec.admits(depth) and _label_ok(query_node, node):
            results.append(node)
        if spec.max_steps is None or depth < spec.max_steps:
            stack.extend((child, depth + 1) for child in node.children)
    return results


def naive_matches(document, pattern, ordered=False, semantics="prix"):
    """Return the set of embeddings of ``pattern`` in ``document``.

    Each embedding is a frozenset of ``(signature_id, postorder)`` pairs
    using :func:`~repro.query.twig.node_signatures` -- the same canonical
    form the PRIX engine deduplicates on, so results compare directly.

    ``semantics`` selects the match definition:

    - ``"prix"`` (default): injective, LCA-preserving embeddings -- what
      the PRIX sequence pipeline computes (see the module docstring),
    - ``"xpath"``: plain XPath tree-pattern semantics, as computed by the
      TwigStack family -- branches may nest and share data nodes.
    """
    collapsed = collapse(pattern)
    query_nodes = collapsed.document.nodes_in_postorder()
    query_root = collapsed.document.root
    signatures = node_signatures(pattern)

    if collapsed.absolute:
        root_candidates = ([document.root]
                           if _label_ok(query_root, document.root) else [])
    else:
        root_candidates = [node for node in document.root.iter_subtree()
                           if _label_ok(query_root, node)]

    results = set()
    assignment = {}

    def chain_tops():
        """Chain top per non-root query node, in query postorder."""
        tops = []
        for query_node in query_nodes[:-1]:
            image = assignment[id(query_node)]
            parent_image = assignment[id(query_node.parent)]
            top = image
            while top.parent is not parent_image:
                top = top.parent
            tops.append((query_node, top))
        return tops

    def emit():
        if semantics == "prix" or ordered:
            tops = chain_tops()
        if semantics == "prix":
            # LCA preservation: sibling branches use distinct chain tops.
            tops_by_parent = {}
            for query_node, top in tops:
                key = id(query_node.parent)
                bucket = tops_by_parent.setdefault(key, set())
                if id(top) in bucket:
                    return
                bucket.add(id(top))
        if ordered:
            events = [top.postorder for _, top in tops]
            if any(a >= b for a, b in zip(events, events[1:])):
                return
        items = []
        for query_node in query_nodes:
            source = collapsed.source_of(query_node)
            if source is None or source.is_star:
                continue
            items.append((signatures[id(source)],
                          assignment[id(query_node)].postorder))
        results.add(frozenset(items))

    def extend(pending):
        if not pending:
            emit()
            return
        query_node = pending[0]
        anchor = assignment[id(query_node.parent)]
        spec = collapsed.spec_of(query_node)
        if semantics == "prix":
            used = {id(node) for node in assignment.values()}
        else:
            used = frozenset()
        for candidate in _candidates_below(anchor, spec, query_node):
            if id(candidate) in used:
                continue
            assignment[id(query_node)] = candidate
            extend(pending[1:])
            del assignment[id(query_node)]

    # Process query nodes top-down (reverse postorder puts parents first).
    top_down = [node for node in reversed(query_nodes)
                if node is not query_root]
    for root_candidate in root_candidates:
        assignment[id(query_root)] = root_candidate
        extend(top_down)
        del assignment[id(query_root)]
    return results


def naive_match_count(documents, pattern, ordered=False):
    """Total number of twig occurrences across a collection."""
    return sum(len(naive_matches(document, pattern, ordered=ordered))
               for document in documents)


def label_histogram(documents):
    """Sequence-label frequencies over a collection (workload tuning)."""
    histogram = {}
    for document in documents:
        for node in document.nodes_in_postorder():
            label = sequence_label(node)
            histogram[label] = histogram.get(label, 0) + 1
    return histogram
