"""EXPLAIN for twig queries: show how PRIX will execute a pattern.

Produces a human-readable account of the matching pipeline for one
query against one index: the optimizer's variant choice (with the label
frequencies behind it), every branch arrangement's Prufer sequence with
edge specs and MaxGap relationship kinds, and the chosen strategy.
"""

from __future__ import annotations

from io import StringIO

from repro.prix.matcher import RARE_LABEL_NODE_LIMIT
from repro.prix.plan import build_plan
from repro.query.twig import arrangements, collapse
from repro.query.xpath import parse_xpath
from repro.xmlkit.tree import VALUE_LABEL_PREFIX


def _show_label(label):
    if label is None:
        return "*"
    if label.startswith(VALUE_LABEL_PREFIX):
        return f'"{label[len(VALUE_LABEL_PREFIX):]}"'
    return label


def _show_spec(spec):
    if spec.is_plain_child:
        return "/"
    if spec.max_steps is None:
        if spec.min_steps == 1:
            return "//"
        return f"//(>={spec.min_steps})"
    return f"/(={spec.min_steps})"


def explain(index, pattern, variant=None):
    """Return a multi-line explanation of the execution plan."""
    if isinstance(pattern, str):
        pattern = parse_xpath(pattern)
    out = StringIO()
    out.write(f"query: {pattern.source or '(twig)'}\n")

    chosen = variant or index.choose_variant(pattern)
    out.write(f"variant: {chosen}")
    if pattern.has_values():
        out.write("  (value predicates -> EPIndex, Section 5.6)\n")
    else:
        out.write("  (value-free: first-label trie-node frequencies: ")
        parts = []
        for name in sorted(index.variants()):
            variant_index = index._variants[name]
            plan = build_plan(collapse(pattern),
                              extended=variant_index.extended)
            first = plan.qlps[0] if plan.qlps else None
            count = variant_index.label_counts.get(first, 0)
            parts.append(f"{name}:{_show_label(first)}={count}")
        out.write(", ".join(parts) + ")\n")

    variant_index = index._variants[chosen]
    counts = variant_index.label_counts
    plans = [build_plan(arranged, extended=variant_index.extended)
             for arranged in arrangements(pattern)]
    out.write(f"arrangements: {len(plans)}\n")
    for number, plan in enumerate(plans, start=1):
        labels = " ".join(_show_label(label) for label in plan.qlps)
        out.write(f"  [{number}] LPS(Q) = {labels}\n")
        out.write(f"      NPS(Q) = "
                  f"{' '.join(map(str, plan.qnps))}\n")
        specs = ", ".join(
            f"{node}{_show_spec(plan.specs[node])}"
            for node in sorted(plan.specs))
        out.write(f"      edges  = {specs}\n")
        if plan.rel_kinds:
            out.write(f"      maxgap pairs = "
                      f"{' '.join(plan.rel_kinds)}\n")

    if plans and plans[0].qlps:
        rare = min(plans[0].qlps, key=lambda label: counts.get(label, 0))
        rare_nodes = counts.get(rare, 0)
        out.write(f"rarest label: {_show_label(rare)} "
                  f"({rare_nodes} trie nodes)\n")
        if rare_nodes <= RARE_LABEL_NODE_LIMIT:
            out.write("strategy: document-at-a-time candidate scan "
                      "(rare label pins down few documents)\n")
        else:
            out.write("strategy: trie traversal (Algorithm 1) per "
                      "arrangement\n")
    return out.getvalue()
