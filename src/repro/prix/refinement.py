"""Refinement phases (Section 4.2-4.4, Algorithm 2).

A candidate subsequence from the filter is checked, in order, for:

1. **connectedness** (Theorem 2) -- each closed node's image must connect
   to its parent's image; plain child edges use Algorithm 2's exact test
   (the next event must be the deletion of the image itself), wildcard
   edges walk the data parent chain as in Section 4.5,
2. **gap consistency** (Definition 3),
3. **frequency consistency** (Definition 4),
4. **leaf matching** (Section 4.4) -- only needed for leaves the sequence
   did not already verify: all leaves under an RPIndex, star leaves under
   an EPIndex.

Accepted candidates are expanded into concrete twig embeddings (query node
-> data postorder number), enumerating the possible images of leaves that
sit below descendant edges.
"""

from __future__ import annotations

import itertools

from repro.xmlkit.tree import DUMMY_TAG, VALUE_LABEL_PREFIX


class DocView:
    """Decoded view of one stored document used by the refinement phases.

    Holds the NPS, per-node sequence labels, and (lazily) the children
    adjacency needed to search subtrees for wildcard leaf images.
    """

    def __init__(self, doc_id, nps, labels, extended):
        self.doc_id = doc_id
        #: nps[i] is the parent of node i (1-based); index 0 unused.
        self.nps = nps
        #: labels[i] is the sequence label of node i; index 0 unused.
        self.labels = labels
        self.extended = extended
        self.n_nodes = len(nps) - 1
        self._children = None
        self._orig_numbers = None

    def parent(self, number):
        """Parent postorder number (0 for the root)."""
        return self.nps[number]

    def label(self, number):
        """Sequence label of the node."""
        return self.labels[number]

    def is_element(self, number):
        """True for element nodes (not values, not dummies)."""
        label = self.labels[number]
        return (label is not None and label != DUMMY_TAG
                and not label.startswith(VALUE_LABEL_PREFIX))

    def children_of(self, number):
        """Child postorder numbers, built lazily from the NPS."""
        if self._children is None:
            children = [[] for _ in range(self.n_nodes + 1)]
            for child in range(1, self.n_nodes):
                children[self.nps[child]].append(child)
            self._children = children
        return self._children[number]

    def iter_subtree_with_depth(self, number, max_depth=None):
        """Yield ``(descendant_or_self, depth)``, depth 0 at ``number``."""
        stack = [(number, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            if max_depth is not None and depth >= max_depth:
                continue
            for child in self.children_of(node):
                stack.append((child, depth + 1))

    def original_number(self, number):
        """Map an extended postorder number to the original numbering.

        In an extended tree the dummies are exactly the leaves, and every
        original node is internal, so the original numbering enumerates
        the internal nodes in (extended) postorder.
        """
        if not self.extended:
            return number
        if self._orig_numbers is None:
            internal = [False] * (self.n_nodes + 1)
            for parent in self.nps[1:]:
                internal[parent] = True
            mapping = [0] * (self.n_nodes + 1)
            counter = 0
            for node in range(1, self.n_nodes + 1):
                if internal[node]:
                    counter += 1
                    mapping[node] = counter
            self._orig_numbers = mapping
        return self._orig_numbers[number]


def _walk_chain(view, start, target, spec):
    """Walk the parent chain from ``start``; True if ``target`` is reached
    within steps admitted by ``spec``."""
    steps = 0
    current = start
    limit = spec.max_steps
    while True:
        if current == target:
            return spec.admits(steps)
        if current == 0 or current > target:
            return False
        if limit is not None and steps >= limit:
            return False
        current = view.parent(current)
        steps += 1


def refine(plan, view, positions, budget=None):
    """Run all refinement phases on one candidate subsequence.

    Returns the list of embeddings (dict: match-tree node number ->
    data postorder number, in the *view's* numbering), or an empty list
    when the candidate is rejected.  ``budget`` (a
    :class:`~repro.prix.budget.BudgetMeter`) adds cancellation points at
    entry and inside the leaf-combination enumeration -- the only loop
    here whose size is not bounded by the query length.
    """
    if budget is not None:
        budget.checkpoint()
    nps = view.nps
    n_positions = len(positions)
    images = [nps[s] for s in positions]  # N: images of the query parents
    max_image = max(images)

    # --- Refinement by connectedness (Theorem 2 / Section 4.5) ---
    last_occurrence = {}
    for index, value in enumerate(images):
        last_occurrence[value] = index
    for i in range(n_positions):
        value = images[i]
        if value == max_image or last_occurrence[value] != i:
            continue
        if i + 1 >= n_positions:
            return []
        closed = plan.qnps[i]          # the query node whose image closes
        spec = plan.specs.get(closed)
        if spec is None:
            return []
        if spec.is_plain_child:
            # Algorithm 2 line 4: the next event must delete the image.
            if positions[i + 1] != value:
                return []
        else:
            if not _walk_chain(view, value, images[i + 1], spec):
                return []

    # --- Refinement by structure: gap consistency (Definition 3) ---
    qnps = plan.qnps
    for i in range(n_positions - 1):
        data_gap = images[i] - images[i + 1]
        query_gap = qnps[i] - qnps[i + 1]
        if (data_gap == 0) != (query_gap == 0):
            return []
        if data_gap * query_gap < 0:
            return []
        if abs(query_gap) > abs(data_gap):
            return []

    # --- Refinement by structure: frequency consistency (Definition 4) ---
    image_of = {}
    taken = set()
    for i in range(n_positions):
        query_node = qnps[i]
        known = image_of.get(query_node)
        if known is None:
            if images[i] in taken:
                return []
            image_of[query_node] = images[i]
            taken.add(images[i])
        elif known != images[i]:
            return []

    root_image = image_of.get(plan.root_number)
    if root_image != max_image:
        return []
    if plan.absolute and root_image != view.n_nodes:
        return []

    # --- Refinement by matching leaf nodes (Section 4.4) ---
    leaf_choices = []
    leaf_numbers = []
    star_flags = []
    for check in plan.leaf_checks:
        event = positions[check.number - 1]
        if check.spec.is_plain_child:
            candidates = [event] if _leaf_label_ok(view, event, check) else []
        else:
            max_depth = (None if check.spec.max_steps is None
                         else check.spec.max_steps - 1)
            candidates = [node for node, depth
                          in view.iter_subtree_with_depth(event, max_depth)
                          if check.spec.admits(depth + 1)
                          and _leaf_label_ok(view, node, check)]
        if not candidates:
            return []
        leaf_choices.append(candidates)
        leaf_numbers.append(check.number)
        star_flags.append(check.is_star)

    # A twig occurrence assigns *distinct* data nodes to distinct query
    # nodes (the filter's strictly-increasing positions already enforce
    # this for the events; leaf images must not collide either).  Star
    # leaves take part in the injective assignment but are stripped from
    # the reported embedding: they are existence tests, not result nodes.
    base = dict(image_of)
    base_values = set(base.values())
    seen = set()
    embeddings = []
    for combo in itertools.product(*leaf_choices):
        if budget is not None:
            budget.checkpoint()
        if len(set(combo)) != len(combo):
            continue
        if base_values.intersection(combo):
            continue
        embedding = dict(base)
        for number, image, is_star in zip(leaf_numbers, combo, star_flags):
            if not is_star:
                embedding[number] = image
        key = frozenset(embedding.items())
        if key not in seen:
            seen.add(key)
            embeddings.append(embedding)
    return embeddings


def _leaf_label_ok(view, node, check):
    if check.is_star:
        return view.is_element(node)
    return view.label(node) == check.label
