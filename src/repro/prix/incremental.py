"""Incremental document insertion (the dynamic labeling scheme at work).

Section 5.2.1's dynamic labeling exists so the virtual trie can grow
without relabeling: each trie node's range keeps unallocated *scope* from
which ranges for newly appearing children are carved.  This module walks
a new document's LPS down the disk-resident trie (via the Trie-Symbol
index), descending through existing nodes and carving ranges for new
ones; allocation state (each node's next free position) lives in a
dedicated B+-tree so inserts survive restarts.

When a carve no longer fits -- the *scope underflow* of Section 5.2.1 --
:class:`RebuildRequiredError` is raised; :meth:`PrixIndex.rebuilt`
reconstructs the documents from their stored sequences and builds a
fresh, compact index.
"""

from __future__ import annotations

import struct

from repro.prix.filtering import DocidIndex, TrieSymbolIndex
from repro.storage.codec import encode_int, encode_key

_ALLOC_VALUE = struct.Struct("<Q")

#: Share of the remaining scope granted to each newly carved child.
DEFAULT_INSERT_FANOUT = 8


class RebuildRequiredError(RuntimeError):
    """An insert ran out of scope; the index must be rebuilt."""


class AllocationTree:
    """Per-trie-node allocation state: node LeftPos -> next free id."""

    def __init__(self, bptree):
        self._tree = bptree

    @property
    def tree(self):
        """The underlying B+-tree."""
        return self._tree

    def get(self, left):
        """Next free id for the node at ``left``, or None."""
        value = self._tree.get(encode_int(left))
        if value is None:
            return None
        return _ALLOC_VALUE.unpack(value)[0]

    def set(self, left, next_free):
        """Record the node's next free id."""
        key = encode_int(left)
        value = self._tree.get(key)
        if value is not None:
            self._tree.delete(key)
        self._tree.insert(key, _ALLOC_VALUE.pack(next_free))

    @staticmethod
    def seed_entries(trie):
        """Initial (key, value) pairs for a freshly labeled trie.

        A node's next free id sits just past its last child's range (or
        at ``left + 1`` for leaves).
        """
        entries = []
        stack = [trie.root]
        while stack:
            node = stack.pop()
            children = list(node.children.values())
            next_free = max((child.right for child in children),
                            default=node.left + 1)
            entries.append((encode_int(node.left),
                            _ALLOC_VALUE.pack(next_free)))
            stack.extend(children)
        entries.sort(key=lambda pair: pair[0])
        return entries


def find_child(symbol_index, label, parent_left, parent_right,
               parent_level):
    """Locate the parent's child edge labeled ``label``, if present."""
    for left, right, level, gap in symbol_index.range_query_gaps(
            label, parent_left, parent_right):
        if level == parent_level + 1:
            return left, right, gap
    return None


def insert_sequence(variant, alloc, seq, doc_id,
                    fanout=DEFAULT_INSERT_FANOUT):
    """Insert one document's LPS into a variant's virtual trie.

    Returns the number of new trie nodes created.  Raises
    :class:`RebuildRequiredError` on scope underflow (the caller decides
    whether to rebuild).  Existing nodes' finer-grained MaxGaps are
    widened when the new document's parent spans exceed them.
    """
    from repro.prufer.maxgap import position_gaps

    symbol_index = variant.symbol_index
    cur_left, cur_right = variant.root_range
    cur_level = 0
    new_nodes = 0
    gaps = position_gaps(seq)

    for position, label in enumerate(seq.lps):
        doc_gap = gaps[position]
        child = find_child(symbol_index, label, cur_left, cur_right,
                           cur_level)
        if child is not None:
            child_left, child_right, stored_gap = child
            if doc_gap > stored_gap:
                old_key, _ = TrieSymbolIndex.make_entry(
                    label, child_left, child_right, cur_level + 1)
                symbol_index.tree.delete(old_key)
                new_key, new_value = TrieSymbolIndex.make_entry(
                    label, child_left, child_right, cur_level + 1,
                    doc_gap)
                symbol_index.tree.insert(new_key, new_value)
            cur_left, cur_right = child_left, child_right
        else:
            next_free = alloc.get(cur_left)
            if next_free is None:
                next_free = cur_left + 1
            remaining = cur_right - next_free
            # The new child must hold the whole remaining chain of this
            # sequence (each deeper node consumes at least 2 ids), so
            # size the carve by the known tail length rather than only a
            # geometric share -- a pure remaining/fanout split shrinks
            # too fast for long (e.g. Extended-Prufer) sequences.
            tail = len(seq.lps) - position
            needed = 4 * tail + 8
            share = max(remaining // fanout, needed)
            if share > remaining:
                share = remaining
            if share < needed or next_free + share > cur_right:
                raise RebuildRequiredError(
                    f"scope underflow inserting doc {doc_id}: node at "
                    f"{cur_left} has {remaining} ids left, needs "
                    f"{needed}")
            child_left = next_free
            child_right = next_free + share
            alloc.set(cur_left, child_right)
            alloc.set(child_left, child_left + 1)
            key, value = TrieSymbolIndex.make_entry(
                label, child_left, child_right, cur_level + 1, doc_gap)
            symbol_index.tree.insert(key, value)
            variant.label_counts[label] = \
                variant.label_counts.get(label, 0) + 1
            new_nodes += 1
            cur_left, cur_right = child_left, child_right
        cur_level += 1

    doc_key, doc_value = DocidIndex.make_entry(cur_left, doc_id)
    variant.docid_index.tree.insert(doc_key, doc_value)
    return new_nodes
