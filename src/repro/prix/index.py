"""The PRIX index: build, store and query (Sections 3 and 5).

A :class:`PrixIndex` owns one paged storage file containing, per variant
(RPIndex over Regular-Prufer sequences, EPIndex over Extended-Prufer
sequences, Section 5.6):

- the Trie-Symbol index (B+-tree over ``(label, LeftPos)``),
- the Docid index (B+-tree over the LeftPos of each LPS terminal),
- a record store holding each document's NPS, LPS and leaf list,
- the MaxGap table (Section 5.4).

The query entry point transforms a twig, picks a variant (EPIndex for
queries with values, RPIndex otherwise -- the optimizer of Section 5.6),
and runs the filter/refine pipeline.
"""

from __future__ import annotations

import json
import os
import struct
import time
from dataclasses import dataclass, field

from repro.prix.filtering import DocidIndex, TrieSymbolIndex
from repro.prix.incremental import (AllocationTree, RebuildRequiredError,
                                    insert_sequence)
from repro.prix.matcher import QueryStats, run_query
from repro.prix.refinement import DocView
from repro.prufer.reconstruct import reconstruct_document
from repro.prufer.maxgap import MaxGapTable, position_gaps
from repro.prufer.sequence import extended_sequence, regular_sequence
from repro.query.xpath import parse_xpath
from repro.storage.backend import (DEFAULT_PAGE_SIZE, DEFAULT_POOL_PAGES,
                                   SYNC_COMMIT, backend_from_files,
                                   create_backend, open_backend,
                                   recover_backend, recover_files)
from repro.storage.bptree import BPlusTree
from repro.storage.codec import decode_varints, encode_varints
from repro.storage.records import RecordStore
from repro.trie.labeling import BulkDFSLabeler, DynamicLabeler
from repro.trie.trie import SequenceTrie

VARIANT_REGULAR = "rp"
VARIANT_EXTENDED = "ep"


@dataclass
class IndexOptions:
    """Construction-time knobs, defaulted to the paper's setup."""

    variants: tuple = (VARIANT_REGULAR, VARIANT_EXTENDED)
    page_size: int = DEFAULT_PAGE_SIZE
    pool_pages: int = DEFAULT_POOL_PAGES
    labeler: str = "bulk"          # "bulk" or "dynamic" (Section 5.2.1)
    alpha: int = 4                 # prefix length for dynamic labeling
    max_range: int = 2 ** 63       # 8-byte ranges, as in the experiments
    path: str | None = None        # None -> in-memory storage
    insert_fanout: int = 8         # scope share for incremental inserts
    maxgap_granularity: str = "label"  # or "node" (Section 5.4, fine)
    durable: bool = False          # write-ahead log + crash recovery
    wal_path: str | None = None    # default: f"{path}.wal"
    wal_sync: str = SYNC_COMMIT    # fsync policy: commit/always/never
    guard: bool = False            # per-page checksums + read-repair
    guard_path: str | None = None  # default: f"{path}.sum"
    file_factory: object = None    # testing hook: kind -> file object
    backend: str = "file"          # storage substrate: "file" or "arena"


@dataclass
class TrieStats:
    """Build-time statistics about one variant's virtual trie."""

    node_count: int = 0
    path_count: int = 0
    sequence_count: int = 0
    max_path_sharing: int = 0
    total_sequence_length: int = 0
    underflows: int = 0
    rebuilds: int = 0


class LabelDict:
    """Bidirectional label <-> integer id mapping for compact storage."""

    def __init__(self):
        self._by_label = {}
        self._by_id = []

    def id_of(self, label):
        """Integer id for ``label``, assigning one if new."""
        label_id = self._by_label.get(label)
        if label_id is None:
            label_id = len(self._by_id)
            self._by_label[label] = label_id
            self._by_id.append(label)
        return label_id

    def label_of(self, label_id):
        """Label string for an id."""
        return self._by_id[label_id]

    def __len__(self):
        return len(self._by_id)


@dataclass
class _VariantIndex:
    """Built structures for one sequence variant."""

    name: str
    extended: bool
    symbol_index: TrieSymbolIndex = None
    docid_index: DocidIndex = None
    root_range: tuple = (0, 0)
    maxgap: MaxGapTable = field(default_factory=MaxGapTable)
    catalog: dict = field(default_factory=dict)    # doc_id -> record id
    trie_stats: TrieStats = field(default_factory=TrieStats)
    label_counts: dict = field(default_factory=dict)  # trie nodes per label
    alloc: AllocationTree = None   # scope state for incremental inserts


#: Superblock layout: magic, meta-record page/offset/length, page size.
_SUPERBLOCK = struct.Struct("<8sIIQI")
_SUPER_MAGIC = b"PRIXIDX1"


class PrixIndex:
    """Disk-backed PRIX index over a collection of documents.

    Build with :meth:`build`; a file-backed index (``IndexOptions(path=
    ...)``) can be persisted with :meth:`save` and reattached later with
    :meth:`open` without rebuilding.
    """

    def __init__(self, pool, records, label_dict, variants, doc_ids):
        self._pool = pool
        self._records = records
        self._labels = label_dict
        self._variants = variants
        self._doc_ids = doc_ids

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, documents, options=None):
        """Build an index over ``documents`` (numbered ``Document``\\ s)."""
        options = options or IndexOptions()
        # Validate before any pager/pool exists: raising after the file
        # is created would leak the handle (and a half-written file).
        documents = list(documents)
        doc_ids = [doc.doc_id for doc in documents]
        if len(set(doc_ids)) != len(doc_ids):
            raise ValueError("document ids must be unique")

        pool = create_backend(options)
        superblock_id, _ = pool.new_page()   # reserved: page 0
        assert superblock_id == 0
        records = RecordStore(pool)
        label_dict = LabelDict()

        variants = {}
        for name in options.variants:
            variants[name] = cls._build_variant(
                name, documents, options, pool, records, label_dict)
        index = cls(pool, records, label_dict, variants, doc_ids)
        index._options = options
        if options.durable:
            # A durable build is one committed batch: persist the
            # catalog and seal everything behind a COMMIT record so a
            # crash from here on recovers the complete index, and a
            # crash before this line recovers an empty one -- never a
            # torn middle.
            index.save()
        return index

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------

    def insert_document(self, document):
        """Insert one new document without rebuilding (Section 5.2.1).

        The document's sequences are threaded through the virtual trie;
        ranges for new trie nodes are carved from their parents'
        unallocated scope by the dynamic labeling scheme.  Indexes built
        with the default bulk labeler have *gap-free* ranges and will
        raise :class:`RebuildRequiredError` immediately; build with
        ``IndexOptions(labeler="dynamic")`` to leave insertion slack.

        On :class:`RebuildRequiredError` the document's record is already
        cataloged, so :meth:`rebuilt` includes it; until then queries may
        miss the new document (its trie path is incomplete).

        On a ``durable`` index the insert becomes crash-safe at the next
        :meth:`save`, which seals the trie pages *and* the catalog that
        locates them in one committed batch -- a crash before that point
        recovers the pre-insert state, never a document the trie knows
        but the catalog does not.
        """
        if document.doc_id in set(self._doc_ids):
            raise ValueError(f"document id {document.doc_id} exists")
        fanout = getattr(self, "_options", None)
        fanout = fanout.insert_fanout if fanout else 8
        underflow = None
        for variant in self._variants.values():
            seq = (extended_sequence(document) if variant.extended
                   else regular_sequence(document))
            blob = _encode_document(seq, self._labels)
            variant.catalog[document.doc_id] = self._records.append(blob)
            _merge_maxgap(variant.maxgap, seq)
            stats = variant.trie_stats
            stats.sequence_count += 1
            stats.total_sequence_length += len(seq.lps)
            try:
                stats.node_count += insert_sequence(
                    variant, variant.alloc, seq, document.doc_id,
                    fanout=fanout)
            except RebuildRequiredError as error:
                underflow = error
        self._doc_ids.append(document.doc_id)
        if underflow is not None:
            raise underflow

    def delete_document(self, doc_id):
        """Remove a document from the index.

        The document's Docid-index entries are deleted, so queries stop
        reporting it immediately.  Trie nodes its sequences created are
        left in place (they are harmless: with no terminals below, the
        filter's final Docid range query returns nothing), as are its
        stored records; :meth:`rebuilt` compacts both away.  The MaxGap
        table keeps its old bounds -- MaxGap is an upper bound, so stale
        entries can only make pruning weaker, never incorrect.
        """
        if doc_id not in set(self._doc_ids):
            raise KeyError(f"document {doc_id} is not indexed")
        for variant in self._variants.values():
            view = self._view_loader(variant)(doc_id)
            lps = [view.labels[view.nps[i]]
                   for i in range(1, view.n_nodes)]
            terminal_left = self._terminal_of(variant, lps)
            key, value = DocidIndex.make_entry(terminal_left, doc_id)
            variant.docid_index.tree.delete(key, value)
            del variant.catalog[doc_id]
            variant.trie_stats.sequence_count -= 1
            variant.trie_stats.total_sequence_length -= len(lps)
        self._doc_ids.remove(doc_id)

    def _terminal_of(self, variant, lps):
        """Walk a stored LPS down the virtual trie; return the terminal's
        LeftPos."""
        from repro.prix.incremental import find_child
        cur_left, cur_right = variant.root_range
        level = 0
        for label in lps:
            child = find_child(variant.symbol_index, label, cur_left,
                               cur_right, level)
            if child is None:
                raise KeyError(
                    "stored sequence is missing from the trie (index "
                    "needs a rebuild?)")
            cur_left, cur_right, _ = child
            level += 1
        return cur_left

    def export_documents(self):
        """Reconstruct every indexed document from its stored sequences.

        Uses the Regular-Prufer records when available (the extended
        records would reproduce the dummy children); this is what
        :meth:`rebuilt` feeds back into :meth:`build`.
        """
        name = (VARIANT_REGULAR if VARIANT_REGULAR in self._variants
                else next(iter(self._variants)))
        variant = self._variants[name]
        loader = self._view_loader(variant)
        documents = []
        for doc_id in self._doc_ids:
            view = loader(doc_id)
            lps = [view.labels[view.nps[i]]
                   for i in range(1, view.n_nodes)]
            internal = set(view.nps[1:view.n_nodes])
            leaves = [(view.labels[i], i)
                      for i in range(1, view.n_nodes + 1)
                      if i not in internal]
            document = reconstruct_document(lps, view.nps[1:view.n_nodes],
                                            leaves, doc_id=doc_id)
            if variant.extended:
                document = _strip_dummies(document)
            documents.append(document)
        return documents

    def rebuilt(self, options=None):
        """Build a fresh, compact index holding the same documents.

        The recovery path after :class:`RebuildRequiredError`: documents
        are reconstructed from their stored sequences (no access to the
        original XML needed) and indexed from scratch.  Returns the new
        index; the old one remains readable.
        """
        if options is None:
            base = getattr(self, "_options", None) or IndexOptions()
            options = IndexOptions(
                variants=tuple(self._variants), page_size=base.page_size,
                pool_pages=base.pool_pages, labeler=base.labeler,
                alpha=base.alpha, max_range=base.max_range,
                insert_fanout=base.insert_fanout)
        return PrixIndex.build(self.export_documents(), options)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def commit(self):
        """Seal the current mutation batch in the write-ahead log.

        No-op (returning None) on a non-durable index; otherwise returns
        the commit record's LSN.  Under the default ``commit`` fsync
        policy the batch is durable when this returns.

        Note that a recovered index is reconstructed from the metadata
        written by :meth:`save`, so committing a mutation *without* a
        save makes page changes durable that the recovered catalog
        cannot see.  The durable mutation protocol is
        ``insert_document()``/``delete_document()`` followed by
        :meth:`save` (which commits everything in one batch) -- exactly
        what the ``prix insert``/``prix delete`` commands do.
        """
        return self._pool.commit()

    def checkpoint(self):
        """Flush everything, fsync the data file, truncate the log.

        After a checkpoint the data file alone is a complete, consistent
        index and recovery has nothing to replay.  Requires
        ``durable=True``.
        """
        self._pool.checkpoint()

    @property
    def durable(self):
        """Whether this index runs with a write-ahead log attached."""
        return self._pool.wal is not None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self):
        """Persist the catalog and flush everything to the backing file.

        The page payloads (B+-trees, records) already live in the pager
        file; this writes the metadata blob (label dictionary, per-variant
        catalogs, MaxGap tables, trie statistics) plus the superblock that
        locates it, then syncs.
        """
        meta = {
            "version": 1,
            "doc_ids": self._doc_ids,
            "labels": self._labels._by_id,
            "variants": {},
        }
        for name, variant in self._variants.items():
            stats = variant.trie_stats
            meta["variants"][name] = {
                "extended": variant.extended,
                "symbol_meta": variant.symbol_index.tree.meta_page_id,
                "docid_meta": variant.docid_index.tree.meta_page_id,
                "alloc_meta": variant.alloc.tree.meta_page_id
                              if variant.alloc else None,
                "root_range": list(variant.root_range),
                "maxgap": variant.maxgap.as_dict(),
                "label_counts": variant.label_counts,
                "catalog": {str(doc_id): list(rid)
                            for doc_id, rid in variant.catalog.items()},
                "trie_stats": {
                    "node_count": stats.node_count,
                    "path_count": stats.path_count,
                    "sequence_count": stats.sequence_count,
                    "max_path_sharing": stats.max_path_sharing,
                    "total_sequence_length": stats.total_sequence_length,
                    "underflows": stats.underflows,
                    "rebuilds": stats.rebuilds,
                },
            }
        blob = json.dumps(meta).encode("utf-8")
        rid = self._records.append(blob)
        frame = bytearray(self._pool.page_size)
        _SUPERBLOCK.pack_into(frame, 0, _SUPER_MAGIC, rid[0], rid[1],
                              rid[2], self._pool.page_size)
        self._pool.put(0, frame)
        self._pool.flush()
        self._pool.sync()

    @classmethod
    def open(cls, path, pool_pages=None, durable=None, wal_path=None,
             wal_sync=SYNC_COMMIT, guard=None, guard_path=None,
             backend="file", chaos=None):
        """Reattach to an index previously built with a ``path`` and
        :meth:`save`\\ d.

        When a write-ahead log is present (``{path}.wal`` by default, or
        ``wal_path``), the committed log tail is replayed into the data
        file *before* the superblock is read, so an index torn by a
        crash opens in its last committed state.  ``durable=None``
        auto-detects from the log file's existence; ``durable=True``
        keeps logging on the reopened index, ``durable=False`` skips
        both recovery and logging.

        ``guard`` follows the same convention for the checksum sidecar
        (``{path}.sum`` by default, or ``guard_path``): ``None``
        auto-detects an existing sidecar, ``True`` opens (creating if
        needed) one, ``False`` reads unverified.

        ``backend`` selects the substrate: ``"file"`` (writable, the
        default), ``"mmap"`` (read-only serving), or ``"arena"`` (a
        warm in-memory snapshot of the whole file: no disk I/O after
        open, mutations die with the process).  Recovery still
        runs for a torn mmap/arena open -- it is a pre-open pass over
        the path -- but the log is not reattached; every mutation on an
        mmap-served index raises
        :class:`~repro.storage.errors.ReadOnlyBackendError`.

        ``chaos`` (a :class:`~repro.storage.faults.ChaosConfig`) opens
        the backend through a fault-injecting
        :class:`~repro.storage.faults.ChaosBackend`.  Injection is
        disarmed while the catalog is attached -- the metadata reads of
        :meth:`_attach` must succeed for a mount to exist at all -- and
        armed just before the index is returned, so the fault stream
        (including a ``fail_first`` window) targets live query traffic.
        """
        if wal_path is None:
            wal_path = path + ".wal"
        if guard_path is None:
            guard_path = path + ".sum"
        if durable is None:
            durable = os.path.exists(wal_path)
        if guard is None:
            guard = os.path.exists(guard_path)
        if durable:
            recover_backend(path, wal_path, guard_path=guard_path)
        # Sanctioned raw read: the superblock must be sniffed before a
        # backend exists (it stores the page size the backend needs),
        # and these bytes are re-read through the pool right below, so
        # no counted page access is bypassed.
        with open(path, "rb") as handle:  # prixlint: disable=no-raw-io
            header = handle.read(_SUPERBLOCK.size)
        page, offset, length, stored_page_size = \
            cls._parse_superblock(header, path)
        pool = open_backend(path, stored_page_size, pool_pages=pool_pages,
                            kind=backend,
                            durable=durable and backend == "file",
                            wal_path=wal_path, wal_sync=wal_sync,
                            guard=guard, guard_path=guard_path,
                            chaos=chaos)
        if chaos is not None:
            pool.set_armed(False)
        index = cls._attach(pool, page, offset, length)
        if chaos is not None:
            pool.set_armed(True)
        return index

    @classmethod
    def open_from(cls, data_file, wal_file=None, pool_pages=None,
                  wal_sync=SYNC_COMMIT, guard_file=None):
        """Attach to an index held in open file objects.

        The crash-matrix harness uses this to reopen the durable images
        a simulated crash left behind: when ``wal_file`` is given, its
        committed tail is replayed into ``data_file`` first (the same
        recovery pass :meth:`open` runs on paths) and the log stays
        attached for further durable mutations.  ``guard_file`` likewise
        attaches a checksum sidecar held in an open file object (the
        corruption-matrix harness reopens the sidecar that survived the
        simulated fault alongside the data image).
        """
        wal = guard = None
        if wal_file is not None:
            wal, guard = recover_files(data_file, wal_file,
                                       guard_file=guard_file,
                                       wal_sync=wal_sync)
        data_file.seek(0)
        header = data_file.read(_SUPERBLOCK.size)
        page, offset, length, stored_page_size = \
            cls._parse_superblock(header, "data file")
        pool = backend_from_files(data_file, stored_page_size,
                                  pool_pages=pool_pages, wal=wal,
                                  wal_file=wal_file, guard=guard,
                                  guard_file=guard_file,
                                  wal_sync=wal_sync)
        return cls._attach(pool, page, offset, length)

    @staticmethod
    def _parse_superblock(header, origin):
        """Validate superblock bytes; return (page, offset, length,
        page_size).

        Raises :class:`~repro.storage.errors.SuperblockError` (a
        ``ValueError`` subclass, so pre-existing handlers keep working)
        when the bytes are not a PRIX superblock.
        """
        from repro.storage.errors import SuperblockError
        if len(header) < _SUPERBLOCK.size:
            raise SuperblockError(f"{origin} does not contain a PRIX index")
        magic, page, offset, length, stored_page_size = \
            _SUPERBLOCK.unpack(header)
        if magic != _SUPER_MAGIC:
            raise SuperblockError(f"{origin} does not contain a PRIX index")
        return page, offset, length, stored_page_size

    @classmethod
    def _attach(cls, pool, page, offset, length):
        """Rebuild the in-memory index from a located metadata record."""
        records = RecordStore(pool)
        meta = json.loads(records.read((page, offset, length)))

        label_dict = LabelDict()
        for label in meta["labels"]:
            label_dict.id_of(label)
        variants = {}
        for name, data in meta["variants"].items():
            variant = _VariantIndex(name=name, extended=data["extended"])
            variant.symbol_index = TrieSymbolIndex(
                BPlusTree.attach(pool, data["symbol_meta"]))
            variant.docid_index = DocidIndex(
                BPlusTree.attach(pool, data["docid_meta"]))
            if data.get("alloc_meta") is not None:
                variant.alloc = AllocationTree(
                    BPlusTree.attach(pool, data["alloc_meta"]))
            variant.root_range = tuple(data["root_range"])
            variant.maxgap = MaxGapTable(data["maxgap"])
            variant.label_counts = dict(data["label_counts"])
            variant.catalog = {int(doc_id): tuple(rid)
                               for doc_id, rid in data["catalog"].items()}
            variant.trie_stats = TrieStats(**data["trie_stats"])
            variants[name] = variant
        return cls(pool, records, label_dict, variants,
                   list(meta["doc_ids"]))

    def close(self):
        """Flush and close the backing storage stack (pool, log, file).

        Delegates to :meth:`StorageBackend.close
        <repro.storage.backend.StorageBackend.close>`, which commits
        and orders the log ahead of the data pages, fsyncs the data
        file (closing is a durability point), and releases every
        handle.
        """
        self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    @classmethod
    def _build_variant(cls, name, documents, options, pool, records,
                       label_dict):
        extended = name == VARIANT_EXTENDED
        variant = _VariantIndex(name=name, extended=extended)
        trie = SequenceTrie()
        total_length = 0

        for document in documents:
            seq = (extended_sequence(document) if extended
                   else regular_sequence(document))
            trie.insert(seq.lps, document.doc_id,
                        gaps=position_gaps(seq))
            total_length += len(seq.lps)
            _merge_maxgap(variant.maxgap, seq)
            blob = _encode_document(seq, label_dict)
            variant.catalog[document.doc_id] = records.append(blob)

        if options.labeler == "dynamic":
            labeler = DynamicLabeler(max_range=options.max_range,
                                     alpha=options.alpha)
            variant.root_range = labeler.label(trie)
            variant.trie_stats.underflows = labeler.underflows
            variant.trie_stats.rebuilds = labeler.rebuilds
        else:
            variant.root_range = BulkDFSLabeler().label(trie)

        symbol_entries = []
        docid_entries = []
        counts = variant.label_counts
        for node in trie.iter_nodes():
            # Distinct trie nodes per label = Trie-Symbol index entries =
            # the filter's worst-case fan-out for that label.  Path
            # sharing makes this far smaller than the occurrence count on
            # structurally similar corpora (Section 6.4.2).
            counts[node.label] = counts.get(node.label, 0) + 1
            symbol_entries.append(TrieSymbolIndex.make_entry(
                node.label, node.left, node.right, node.level,
                node.node_gap))
            for doc_id in node.doc_ids:
                docid_entries.append(DocidIndex.make_entry(
                    node.left, doc_id))
        symbol_entries.sort(key=lambda pair: pair[0])
        docid_entries.sort(key=lambda pair: pair[0])
        variant.symbol_index = TrieSymbolIndex(
            BPlusTree.bulk_load(pool, symbol_entries))
        variant.docid_index = DocidIndex(
            BPlusTree.bulk_load(pool, docid_entries))
        variant.alloc = AllocationTree(
            BPlusTree.bulk_load(pool, AllocationTree.seed_entries(trie)))

        variant.trie_stats.node_count = trie.node_count
        variant.trie_stats.path_count = trie.path_count()
        variant.trie_stats.sequence_count = trie.sequence_count
        variant.trie_stats.max_path_sharing = trie.max_path_sharing()
        variant.trie_stats.total_sequence_length = total_length
        return variant

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def doc_count(self):
        """Number of indexed documents."""
        return len(self._doc_ids)

    @property
    def io_stats(self):
        """The storage stack's I/O counters (shared by all variants)."""
        return self._pool.stats

    def variants(self):
        """Names of the built variants ('rp', 'ep')."""
        return tuple(self._variants)

    def trie_stats(self, variant):
        """Build-time trie statistics for a variant."""
        return self._variants[variant].trie_stats

    def maxgap_table(self, variant):
        """The MaxGap table of a variant."""
        return self._variants[variant].maxgap

    def flush_cache(self):
        """Write back and drop every cached page (cold-cache measurement)."""
        self._pool.flush_and_clear()

    # ------------------------------------------------------------------
    # Query processing
    # ------------------------------------------------------------------

    def choose_variant(self, pattern):
        """The query optimizer's variant choice.

        Section 5.6's rule picks EPIndex whenever the query carries value
        predicates (their high selectivity prunes subsequence matching).
        For value-free queries we extend the rule with a selectivity
        estimate: filtering fans out from the *first* LPS label of the
        query, so whichever variant gives that label the lower collection
        frequency explores fewer trie paths.  This is how the paper's
        Q8 discussion can lean on MaxGap of a rare *leaf* tag
        (RBR_OR_JJR): leaf labels only reach the filter through the
        extended sequences.  Both variants return identical answers, so
        the choice is purely a cost decision.
        """
        if pattern.has_values() and VARIANT_EXTENDED in self._variants:
            return VARIANT_EXTENDED
        if len(self._variants) == 1:
            return next(iter(self._variants))

        from repro.prix.plan import build_plan
        from repro.query.twig import collapse

        def first_label_frequency(name):
            variant = self._variants[name]
            plan = build_plan(collapse(pattern),
                              extended=variant.extended)
            if not plan.qlps:
                return 0
            return variant.label_counts.get(plan.qlps[0], 0)

        return min(sorted(self._variants),
                   key=lambda name: (first_label_frequency(name),
                                     name != VARIANT_REGULAR))

    def query(self, pattern, *, ordered=False, variant=None,
              use_maxgap=True, strategy="auto", maxgap_granularity=None,
              budget=None):
        """Find all occurrences of a twig; return a
        :class:`~repro.prix.matcher.QueryResult` (a list of
        ``TwigMatch``).

        Args:
            pattern: a :class:`~repro.query.twig.TwigPattern` or an XPath
                string.
            ordered: require the twig's branch order in matches
                (default False: unordered semantics, Section 5.7).
            variant: force ``"rp"`` or ``"ep"``; default lets the
                optimizer decide.
            use_maxgap: apply Theorem 4 pruning (default on).
            strategy: ``"trie"`` / ``"document"`` / ``"auto"`` -- see
                :func:`repro.prix.matcher.run_query`.
            budget: a :class:`~repro.prix.budget.QueryBudget` (or an
                already-started ``BudgetMeter``).  If refinement runs
                out of budget the result comes back with
                ``approximate=True`` -- a guaranteed superset of the
                exact answer's documents, never a silent wrong answer;
                running out during filtering raises
                :class:`~repro.prix.budget.BudgetExceededError`.
        """
        matches, _ = self.query_with_stats(
            pattern, ordered=ordered, variant=variant,
            use_maxgap=use_maxgap, strategy=strategy,
            maxgap_granularity=maxgap_granularity, budget=budget)
        return matches

    def query_with_stats(self, pattern, *, ordered=False, variant=None,
                         use_maxgap=True, strategy="auto",
                         maxgap_granularity=None, cold=False, budget=None):
        """Like :meth:`query` but also return a ``QueryStats``.

        ``cold=True`` flushes the buffer pool first, so ``physical_reads``
        reports cold-cache page I/O the way the paper measures it.
        """
        from repro.prix.budget import QueryBudget
        if isinstance(pattern, str):
            pattern = parse_xpath(pattern)
        if variant is None:
            variant = self.choose_variant(pattern)
        if variant not in self._variants:
            raise KeyError(f"variant {variant!r} was not built")
        if cold:
            self.flush_cache()
        if maxgap_granularity is None:
            options = getattr(self, "_options", None)
            maxgap_granularity = (options.maxgap_granularity
                                  if options else "label")
        meter = budget
        if isinstance(budget, QueryBudget):
            meter = (None if budget.unlimited
                     else budget.meter(io_stats=self._pool.stats))
        variant_index = self._variants[variant]
        stats = QueryStats(variant=variant)
        reads_before = self._pool.stats.read("physical_reads")
        started = time.perf_counter()
        matches, stats = run_query(
            pattern, variant_index, self._view_loader(variant_index),
            ordered=ordered, use_maxgap=use_maxgap, strategy=strategy,
            maxgap_granularity=maxgap_granularity, stats=stats,
            budget=meter)
        stats.elapsed_seconds = time.perf_counter() - started
        stats.physical_reads = (self._pool.stats.read("physical_reads")
                                - reads_before)
        return matches, stats

    def _view_loader(self, variant_index):
        def load(doc_id):
            rid = variant_index.catalog[doc_id]
            blob = self._records.read(rid)
            return _decode_document(doc_id, blob, self._labels,
                                    variant_index.extended)
        return load


def _strip_dummies(document):
    """Remove Extended-Prufer dummy leaves and renumber."""
    from repro.xmlkit.tree import DUMMY_TAG, Document
    for node in document.nodes_in_postorder():
        node.children = [child for child in node.children
                         if child.tag != DUMMY_TAG]
    return Document(document.root, doc_id=document.doc_id)


def _merge_maxgap(table, seq):
    """Merge one sequence's child spans into the MaxGap table.

    The children of node ``p`` are exactly the positions where ``p``
    occurs in the NPS (Lemma 1), so spans are computable from the sequence
    without revisiting the tree.
    """
    first = {}
    last = {}
    label_of = {}
    for position, parent in enumerate(seq.nps, start=1):
        if parent not in first:
            first[parent] = position
        last[parent] = position
        label_of[parent] = seq.lps[position - 1]
    for parent, first_child in first.items():
        span = last[parent] - first_child
        if span > 0:
            table.merge_span(label_of[parent], span)




def _encode_document(seq, label_dict):
    """Serialize (NPS, LPS label ids, leaf list) into one varint blob."""
    numbers = [seq.n_nodes]
    numbers.extend(seq.nps)
    numbers.extend(label_dict.id_of(label) for label in seq.lps)
    numbers.append(len(seq.leaves))
    for label, postorder in seq.leaves:
        numbers.append(label_dict.id_of(label))
        numbers.append(postorder)
    return encode_varints(numbers)


def _decode_document(doc_id, blob, label_dict, extended):
    """Rebuild a :class:`DocView` from a stored document blob."""
    numbers = decode_varints(blob)
    n_nodes = numbers[0]
    pos = 1
    nps = [0] * (n_nodes + 1)
    for i in range(1, n_nodes):
        nps[i] = numbers[pos]
        pos += 1
    labels = [None] * (n_nodes + 1)
    for i in range(1, n_nodes):
        labels[nps[i]] = label_dict.label_of(numbers[pos])
        pos += 1
    leaf_count = numbers[pos]
    pos += 1
    for _ in range(leaf_count):
        label_id = numbers[pos]
        postorder = numbers[pos + 1]
        pos += 2
        labels[postorder] = label_dict.label_of(label_id)
    return DocView(doc_id, nps, labels, extended)
