"""Query budgets, cooperative cancellation, and graceful degradation.

A :class:`QueryBudget` caps the resources one query may spend: trie
range queries, physical page reads, refinement candidates, and wall
clock.  The caps are enforced *cooperatively*: the filter and refinement
code calls back into a :class:`BudgetMeter` at its natural checkpoints
(each trie range query, each candidate, each refinement step), and the
meter raises a typed :class:`BudgetExceededError` when a cap is hit --
no threads, no signals, deterministic under test.

What exhaustion *means* depends on the phase, and the distinction is
justified by the paper's Theorems 1-2: every twig occurrence embeds as a
subsequence of the document's LPS, so the *complete* filter output is a
superset of the true answer with no false dismissals.

- Exhaustion during **refinement** therefore degrades gracefully: the
  filter's candidate documents are returned as an ``approximate=True``
  superset (:class:`~repro.prix.matcher.QueryResult`) with a structured
  :class:`DegradationReason` -- every true match's document is in the
  result, some non-matches may be too.
- Exhaustion during **filtering** cannot degrade: an *incomplete* filter
  pass may have dismissed true matches, and handing it out as a
  "superset" would be a silent wrong answer -- exactly what this layer
  exists to prevent.  The error propagates instead.

See ``docs/ROBUSTNESS.md`` for the knobs and the result contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: Phases a budget can run out in (see module docstring for why the
#: distinction is load-bearing).
PHASE_FILTER = "filter"
PHASE_REFINEMENT = "refinement"


@dataclass(frozen=True)
class DegradationReason:
    """Structured record of which cap ran out, where, and by how much."""

    phase: str      # PHASE_FILTER or PHASE_REFINEMENT
    limit: str      # "range_queries" | "physical_reads" | "candidates"
    #                 | "deadline"
    spent: float    # what was consumed when the cap tripped
    budget: float   # the configured cap

    def as_dict(self):
        """JSON-ready form (the CLI prints this with the result)."""
        return {"phase": self.phase, "limit": self.limit,
                "spent": self.spent, "budget": self.budget}

    def __str__(self):
        spent = (f"{self.spent:.3f}s" if self.limit == "deadline"
                 else f"{int(self.spent)}")
        budget = (f"{self.budget:.3f}s" if self.limit == "deadline"
                  else f"{int(self.budget)}")
        return (f"{self.limit} budget exhausted during {self.phase} "
                f"({spent} of {budget})")


class BudgetExceededError(RuntimeError):
    """A query hit one of its :class:`QueryBudget` caps.

    Escapes to the caller only for filter-phase exhaustion (no safe
    superset exists); refinement-phase exhaustion is caught by the
    matcher and converted into an approximate result.
    """

    def __init__(self, reason):
        self.reason = reason
        super().__init__(str(reason))


@dataclass(frozen=True)
class QueryBudget:
    """Resource caps for one query; ``None`` means uncapped.

    Attributes:
        max_range_queries: trie range queries the filter may issue.
        max_physical_reads: pages the query may fault in (measured as
            the delta of ``IOStats.physical_reads``).
        max_candidates: filter candidates refinement may process.
        deadline_seconds: wall-clock allowance from :meth:`meter` time.
    """

    max_range_queries: int | None = None
    max_physical_reads: int | None = None
    max_candidates: int | None = None
    deadline_seconds: float | None = None

    @property
    def unlimited(self):
        """True when no cap is set (the meter becomes a no-op)."""
        return (self.max_range_queries is None
                and self.max_physical_reads is None
                and self.max_candidates is None
                and self.deadline_seconds is None)

    def fork(self, deadline_seconds=None):
        """A fresh budget carrying the same limits.

        The serving path's minting operation: one server-wide
        ``QueryBudget`` (parsed once from flags or config) forks a
        per-request budget for every admitted query, and each fork's
        :meth:`meter` starts its own deadline clock and physical-read
        baseline.  The caps themselves are immutable, so the fork is a
        constructor call -- no flag re-parsing, no shared meter state
        between requests.

        ``deadline_seconds`` lets a caller *tighten* the template's
        wall-clock cap (the ``X-Prix-Deadline-Ms`` request header): the
        fork's deadline is the minimum of the template's and the
        caller's, so a request can never loosen the server-wide cap.
        """
        deadline = self.deadline_seconds
        if deadline_seconds is not None:
            deadline = (deadline_seconds if deadline is None
                        else min(deadline, deadline_seconds))
        return QueryBudget(
            max_range_queries=self.max_range_queries,
            max_physical_reads=self.max_physical_reads,
            max_candidates=self.max_candidates,
            deadline_seconds=deadline)

    def split(self, n):
        """Divide this budget into ``n`` sub-budgets, exactly.

        The scatter-gather primitive (``docs/SHARDING.md``): a sharded
        query hands each shard its own slice of the caller's budget, and
        the slices must *conserve* the parent -- for every countable cap
        (range queries, physical reads, candidates) the children's caps
        sum to exactly the parent's, never more, never fewer.  Caps that
        do not divide evenly spill their remainder one unit at a time
        into the earliest children, so ``sum(child.cap) == parent.cap``
        holds for every ``n``.

        The wall-clock deadline is **shared, not divided**: a deadline
        bounds the whole query's elapsed time, and the shards of one
        query run toward the same horizon -- each child carries the
        parent's full ``deadline_seconds`` (the sharded executor starts
        every child's clock from the same scatter instant and tightens
        it with :meth:`fork` as time burns down).

        Uncapped (``None``) limits stay uncapped in every child.
        Composes with :meth:`fork`: forking then splitting yields the
        same caps as splitting the original.
        """
        if n < 1:
            raise ValueError(f"cannot split a budget into {n} parts")

        def shares(cap):
            if cap is None:
                return [None] * n
            base, spill = divmod(cap, n)
            return [base + (1 if i < spill else 0) for i in range(n)]

        ranges = shares(self.max_range_queries)
        reads = shares(self.max_physical_reads)
        candidates = shares(self.max_candidates)
        return [QueryBudget(max_range_queries=ranges[i],
                            max_physical_reads=reads[i],
                            max_candidates=candidates[i],
                            deadline_seconds=self.deadline_seconds)
                for i in range(n)]

    def grant(self, range_queries=0, physical_reads=0, candidates=0):
        """A copy of this budget with headroom added to countable caps.

        The redistribution half of :meth:`split`: when one shard of a
        scatter-gather finishes under its slice, the executor grants the
        *unused* remainder to the shards still waiting, so the total
        work admitted stays exactly the parent's cap while no shard
        starves behind a lucky sibling.  ``None`` (uncapped) limits
        ignore the grant -- there is nothing to top up.
        """
        def topped(cap, extra):
            return None if cap is None else cap + max(0, extra)

        return QueryBudget(
            max_range_queries=topped(self.max_range_queries, range_queries),
            max_physical_reads=topped(self.max_physical_reads,
                                      physical_reads),
            max_candidates=topped(self.max_candidates, candidates),
            deadline_seconds=self.deadline_seconds)

    def meter(self, io_stats=None, clock=time.monotonic):
        """Start enforcement: returns a :class:`BudgetMeter` whose
        deadline and read baseline begin now."""
        return BudgetMeter(self, io_stats=io_stats, clock=clock)


class BudgetMeter:
    """Runtime enforcement of one query's :class:`QueryBudget`.

    One meter covers one query execution.  The query pipeline calls
    :meth:`charge_range_query` / :meth:`charge_candidate` /
    :meth:`checkpoint` at its cancellation points; a violated cap raises
    :class:`BudgetExceededError` carrying a :class:`DegradationReason`
    for the phase the meter is currently in (:meth:`enter_refinement`
    flips it).  ``clock`` is injectable so deadline behaviour is
    deterministic under test.
    """

    def __init__(self, budget, io_stats=None, clock=time.monotonic):
        self.budget = budget
        self._io = io_stats
        self._clock = clock
        self._started = clock()
        self._reads_base = io_stats.read("physical_reads") if io_stats else 0
        self.range_queries = 0
        self.candidates = 0
        self.phase = PHASE_FILTER

    def enter_refinement(self):
        """Mark the filter phase complete: exhaustion from here on is
        degradable (the filter superset is whole)."""
        self.phase = PHASE_REFINEMENT

    def physical_reads_spent(self):
        """Pages faulted in since this meter started (0 untracked)."""
        if self._io is None:
            return 0
        return self._io.read("physical_reads") - self._reads_base

    def unused(self):
        """Headroom left under each countable cap (``None`` = uncapped).

        The scatter-gather executor reads this when a shard finishes and
        :meth:`QueryBudget.grant`\\ s the remainder to the shards still
        queued -- the other half of :meth:`QueryBudget.split`'s exact
        conservation (``docs/SHARDING.md``).
        """
        def headroom(cap, spent):
            return None if cap is None else max(0, cap - spent)

        return {
            "range_queries": headroom(self.budget.max_range_queries,
                                      self.range_queries),
            "physical_reads": headroom(self.budget.max_physical_reads,
                                       self.physical_reads_spent()),
            "candidates": headroom(self.budget.max_candidates,
                                   self.candidates),
        }

    def _exceeded(self, limit, spent, cap):
        raise BudgetExceededError(
            DegradationReason(phase=self.phase, limit=limit,
                              spent=spent, budget=cap))

    def charge_range_query(self):
        """Count one trie range query, then run the passive checks."""
        self.range_queries += 1
        cap = self.budget.max_range_queries
        if cap is not None and self.range_queries > cap:
            self._exceeded("range_queries", self.range_queries, cap)
        self.checkpoint()

    def charge_candidate(self):
        """Count one refinement candidate, then run the passive checks."""
        self.candidates += 1
        cap = self.budget.max_candidates
        if cap is not None and self.candidates > cap:
            self._exceeded("candidates", self.candidates, cap)
        self.checkpoint()

    def checkpoint(self):
        """Passive cancellation point: deadline and physical-read caps.

        Cheap enough (a monotonic clock read and two comparisons) to
        sit inside the filter's per-node loop and refinement's embedding
        enumeration.
        """
        cap = self.budget.deadline_seconds
        if cap is not None:
            elapsed = self._clock() - self._started
            if elapsed > cap:
                self._exceeded("deadline", elapsed, cap)
        cap = self.budget.max_physical_reads
        if cap is not None and self._io is not None:
            reads = self._io.read("physical_reads") - self._reads_base
            if reads > cap:
                self._exceeded("physical_reads", reads, cap)
