"""The PRIX engine: index construction and twig query processing.

The pipeline follows the paper exactly (Figure 3):

1. every document is transformed into its (Regular or Extended) Prufer
   sequence and the LPS's are inserted into a virtual trie whose
   projection lives in B+-trees (:mod:`repro.prix.index`),
2. a twig query is transformed the same way and matched against the trie
   by subsequence matching with optional MaxGap pruning
   (:mod:`repro.prix.filtering`, Algorithm 1 + Theorem 4),
3. surviving subsequences pass through refinement by connectedness,
   by structure (gap and frequency consistency) and by leaf matching
   (:mod:`repro.prix.refinement`, Algorithm 2), with the wildcard
   modifications of Section 4.5,
4. accepted matches are deduplicated into twig embeddings
   (:mod:`repro.prix.matcher`).
"""

from repro.prix.explain import explain
from repro.prix.incremental import RebuildRequiredError
from repro.prix.index import IndexOptions, PrixIndex
from repro.prix.matcher import TwigMatch

__all__ = ["IndexOptions", "PrixIndex", "RebuildRequiredError",
           "TwigMatch", "explain"]
