"""Query plans: the per-arrangement, per-variant matching artifacts.

A :class:`QueryPlan` freezes everything the filter and refinement phases
need about one branch arrangement of one twig under one index variant:

- the (possibly dummy-extended) match tree and its Prufer sequence,
- per-node edge specs and leaf descriptors,
- the adjacent-pair relationships that make MaxGap pruning safe
  (Theorem 4 distinguishes sibling/child/ancestor cases; pruning on a
  chain edge whose top is not the node's own deletion would risk false
  dismissals, so such pairs are marked unprunable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prufer.sequence import regular_sequence
from repro.query.twig import STAR, EdgeSpec
from repro.xmlkit.tree import DUMMY_TAG, Document, XMLNode, sequence_label

#: Relationship kinds between adjacent LPS(Q) positions for MaxGap pruning.
REL_SIBLING = "sibling"     # parent(q_i) == parent(q_{i+1})
REL_CHILD = "child"         # q_{i+1} == parent(q_i), plain edge above it
REL_ANCESTOR = "ancestor"   # parent(q_i) proper ancestor of parent(q_{i+1})
REL_UNPRUNABLE = "none"     # pruning would risk false dismissals


@dataclass(frozen=True)
class LeafCheck:
    """Descriptor of one match-tree leaf for the leaf-refinement phase."""

    number: int                # postorder number in the match tree
    label: str | None          # sequence label; None for a star leaf
    spec: EdgeSpec             # edge spec to its parent
    is_star: bool


@dataclass
class QueryPlan:
    """Everything one arrangement/variant combination needs for matching."""

    qlps: tuple                 # LPS(Q): sequence labels, positions 1..n-1
    qnps: tuple                 # NPS(Q): parent numbers, positions 1..n-1
    n_nodes: int                # nodes in the match tree
    specs: dict                 # node number -> EdgeSpec (non-root)
    sources: dict               # node number -> originating TwigNode or None
    star_numbers: frozenset     # node numbers that are star leaves
    leaf_checks: tuple          # LeafCheck descriptors (match-tree leaves)
    internal_numbers: frozenset  # numbers appearing in qnps (non-leaves)
    rel_kinds: tuple            # len n-2: REL_* for adjacent LPS pairs
    absolute: bool
    extended: bool
    plain: bool = field(default=False)

    @property
    def root_number(self):
        """Postorder number of the match-tree root."""
        return self.n_nodes


def build_plan(collapsed, extended):
    """Build the :class:`QueryPlan` for one arrangement and variant.

    Args:
        collapsed: a :class:`~repro.query.twig.CollapsedTwig` arrangement.
        extended: True to plan against an EPIndex (dummy children are
            appended under every non-star leaf, Section 5.6).
    """
    match_root, spec_of, source_of = _build_match_tree(collapsed, extended)
    match_doc = Document(match_root)
    if match_doc.size < 2:
        raise ValueError(
            "a twig must have at least two sequenced nodes; add a child "
            "step or a predicate (single-tag queries carry no structure)")

    sequence = regular_sequence(match_doc)
    specs = {}
    sources = {}
    star_numbers = set()
    leaf_checks = []
    for node in match_doc.nodes_in_postorder():
        number = node.postorder
        sources[number] = source_of(node)
        if node.parent is not None:
            specs[number] = spec_of(node)
        is_star = (not node.is_value and node.tag == STAR)
        if is_star:
            star_numbers.add(number)
        if node.is_leaf and node.parent is not None:
            label = None if is_star else sequence_label(node)
            if node.tag == DUMMY_TAG:
                # The dummy's "leaf check" verifies its parent's label,
                # which already happened during subsequence matching.
                continue
            leaf_checks.append(LeafCheck(number=number, label=label,
                                         spec=spec_of(node), is_star=is_star))

    internal_numbers = frozenset(sequence.nps)
    rel_kinds = _relationship_kinds(match_doc, specs)
    return QueryPlan(
        qlps=sequence.lps,
        qnps=sequence.nps,
        n_nodes=match_doc.size,
        specs=specs,
        sources=sources,
        star_numbers=frozenset(star_numbers),
        leaf_checks=tuple(leaf_checks),
        internal_numbers=internal_numbers,
        rel_kinds=rel_kinds,
        absolute=collapsed.absolute,
        extended=extended,
        plain=all(spec.is_plain_child for spec in specs.values()),
    )


def _build_match_tree(collapsed, extended):
    """Copy the collapsed twig, optionally appending dummies.

    Returns ``(root, spec_of, source_of)`` where the two accessors are
    keyed by the *new* nodes' identities.
    """
    spec_by_id = {}
    source_by_id = {}

    def copy(node):
        clone = XMLNode(node.tag, is_value=node.is_value)
        source_by_id[id(clone)] = collapsed.source_of(node)
        if node.parent is not None:
            spec_by_id[id(clone)] = collapsed.spec_of(node)
        for child in node.children:
            child_clone = copy(child)
            child_clone.parent = clone
            clone.children.append(child_clone)
        if extended and not node.children and node.tag != STAR:
            dummy = XMLNode(DUMMY_TAG)
            dummy.parent = clone
            clone.children.append(dummy)
            spec_by_id[id(dummy)] = EdgeSpec()
            source_by_id[id(dummy)] = None
        return clone

    root = copy(collapsed.document.root)

    def spec_of(node):
        return spec_by_id.get(id(node), EdgeSpec())

    def source_of(node):
        return source_by_id.get(id(node))

    return root, spec_of, source_of


def _relationship_kinds(match_doc, specs):
    """Classify each adjacent LPS(Q) pair for Theorem 4 pruning.

    For positions ``i`` and ``i+1`` (query nodes ``q_i``, ``q_{i+1}``):

    - *sibling* (same parent): the two matched events are deletions of two
      children of the same data node, so their distance is bounded by
      MaxGap of the parent's label -- always safe.
    - *child* (``q_{i+1}`` is the parent of ``q_i``): safe only when the
      edge from that parent to *its* parent is a plain child edge (then
      the second event is the deletion of the parent's image itself and
      Theorem 4's ``MaxGap + 1`` bound applies).
    - *ancestor* (``parent(q_i)`` strictly above ``parent(q_{i+1})``):
      the second event falls inside a following child subtree of
      ``parent(q_i)``'s image -- always safe with the strict bound.
    """
    nodes = match_doc.nodes_in_postorder()
    kinds = []
    for i in range(len(nodes) - 2):
        q_i, q_next = nodes[i], nodes[i + 1]
        p_i, p_next = q_i.parent, q_next.parent
        if p_i is p_next:
            kinds.append(REL_SIBLING)
        elif q_next is p_i:
            spec = specs.get(q_next.postorder, EdgeSpec())
            kinds.append(REL_CHILD if spec.is_plain_child
                         else REL_UNPRUNABLE)
        else:
            kinds.append(REL_ANCESTOR)
    return tuple(kinds)
