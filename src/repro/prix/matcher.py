"""Twig match results and the per-query matching driver.

A :class:`TwigMatch` is one occurrence of the twig in one document: an
injective mapping from the query's named nodes to postorder numbers of the
document (in its original, non-extended numbering).  Matches found under
different branch arrangements (Section 5.7) are deduplicated here.

The driver runs the paper's two phases strictly in order -- *all*
filtering (Theorems 1-2: a complete superset, no false dismissals), then
refinement -- so that a :class:`~repro.prix.budget.QueryBudget` running
out mid-refinement can degrade gracefully: the untouched filter output
is returned as an approximate :class:`QueryResult` instead of a partial
exact answer (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prix.budget import BudgetExceededError, PHASE_REFINEMENT
from repro.prix.filtering import FilterStats, find_subsequences
from repro.prix.plan import build_plan
from repro.prix.refinement import refine
from repro.query.twig import arrangements, collapse, node_signatures


@dataclass(frozen=True)
class TwigMatch:
    """One twig occurrence.

    Attributes:
        doc_id: the matched document.
        images: tuple of ``(node_index, postorder_number)`` pairs, where
            ``node_index`` indexes the pattern's ``nodes()`` list; sorted
            by node index.
    """

    doc_id: int
    images: tuple
    canonical: frozenset = frozenset()

    def image_of(self, node_index):
        """Postorder number matched to pattern node ``node_index``."""
        for index, number in self.images:
            if index == node_index:
                return number
        raise KeyError(node_index)

    @property
    def root_image(self):
        """Postorder number matched to the twig root (node index 0)."""
        return self.image_of(0)


@dataclass
class QueryStats:
    """Work counters for one query execution."""

    variant: str = ""
    strategy: str = "trie"
    arrangements: int = 0
    filter: FilterStats = field(default_factory=FilterStats)
    candidate_documents: int = 0
    candidates_refined: int = 0
    candidates_accepted: int = 0
    matches: int = 0
    physical_reads: int = 0
    elapsed_seconds: float = 0.0
    approximate: bool = False
    degradation_reason: object = None  # DegradationReason when degraded


class QueryResult(list):
    """Query answer: a list of :class:`TwigMatch` plus a result contract.

    A plain ``list`` subclass so every existing caller (equality against
    literals, ``len``, iteration) is untouched.  Two extra attributes
    carry the degradation contract:

    - ``approximate`` -- False for an exact answer.  True means the
      query's budget ran out during refinement and the entries are the
      *filter phase's* candidate documents: one doc-level
      :class:`TwigMatch` per candidate document, with empty ``images``
      (no embedding was verified).  By Theorems 1-2 the filter has no
      false dismissals, so the documents listed are a guaranteed
      **superset** of the exact answer's documents -- never a silently
      wrong or incomplete one.
    - ``degradation_reason`` -- the structured
      :class:`~repro.prix.budget.DegradationReason` (None when exact).
    """

    def __init__(self, matches=(), approximate=False,
                 degradation_reason=None):
        super().__init__(matches)
        self.approximate = approximate
        self.degradation_reason = degradation_reason

    @property
    def doc_ids(self):
        """Sorted distinct document ids in the result."""
        return sorted({match.doc_id for match in self})


#: Document-at-a-time fallback thresholds: the rarest query label must
#: occur at no more than this many trie nodes, and pin down at most this
#: many candidate documents, for the fallback to engage.
RARE_LABEL_NODE_LIMIT = 128
RARE_LABEL_DOC_LIMIT = 256


def run_query(pattern, variant_index, view_loader, *, ordered=False,
              use_maxgap=True, strategy="auto", maxgap_granularity="label",
              stats=None, budget=None):
    """Match ``pattern`` against one variant index; return a QueryResult.

    Args:
        pattern: a :class:`~repro.query.twig.TwigPattern`.
        variant_index: the built per-variant index structures (an object
            with ``symbol_index``, ``docid_index``, ``root_range``,
            ``maxgap``, ``label_counts`` attributes).
        view_loader: callable ``doc_id -> DocView`` reading the stored
            NPS/LPS/leaf data.
        ordered: match only the twig's own branch order (Section 5.7's
            ordered semantics); the default tries every arrangement.
        use_maxgap: apply Theorem 4 pruning during filtering.
        strategy: ``"trie"`` forces Algorithm 1's trie traversal per
            arrangement; ``"document"`` forces the document-at-a-time
            fallback; ``"auto"`` (default) uses the fallback when the
            rarest query label pins down few candidate documents.  Any
            match's document must contain every LPS(Q) label, so the
            fallback is answer-equivalent.
        stats: optional :class:`QueryStats` to fill in.
        budget: optional :class:`~repro.prix.budget.BudgetMeter`.
            Exhaustion during filtering propagates as
            :class:`~repro.prix.budget.BudgetExceededError` (an
            incomplete filter pass may have false dismissals);
            exhaustion during refinement returns the filter's candidate
            documents as an ``approximate=True`` superset instead.
    """
    if stats is None:
        stats = QueryStats()
    node_index = {id(node): i for i, node in enumerate(pattern.nodes())}
    signatures = node_signatures(pattern)
    maxgap_table = variant_index.maxgap if use_maxgap else None
    extended = variant_index.extended

    twig_iter = ([collapse(pattern)] if ordered else arrangements(pattern))
    plans = [build_plan(arranged, extended=extended)
             for arranged in twig_iter]
    stats.arrangements = len(plans)

    candidate_docs = None
    if strategy in ("auto", "document") and plans:
        candidate_docs = _rare_label_candidates(
            plans[0], variant_index,
            force=(strategy == "document"), budget=budget)
    use_documents = candidate_docs is not None
    stats.strategy = "document" if use_documents else "trie"

    views = {}

    # ---- Phase 1: filtering (complete, no false dismissals) ----------
    # Candidates accumulate as (plan, doc_id, positions) in exactly the
    # order the interleaved pipeline used to refine them, so a budget-
    # free run produces byte-identical results.
    pending = []
    if use_documents:
        stats.candidate_documents = len(candidate_docs)
        for doc_id in sorted(candidate_docs):
            view = view_loader(doc_id)
            views[doc_id] = view
            lps_seq = _document_lps(view)
            for plan in plans:
                for positions in _subsequences_in_document(
                        lps_seq, plan, maxgap_table, stats.filter,
                        budget=budget):
                    pending.append((plan, doc_id, positions))
    else:
        for plan in plans:
            candidates, _ = find_subsequences(
                plan, variant_index.symbol_index,
                variant_index.docid_index, variant_index.root_range,
                maxgap_table=maxgap_table, stats=stats.filter,
                granularity=maxgap_granularity, budget=budget)
            for doc_ids, positions in candidates:
                for doc_id in doc_ids:
                    pending.append((plan, doc_id, positions))

    # ---- Phase 2: refinement (budget exhaustion degrades) ------------
    if budget is not None:
        budget.enter_refinement()
    seen = set()
    matches = []
    degraded = None

    def emit(plan, view, doc_id, positions):
        stats.candidates_refined += 1
        embeddings = refine(plan, view, positions, budget=budget)
        if embeddings:
            stats.candidates_accepted += 1
        for embedding in embeddings:
            images, canonical = _to_images(
                embedding, plan, view, node_index, signatures)
            key = (doc_id, canonical)
            if key not in seen:
                seen.add(key)
                matches.append(TwigMatch(doc_id=doc_id, images=images,
                                         canonical=canonical))

    for plan, doc_id, positions in pending:
        try:
            if budget is not None:
                budget.charge_candidate()
            view = views.get(doc_id)
            if view is None:
                view = view_loader(doc_id)
                views[doc_id] = view
            emit(plan, view, doc_id, positions)
        except BudgetExceededError as error:
            assert error.reason.phase == PHASE_REFINEMENT
            degraded = error.reason
            break

    if degraded is not None:
        superset = sorted({doc_id for _, doc_id, _ in pending})
        result = QueryResult(
            (TwigMatch(doc_id=doc_id, images=()) for doc_id in superset),
            approximate=True, degradation_reason=degraded)
        stats.approximate = True
        stats.degradation_reason = degraded
        stats.matches = len(result)
        return result, stats

    stats.matches = len(matches)
    return QueryResult(matches), stats


def _rare_label_candidates(plan, variant_index, force=False, budget=None):
    """Documents containing the rarest LPS(Q) label, or None.

    A document's LPS passes through a trie node exactly when the
    document's terminal lies inside that node's range, so the union of
    Docid-index range queries over the rare label's trie nodes gives
    every document that could possibly match any arrangement.
    """
    counts = variant_index.label_counts
    if not plan.qlps:
        return None
    rare_label = min(plan.qlps, key=lambda label: counts.get(label, 0))
    node_count = counts.get(rare_label, 0)
    if node_count == 0:
        return set()
    if not force and node_count > RARE_LABEL_NODE_LIMIT:
        return None
    if budget is not None:
        budget.charge_range_query()
    docs = set()
    for left, right, _ in variant_index.symbol_index.range_query_full(
            rare_label, variant_index.root_range[0],
            variant_index.root_range[1]):
        if budget is not None:
            budget.charge_range_query()
        docs.update(variant_index.docid_index.documents_in(left, right))
        if not force and len(docs) > RARE_LABEL_DOC_LIMIT:
            return None
    return docs


def _document_lps(view):
    """Reconstruct the document's LPS from its stored view."""
    return [view.labels[view.nps[i]] for i in range(1, view.n_nodes)]


def _subsequences_in_document(lps_seq, plan, maxgap_table, filter_stats,
                              budget=None):
    """Enumerate subsequence occurrences of LPS(Q) inside one document.

    Applies the same Theorem 4 gap bounds as the trie filter, so the two
    strategies inspect comparable candidate sets.
    """
    from repro.prix.filtering import _maxgap_admits
    from repro.prix.plan import REL_UNPRUNABLE

    positions_of = {}
    for position, label in enumerate(lps_seq, start=1):
        positions_of.setdefault(label, []).append(position)
    qlps = plan.qlps
    for label in qlps:
        if label not in positions_of:
            return

    chosen = [0] * len(qlps)

    def recurse(index, after):
        candidates = positions_of[qlps[index]]
        for position in candidates:
            if position <= after:
                continue
            filter_stats.nodes_visited += 1
            if budget is not None:
                budget.checkpoint()
            if maxgap_table is not None and index > 0:
                kind = plan.rel_kinds[index - 1]
                if kind != REL_UNPRUNABLE:
                    gap = position - chosen[index - 1]
                    if not _maxgap_admits(
                            kind, gap, maxgap_table.get(qlps[index - 1])):
                        filter_stats.pruned_by_maxgap += 1
                        continue
            chosen[index] = position
            if index + 1 == len(qlps):
                filter_stats.candidates += 1
                yield tuple(chosen)
            else:
                yield from recurse(index + 1, position)

    yield from recurse(0, 0)


def _to_images(embedding, plan, view, node_index, signatures):
    """Convert a match-tree embedding to pattern-node images.

    Returns ``(images, canonical)``: the per-pattern-node images, and the
    automorphism-invariant ``(signature_id, image)`` set used to
    deduplicate occurrences across branch arrangements.
    """
    items = []
    canonical = []
    for number, data_number in embedding.items():
        source = plan.sources.get(number)
        if source is None or source.is_star:
            continue
        original = view.original_number(data_number)
        items.append((node_index[id(source)], original))
        canonical.append((signatures[id(source)], original))
    return tuple(sorted(items)), frozenset(canonical)
