"""Filtering by subsequence matching (Section 5.3, Algorithm 1).

Subsequence occurrences of LPS(Q) are found by recursive range queries
over the Trie-Symbol index: matching the i-th query label inside the trie
range of the (i-1)-th match enumerates exactly the descendants carrying
that label.  When a full match is found, the Docid index yields every
document whose LPS terminates inside the final node's range.

The optional MaxGap pruning (Section 5.4, Theorem 4) discards descendants
whose level gap exceeds the upper bound for the adjacent query labels'
relationship; :mod:`repro.prix.plan` pre-classifies which pairs may be
pruned safely.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.prix.plan import (REL_ANCESTOR, REL_CHILD, REL_SIBLING,
                             REL_UNPRUNABLE)
from repro.storage.codec import encode_int, encode_key

_POS_VALUE = struct.Struct("<QII")  # (RightPos, Level, node MaxGap)
_DOC_VALUE = struct.Struct("<I")    # document id

#: Cap for the per-node MaxGap stored in index entries.
_GAP_CAP = 2 ** 32 - 1


@dataclass
class FilterStats:
    """Work counters for one filtering pass (drives the experiment plots)."""

    range_queries: int = 0
    nodes_visited: int = 0
    candidates: int = 0
    pruned_by_maxgap: int = 0

    def merge(self, other):
        """Accumulate another pass's counters into this one."""
        self.range_queries += other.range_queries
        self.nodes_visited += other.nodes_visited
        self.candidates += other.candidates
        self.pruned_by_maxgap += other.pruned_by_maxgap


class TrieSymbolIndex:
    """The Trie-Symbol index: one composite-key B+-tree.

    The paper builds one B+-tree per element tag; storing all tags in one
    tree keyed by ``(label, LeftPos)`` is I/O-equivalent (each range query
    touches the same leaf pages) without burning a page per distinct label,
    which matters once Extended-Prufer sequences put every distinct value
    string into the key space.
    """

    def __init__(self, bptree):
        self._tree = bptree

    @property
    def tree(self):
        return self._tree

    def range_query_full(self, label, lo, hi):
        """Yield ``(left, right, level)`` strictly inside ``(lo, hi)``."""
        for left, right, level, _ in self.range_query_gaps(label, lo, hi):
            yield left, right, level

    def range_query_gaps(self, label, lo, hi):
        """Yield ``(left, right, level, node_maxgap)`` inside ``(lo, hi)``.

        ``node_maxgap`` is the finer-grained MaxGap of Section 5.4's
        closing remark: the largest first-to-last child span of this
        occurrence's parent node, over the documents whose sequences pass
        through this trie node only.
        """
        lo_key = encode_key(label, lo + 1)
        hi_key = encode_key(label, hi)
        prefix_len = len(encode_key(label))
        for key, value in self._tree.range_scan(lo_key, hi_key):
            left = int.from_bytes(key[prefix_len + 1:prefix_len + 9], "big")
            right, level, gap = _POS_VALUE.unpack(value)
            yield left, right, level, gap

    @staticmethod
    def make_entry(label, left, right, level, node_maxgap=0):
        """Build the ``(key, value)`` pair for one trie node occurrence."""
        return (encode_key(label, left),
                _POS_VALUE.pack(right, level,
                                min(node_maxgap, _GAP_CAP)))


class DocidIndex:
    """Docid index: LeftPos of each LPS terminal node -> document ids."""

    def __init__(self, bptree):
        self._tree = bptree

    @property
    def tree(self):
        return self._tree

    def documents_in(self, lo, hi):
        """Document ids whose LPS terminates in the closed range [lo, hi]."""
        lo_key = encode_int(lo)
        hi_key = encode_int(hi)
        return [_DOC_VALUE.unpack(value)[0]
                for _, value in self._tree.range_scan(lo_key, hi_key,
                                                      inclusive_hi=True)]

    @staticmethod
    def make_entry(left, doc_id):
        return encode_int(left), _DOC_VALUE.pack(doc_id)


def _maxgap_admits(kind, gap, max_gap):
    """Apply Theorem 4: return False when the pair cannot be a match."""
    if kind == REL_SIBLING:
        return gap <= max_gap
    if kind == REL_CHILD:
        return gap <= max_gap + 1
    if kind == REL_ANCESTOR:
        return gap < max_gap
    return True


def find_subsequences(plan, symbol_index, docid_index, root_range,
                      maxgap_table=None, stats=None, granularity="label",
                      budget=None):
    """Run Algorithm 1: yield ``(doc_ids, positions)`` candidates.

    Args:
        plan: the :class:`~repro.prix.plan.QueryPlan` being matched.
        symbol_index: the :class:`TrieSymbolIndex`.
        docid_index: the :class:`DocidIndex`.
        root_range: the virtual-trie root's ``(left, right)`` range.
        maxgap_table: a :class:`~repro.prufer.maxgap.MaxGapTable`; pass
            None to disable the Theorem 4 pruning (ablation A1).
        granularity: ``"label"`` bounds gaps by the label's collection-
            wide MaxGap; ``"node"`` uses the matched trie node's own
            stored MaxGap (Section 5.4's finer-grained variant), which
            bounds over the documents passing through that node only and
            therefore prunes at least as hard.
        stats: optional :class:`FilterStats` to accumulate work counters.
        budget: optional :class:`~repro.prix.budget.BudgetMeter`; every
            range query and trie node visited is a cancellation point.
            Exhaustion here raises (it cannot degrade: an incomplete
            filter pass may have dismissed true matches).
    """
    if stats is None:
        stats = FilterStats()
    qlps = plan.qlps
    last = len(qlps) - 1
    results = []
    positions = [0] * len(qlps)
    per_node = granularity == "node"

    def recurse(i, lo, hi, prev_bound):
        stats.range_queries += 1
        if budget is not None:
            budget.charge_range_query()
        for left, right, level, node_gap in symbol_index.range_query_gaps(
                qlps[i], lo, hi):
            stats.nodes_visited += 1
            if budget is not None:
                budget.checkpoint()
            if maxgap_table is not None and i > 0:
                kind = plan.rel_kinds[i - 1]
                if kind != REL_UNPRUNABLE:
                    gap = level - positions[i - 1]
                    if not _maxgap_admits(kind, gap, prev_bound):
                        stats.pruned_by_maxgap += 1
                        continue
            positions[i] = level
            bound = (node_gap if per_node
                     else maxgap_table.get(qlps[i])
                     if maxgap_table is not None and i < last else 0)
            if i == last:
                docs = docid_index.documents_in(left, right)
                if docs:
                    stats.candidates += 1
                    results.append((tuple(docs), tuple(positions)))
            else:
                recurse(i + 1, left, right, bound)

    recurse(0, root_range[0], root_range[1], 0)
    return results, stats
