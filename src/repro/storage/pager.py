"""File-backed page manager.

A :class:`Pager` owns a flat file divided into fixed-size pages and counts
every physical read and write.  It can also run over an in-memory byte
buffer, which the test suite uses so thousands of storage tests stay fast
while exercising exactly the same code paths.

Concurrency: a single file object has a single seek position, so every
seek-then-read/write pair is made atomic under the pager's ``pager-io``
latch (``_io_latch``); without it, two threads reading different pages
interleave their seeks and each gets the other's bytes.  The latch is
re-entrant so guard read-repair (``repair_write`` called from inside a
latched ``read``) nests cleanly.  See ``docs/CONCURRENCY.md`` for the
latch order (``pager-io`` may take ``io-stats``, nothing else).
"""

from __future__ import annotations

import io
import os

from repro.storage.errors import PageRangeError
from repro.storage.latch import Latch
from repro.storage.stats import IOStats

#: Page size used throughout the reproduction; matches the paper's 8K pages.
DEFAULT_PAGE_SIZE = 8192


def fsync_file(fileobj):
    """Flush ``fileobj`` and force it to stable storage where supported.

    The single durability barrier used by the pager and the write-ahead
    log.  A file object may provide its own ``fsync()`` (the fault
    injector's :class:`~repro.storage.faults.FaultyFile` models the
    barrier there); otherwise ``os.fsync`` is attempted on the file
    descriptor and skipped for purely in-memory buffers.
    """
    fileobj.flush()
    own_fsync = getattr(fileobj, "fsync", None)
    if own_fsync is not None:
        own_fsync()
        return
    fileno = getattr(fileobj, "fileno", None)
    if fileno is not None:
        try:
            os.fsync(fileno())
        except (OSError, io.UnsupportedOperation):
            pass


class Pager:
    """Allocates, reads and writes fixed-size pages of a single file.

    An optional :class:`~repro.storage.guard.PageGuard` may be attached
    (``guard=`` or :meth:`attach_guard`); the pager then stamps every
    page it writes and verifies -- repairing or quarantining on mismatch
    -- every page it reads.  Guard bookkeeping is side-channel traffic:
    it never changes ``physical_reads``/``physical_writes``.
    """

    #: Machine-readable twin of the ``guarded-by`` comments below, for
    #: the runtime sanitizer's guarded-access assertions.
    _GUARDED = {"_num_pages": "_io_latch"}

    def __init__(self, fileobj, page_size=DEFAULT_PAGE_SIZE, stats=None,
                 guard=None):
        self._file = fileobj
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.guard = None
        self._io_latch = Latch("pager-io")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise ValueError(
                f"file size {size} is not a multiple of page size {page_size}")
        self._num_pages = size // page_size  # prixrace: guarded-by=_io_latch
        if guard is not None:
            self.attach_guard(guard)

    @classmethod
    def open(cls, path, page_size=DEFAULT_PAGE_SIZE, stats=None, guard=None):
        """Open (or create) a pager over the file at ``path``."""
        mode = "r+b" if os.path.exists(path) else "w+b"
        return cls(open(path, mode), page_size=page_size, stats=stats,
                   guard=guard)

    @classmethod
    def in_memory(cls, page_size=DEFAULT_PAGE_SIZE, stats=None, guard=None):
        """Create a pager over an in-memory buffer (tests, small corpora)."""
        return cls(io.BytesIO(), page_size=page_size, stats=stats,
                   guard=guard)

    def attach_guard(self, guard):
        """Attach a checksum guard; it adopts this pager's stats."""
        if guard.page_size != self.page_size:
            raise ValueError(
                f"guard page size {guard.page_size} does not match pager "
                f"page size {self.page_size}")
        guard.stats = self.stats
        self.guard = guard

    @property
    def num_pages(self):
        """Number of allocated pages."""
        with self._io_latch:
            return self._num_pages

    def allocate(self):
        """Extend the file by one zeroed page and return its id."""
        zero = b"\x00" * self.page_size
        with self._io_latch:
            page_id = self._num_pages
            self._file.seek(page_id * self.page_size)
            self._file.write(zero)
            self._num_pages += 1
            self.stats.add(allocations=1)
        if self.guard is not None:
            self.guard.stamp(page_id, zero)
        return page_id

    def _check_range(self, page_id):  # prixrace: requires=_io_latch
        """Reject out-of-range page ids with a typed error.

        Without this, a negative id would surface as a raw ``OSError``/
        ``ValueError`` from the seek, and a too-large id on a write
        would silently extend the file behind the allocator's back.
        Callers hold ``_io_latch`` (the bound is read under it).
        """
        if not isinstance(page_id, int) or isinstance(page_id, bool):
            raise PageRangeError(
                f"page id must be an int, got {type(page_id).__name__}")
        if not 0 <= page_id < self._num_pages:
            raise PageRangeError(
                f"page {page_id} is out of range [0, {self._num_pages})")

    def read(self, page_id):
        """Read one page from the backing file (counted as a physical read).

        With a guard attached the image is checksum-verified before it
        is handed out; a mismatching page is repaired from the newest
        committed WAL image where possible, and otherwise raises a typed
        :class:`~repro.storage.errors.PageCorruptionError` (quarantining
        the page).  Raises :class:`PageRangeError` when ``page_id`` is
        outside the allocated range.
        """
        with self._io_latch:
            self._check_range(page_id)
            if self.guard is not None:
                # Fail fast on a known-bad page, before spending (and
                # counting) a physical read on bytes already condemned.
                self.guard.check_quarantine(page_id)
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            self.stats.add(physical_reads=1)
            if self.guard is not None:
                # Verification (and possible read-repair through
                # ``repair_write``, which re-enters the latch) must see
                # the same bytes the seek+read pair fetched.
                data = self.guard.admit(page_id, data, self)
        return bytearray(data)

    def read_raw(self, page_id):
        """Read one page without verification or read accounting.

        Guard-internal escape hatch (scrub adoption stamps current
        content; there is nothing yet to verify against).  Everything
        else must go through :meth:`read`.
        """
        with self._io_latch:
            self._check_range(page_id)
            self._file.seek(page_id * self.page_size)
            return bytearray(self._file.read(self.page_size))

    def write(self, page_id, data):
        """Write one page back to the file (counted as a physical write).

        Raises :class:`PageRangeError` when ``page_id`` is outside the
        allocated range.
        """
        if len(data) != self.page_size:
            raise ValueError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}")
        with self._io_latch:
            self._check_range(page_id)
            self._file.seek(page_id * self.page_size)
            self._file.write(bytes(data))
            self.stats.add(physical_writes=1)
        if self.guard is not None:
            self.guard.stamp(page_id, bytes(data))

    def repair_write(self, page_id, data):
        """Reinstall a repaired page image (guard traffic, not page I/O).

        Used only by the guard's read-repair: the caller's logical read
        is the one being served, so the corrective rewrite is accounted
        in ``guard_repairs`` rather than ``physical_writes`` -- exactly
        as recovery's replay writes are not query I/O.
        """
        if len(data) != self.page_size:
            raise ValueError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}")
        with self._io_latch:
            self._check_range(page_id)
            self._file.seek(page_id * self.page_size)
            self._file.write(bytes(data))

    def sync(self):
        """Flush the underlying file to stable storage where supported."""
        with self._io_latch:
            fsync_file(self._file)
        if self.guard is not None:
            self.guard.sync()

    def close(self):
        """Close the backing file (and the guard sidecar, if attached)."""
        self._file.close()
        if self.guard is not None:
            self.guard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
