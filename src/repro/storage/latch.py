"""Named re-entrant latches for the storage layer (``prixrace``).

A :class:`Latch` is a thin wrapper around :class:`threading.RLock` that
adds the two things the concurrency tooling needs and a raw lock cannot
provide:

- a **role name** (``"buffer-pool"``, ``"pager-io"``, ``"io-stats"``),
  which is the unit the lock-order discipline is defined over -- two
  pools each have their own latch object, but both play the
  ``"buffer-pool"`` role and must sit at the same position in the
  acquisition order (``docs/CONCURRENCY.md``);
- **observability**: the runtime sanitizer installs process-wide hooks
  (:func:`install_hooks`) that see every acquire and release, which is
  how ``PRIX_SANITIZE=1`` maintains per-thread held-latch stacks and the
  dynamic acquisition-order graph.  ``threading.RLock`` is a C type and
  cannot be monkeypatched, so the hook points live here instead.

Without the sanitizer the wrapper is two attribute loads and a ``None``
check per operation; the storage layer uses it unconditionally.
"""

from __future__ import annotations

import threading

#: ``(on_acquire, on_release)`` installed by the runtime sanitizer, or
#: ``None``.  Read once per operation so a concurrent ``clear_hooks``
#: cannot tear the pair.
_hooks = None


def install_hooks(on_acquire, on_release):
    """Install process-wide latch observers (sanitizer use only).

    ``on_acquire(latch)`` runs *before* the lock is taken -- so an
    ordering violation can be raised without first deadlocking -- and
    ``on_release(latch)`` runs just before the lock is dropped, while
    the calling thread still owns it.
    """
    global _hooks
    _hooks = (on_acquire, on_release)


def clear_hooks():
    """Remove the latch observers."""
    global _hooks
    _hooks = None


class Latch:
    """A named, re-entrant mutual-exclusion latch.

    Usable as a context manager; ``with latch:`` is the preferred form
    (the ``release-on-all-paths`` lint rule flags bare :meth:`acquire`
    calls that can leak).
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name):
        self.name = name
        self._lock = threading.RLock()

    def acquire(self):
        """Take the latch, blocking until it is free (re-entrant)."""
        hooks = _hooks
        if hooks is not None:
            hooks[0](self)
        self._lock.acquire()

    def release(self):
        """Drop one level of ownership of the latch."""
        hooks = _hooks
        if hooks is not None:
            hooks[1](self)
        self._lock.release()

    def owned(self):
        """Whether the calling thread currently holds this latch."""
        return self._lock._is_owned()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        return f"<Latch {self.name!r}>"
