"""In-memory arena page substrate.

An :class:`ArenaPager` stores pages as plain process-memory byte strings
-- no file object, no seek emulation -- while exposing exactly the
:class:`~repro.storage.pager.Pager` surface (allocate/read/write/
repair_write/sync/close, the same typed errors, the same ``IOStats``
accounting and the same ``pager-io`` latch discipline).  The
:class:`~repro.storage.backend.InMemoryArenaBackend` runs the regular
buffer pool over it, so logical/physical read accounting -- the paper's
"Disk IO pages" columns -- is byte-identical to the file substrate by
construction: the LRU, pin, WAL and guard machinery above the substrate
is literally the same code.

Tests and benchmarks use it to exercise the full storage protocol
without touching a filesystem; it is also the reference substrate the
``prixarch`` conformance rule checks backends against.
"""

from __future__ import annotations

from repro.storage.errors import PageRangeError
from repro.storage.latch import Latch
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.stats import IOStats


class ArenaPager:
    """Pager-compatible page store over in-process memory.

    Concurrency mirrors :class:`~repro.storage.pager.Pager`: the page
    table and allocation bound are guarded by a re-entrant ``pager-io``
    latch, and guard verification runs inside the latched read so
    read-repair sees the same bytes the read fetched.
    """

    #: Machine-readable twin of the ``guarded-by`` comments below, for
    #: the runtime sanitizer's guarded-access assertions.
    _GUARDED = {"_pages": "_io_latch"}

    def __init__(self, page_size=DEFAULT_PAGE_SIZE, stats=None, guard=None):
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.guard = None
        self._io_latch = Latch("pager-io")
        self._pages = []  # page_id -> bytes  # prixrace: guarded-by=_io_latch
        if guard is not None:
            self.attach_guard(guard)

    def attach_guard(self, guard):
        """Attach a checksum guard; it adopts this pager's stats."""
        if guard.page_size != self.page_size:
            raise ValueError(
                f"guard page size {guard.page_size} does not match pager "
                f"page size {self.page_size}")
        guard.stats = self.stats
        self.guard = guard

    @property
    def num_pages(self):
        """Number of allocated pages."""
        with self._io_latch:
            return len(self._pages)

    def allocate(self):  # prixeffect: declares=alloc-page,latch-acquire,stats-mutate
        """Extend the arena by one zeroed page and return its id."""
        zero = b"\x00" * self.page_size
        with self._io_latch:
            page_id = len(self._pages)
            self._pages.append(zero)
            self.stats.add(allocations=1)
        if self.guard is not None:
            self.guard.stamp(page_id, zero)
        return page_id

    def _check_range(self, page_id):  # prixrace: requires=_io_latch
        """Reject out-of-range page ids with the pager's typed error."""
        if not isinstance(page_id, int) or isinstance(page_id, bool):
            raise PageRangeError(
                f"page id must be an int, got {type(page_id).__name__}")
        if not 0 <= page_id < len(self._pages):
            raise PageRangeError(
                f"page {page_id} is out of range [0, {len(self._pages)})")

    def read(self, page_id):  # prixeffect: declares=pager-io,latch-acquire,stats-mutate
        """Copy one page out of the arena (counted as a physical read).

        The arena substitutes for the platter, so a read that reaches it
        is by definition a buffer-pool miss and counts exactly like a
        file read -- that is what keeps the reproduced I/O columns
        identical across substrates.  Raises :class:`PageRangeError`
        outside the allocated range; a guard, when attached, verifies
        (and may repair or quarantine) exactly as on the file pager.
        """
        with self._io_latch:
            self._check_range(page_id)
            if self.guard is not None:
                self.guard.check_quarantine(page_id)
            data = self._pages[page_id]
            self.stats.add(physical_reads=1)
            if self.guard is not None:
                data = self.guard.admit(page_id, data, self)
        return bytearray(data)

    def read_raw(self, page_id):  # prixeffect: declares=pager-io,latch-acquire
        """Read one page without verification or read accounting
        (guard-internal escape hatch, as on the file pager)."""
        with self._io_latch:
            self._check_range(page_id)
            return bytearray(self._pages[page_id])

    def write(self, page_id, data):  # prixeffect: declares=pager-io,latch-acquire,stats-mutate
        """Store one page image (counted as a physical write)."""
        if len(data) != self.page_size:
            raise ValueError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}")
        with self._io_latch:
            self._check_range(page_id)
            self._pages[page_id] = bytes(data)
            self.stats.add(physical_writes=1)
        if self.guard is not None:
            self.guard.stamp(page_id, bytes(data))

    def repair_write(self, page_id, data):  # prixeffect: declares=pager-io,latch-acquire
        """Reinstall a repaired page image (guard traffic, not page I/O)."""
        if len(data) != self.page_size:
            raise ValueError(
                f"page payload must be exactly {self.page_size} bytes, "
                f"got {len(data)}")
        with self._io_latch:
            self._check_range(page_id)
            self._pages[page_id] = bytes(data)

    def sync(self):
        """Durability barrier: memory is as stable as this process gets."""
        if self.guard is not None:
            self.guard.sync()

    def close(self):
        """Release the arena (and the guard sidecar, if attached)."""
        with self._io_latch:
            self._pages = []
        if self.guard is not None:
            self.guard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
