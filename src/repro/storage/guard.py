"""Page-checksum corruption guard: detection, read-repair, quarantine,
scrub.

PR 3 made writes durable; this module makes reads *trustworthy*.  A
:class:`PageGuard` keeps one checksum per page -- crc32 over the payload
salted with the page id (:func:`repro.storage.codec.page_checksum`), so
both bit rot and misdirected-but-intact writes fail verification -- in a
small sidecar file next to the data file.  The pager stamps the sidecar
on every page write and verifies on every page read:

- **verify**: a read whose image matches its stamp is handed out and
  counted in ``IOStats.guard_verifications``.
- **read-repair**: on mismatch, the guard asks its repair source (the
  newest *committed* page image in the write-ahead log, wired up by
  :meth:`~repro.storage.buffer_pool.BufferPool.attach_wal`) for a clean
  copy, rewrites the page in place, restamps it, and returns the
  repaired image (``guard_repairs``).  Redo-only recovery already
  guarantees every committed image is in the log until a checkpoint, so
  this is the same trust base recovery itself stands on.
- **quarantine**: with no covering image the guard raises a typed
  :class:`~repro.storage.errors.PageCorruptionError` and remembers the
  page id; later reads of that page fail fast instead of re-verifying a
  known-bad image (``guard_quarantines``).  A full page rewrite through
  the pager heals the quarantine: the writer's image is the new truth.

Like the write-ahead log, the guard's sidecar traffic is deliberately
*not* page traffic: stamps and verifications never touch
``physical_reads``/``physical_writes``, so the paper's "Disk IO (pages)"
columns are identical with the guard on or off (``docs/ROBUSTNESS.md``).
This module is, next to ``pager.py`` and ``wal.py``, the third
sanctioned raw-I/O gateway in ``repro.storage``.
"""

from __future__ import annotations

import json
import os
import struct

from repro.storage.codec import page_checksum
from repro.storage.errors import PageCorruptionError, StorageError
from repro.storage.stats import IOStats

#: Sidecar header: magic, version, page size of the guarded file.
_HEADER = struct.Struct("<8sII")
_MAGIC = b"PRIXSUM1"
_VERSION = 1

#: Per-page slot: stamped flag, crc32.
_SLOT = struct.Struct("<BI")
_STAMPED = 1


class PageGuard:
    """Per-page checksum registry over a sidecar file object.

    File-object first, like the pager and the log, so tests and the
    fault injector can hand it an in-memory buffer; :meth:`open` wraps a
    path.  The guard is bound to exactly one :class:`Pager` (which sets
    ``stats`` and becomes the repair-write target).
    """

    def __init__(self, fileobj, page_size, stats=None):
        self._file = fileobj
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._stamps = {}        # page_id -> crc32 of the last stamped image
        self._quarantined = set()
        self._trusted = set()    # ids whose current pool-visible image the
        #                          guard has stamped, verified, or been
        #                          handed by an author (sanitizer evidence)
        self._repair_source = None
        self._load()

    @classmethod
    def open(cls, path, page_size, stats=None):
        """Open (or create) the checksum sidecar at ``path``.

        Sanctioned raw open: sidecar bytes are guard traffic, counted in
        ``guard_*`` fields, never in the page columns.
        """
        mode = "r+b" if os.path.exists(path) else "w+b"
        handle = open(path, mode)  # guard.py is a sanctioned raw-I/O gateway
        return cls(handle, page_size, stats=stats)

    @classmethod
    def in_memory(cls, page_size, stats=None):
        """A guard over an in-memory sidecar (tests, in-memory indexes)."""
        import io
        return cls(io.BytesIO(), page_size, stats=stats)

    # ------------------------------------------------------------------
    # Sidecar persistence
    # ------------------------------------------------------------------

    def _load(self):
        """Adopt an existing sidecar or initialize a fresh one."""
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size == 0:
            self._write_header()
            return
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise StorageError("checksum sidecar header is truncated")
        magic, version, stored_page_size = _HEADER.unpack(raw)
        if magic != _MAGIC or version != _VERSION:
            raise StorageError(
                "file is not a PRIX checksum sidecar; refusing to "
                "overwrite it")
        if stored_page_size != self.page_size:
            raise StorageError(
                f"checksum sidecar was written for page size "
                f"{stored_page_size}, not {self.page_size}")
        body = self._file.read()
        for page_id in range(len(body) // _SLOT.size):
            flag, crc = _SLOT.unpack_from(body, page_id * _SLOT.size)
            if flag == _STAMPED:
                self._stamps[page_id] = crc

    def _write_header(self):
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, self.page_size))

    def _write_slot(self, page_id, flag, crc):
        offset = _HEADER.size + page_id * _SLOT.size
        self._file.seek(0, os.SEEK_END)
        end = self._file.tell()
        if end < offset:
            # Extend with zeroed (unstamped) slots up to the target.
            self._file.seek(end)
            self._file.write(b"\x00" * (offset - end))
        self._file.seek(offset)
        self._file.write(_SLOT.pack(flag, crc))

    # ------------------------------------------------------------------
    # Stamping and verification
    # ------------------------------------------------------------------

    @property
    def stamped_pages(self):
        """Page ids carrying a checksum stamp."""
        return frozenset(self._stamps)

    @property
    def quarantined_pages(self):
        """Page ids currently quarantined as unrepairable."""
        return frozenset(self._quarantined)

    def is_stamped(self, page_id):
        """Whether ``page_id`` carries a checksum stamp."""
        return page_id in self._stamps

    def is_trusted(self, page_id):
        """Whether the page's current image went through the guard.

        True after a stamp (write path), a successful verification or
        repair (read path), or an explicit :meth:`trust` (an author
        handing the pool a fresh full image).  The runtime sanitizer
        asserts this on every buffer-pool ``get`` when a guard is
        attached: a frame that is *not* trusted reached the matcher
        around the checksum machinery.
        """
        return page_id in self._trusted

    def trust(self, page_id):
        """Mark the page's current in-pool image as author-fresh.

        Called by :meth:`BufferPool.put <repro.storage.buffer_pool.
        BufferPool.put>`: a caller replacing the whole image *is* the
        authority on its content, and the stamp follows at write-back.
        """
        self._trusted.add(page_id)

    def stamp(self, page_id, payload):
        """Record the checksum of ``payload`` as page ``page_id``'s truth.

        A stamp heals a quarantine: the writer's full image supersedes
        whatever corrupt bytes the file held.
        """
        crc = page_checksum(page_id, bytes(payload))
        self._stamps[page_id] = crc
        self._quarantined.discard(page_id)
        self._trusted.add(page_id)
        self._write_slot(page_id, _STAMPED, crc)
        return crc

    def attach_repair_source(self, source):
        """Register ``source(page_id) -> image | None`` for read-repair.

        The buffer pool wires this to the write-ahead log's newest
        committed image when a WAL is attached to a guarded pager.
        """
        self._repair_source = source

    def check_quarantine(self, page_id):
        """Fail fast on a quarantined page (before any physical read)."""
        if page_id in self._quarantined:
            raise PageCorruptionError(page_id, quarantined=True)

    def admit(self, page_id, payload, pager):
        """Verify a freshly read page image; repair or raise on mismatch.

        Returns the image to hand to the caller: the original bytes when
        verification passes (or the page predates the guard and has no
        stamp), or the repaired image after a successful read-repair.
        Raises :class:`PageCorruptionError` and quarantines the page
        when no committed WAL image covers it.
        """
        stamp = self._stamps.get(page_id)
        if stamp is None:
            # Pre-guard page: nothing to verify against.  It becomes
            # covered at its next write-back (or via a scrub --stamp).
            self._trusted.add(page_id)
            return payload
        self.stats.add(guard_verifications=1)
        actual = page_checksum(page_id, bytes(payload))
        if actual == stamp:
            self._trusted.add(page_id)
            return payload
        repaired = self._attempt_repair(page_id, pager)
        if repaired is not None:
            return repaired
        self._quarantined.add(page_id)
        self._trusted.discard(page_id)
        self.stats.add(guard_quarantines=1)
        raise PageCorruptionError(
            page_id,
            f"page {page_id} failed checksum verification (stored "
            f"{stamp:#010x}, computed {actual:#010x}) and no committed "
            "WAL image covers it; page quarantined")

    def _attempt_repair(self, page_id, pager):
        """Pull the newest committed image for ``page_id`` and reinstall
        it, or return None when the repair source has no covering image."""
        if self._repair_source is None:
            return None
        image = self._repair_source(page_id)
        if image is None or len(image) != self.page_size:
            return None
        image = bytes(image)
        pager.repair_write(page_id, image)
        self.stamp(page_id, image)
        self.stats.add(guard_repairs=1)
        return bytearray(image)

    def stamp_all(self, pager):
        """Stamp every currently unstamped page from the file's content.

        Adoption path for an index built before the guard existed: the
        current bytes are declared the truth (there is nothing better to
        compare against), and every later read is verified against them.
        Returns the number of pages stamped.
        """
        stamped = 0
        for page_id in range(pager.num_pages):
            if page_id not in self._stamps:
                self.stamp(page_id, pager.read_raw(page_id))
                stamped += 1
        return stamped

    def sync(self):
        """Flush the sidecar to stable storage where supported."""
        from repro.storage.pager import fsync_file
        fsync_file(self._file)

    def close(self):
        """Close the sidecar file."""
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def wal_repair_source(wal):
    """``page_id -> newest committed image`` lookup over a live WAL.

    The committed-image map is rebuilt whenever the log has grown since
    the last lookup, so images committed after the guard was attached
    are repairable too.  Repair is a corruption-only path; the rescan
    cost never shows up in healthy operation.
    """
    cache = {"lsn": None, "images": {}}

    def lookup(page_id):
        if cache["lsn"] != wal.next_lsn:
            from repro.storage.recovery import scan_committed
            cache["images"], _ = scan_committed(wal)
            cache["lsn"] = wal.next_lsn
        return cache["images"].get(page_id)

    return lookup


class ScrubReport:
    """Health summary of one scrub pass over a page file."""

    __slots__ = ("target", "pages_total", "pages_ok", "pages_unstamped",
                 "pages_repaired", "pages_corrupt", "catalog_ok",
                 "catalog_error")

    def __init__(self, target="index"):
        self.target = target
        self.pages_total = 0
        self.pages_ok = 0
        self.pages_unstamped = 0
        self.pages_repaired = 0
        self.pages_corrupt = []    # quarantined page ids
        self.catalog_ok = None     # None: not checked
        self.catalog_error = None

    @property
    def healthy(self):
        """True when no page stayed corrupt and the catalog (if checked)
        parsed."""
        return not self.pages_corrupt and self.catalog_ok is not False

    def as_dict(self):
        """JSON-ready summary."""
        return {
            "target": self.target,
            "pages_total": self.pages_total,
            "pages_ok": self.pages_ok,
            "pages_unstamped": self.pages_unstamped,
            "pages_repaired": self.pages_repaired,
            "pages_corrupt": list(self.pages_corrupt),
            "catalog_ok": self.catalog_ok,
            "catalog_error": self.catalog_error,
            "healthy": self.healthy,
        }

    def to_json(self, indent=None):
        """Canonical JSON serialization of :meth:`as_dict`.

        The *single* serializer for scrub health: both ``prix scrub
        --json`` and the serving subsystem's ``/healthz`` endpoint emit
        exactly this string (``docs/SERVING.md``), so the two surfaces
        cannot drift apart.  Keys are sorted for byte-stable output.
        """
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def render(self):
        """Human-readable per-file health summary (``prix scrub``)."""
        lines = [f"scrub {self.target}: "
                 f"{self.pages_total} page(s) swept"]
        lines.append(f"  verified ok : {self.pages_ok}")
        lines.append(f"  unstamped   : {self.pages_unstamped}")
        lines.append(f"  repaired    : {self.pages_repaired}")
        corrupt = (", ".join(str(p) for p in self.pages_corrupt)
                   if self.pages_corrupt else "none")
        lines.append(f"  corrupt     : {len(self.pages_corrupt)} "
                     f"({corrupt})")
        if self.catalog_ok is not None:
            state = "ok" if self.catalog_ok else \
                f"UNREADABLE ({self.catalog_error})"
            lines.append(f"  catalog     : {state}")
        lines.append(f"  health      : "
                     f"{'OK' if self.healthy else 'CORRUPT'}")
        return "\n".join(lines)


def scrub(pager, report=None):
    """Sweep every page of a guarded pager, verifying (and where possible
    repairing) each; returns a :class:`ScrubReport`.

    Quarantined and unrepairable pages are recorded, not raised: the
    scrub's job is a complete health picture, and its caller decides
    whether a corrupt page is fatal.  Works on an unguarded pager too,
    reporting every page as unstamped.
    """
    if report is None:
        report = ScrubReport()
    guard = pager.guard
    report.pages_total = pager.num_pages
    for page_id in range(pager.num_pages):
        if guard is None or not guard.is_stamped(page_id):
            report.pages_unstamped += 1
            continue
        repairs_before = guard.stats.guard_repairs
        try:
            pager.read(page_id)
        except PageCorruptionError:
            report.pages_corrupt.append(page_id)
            continue
        if guard.stats.guard_repairs > repairs_before:
            report.pages_repaired += 1
        else:
            report.pages_ok += 1
    return report


def scrub_path(path, wal_path=None, guard_path=None, stamp_missing=False):
    """Scrub the index file at ``path``: sweep all pages plus the catalog.

    The ``prix scrub`` entry point.  When a write-ahead log exists at
    ``wal_path`` (default ``path + ".wal"``), its committed images serve
    as the read-repair source, exactly as during live operation.  When
    ``stamp_missing`` is true, unstamped pages are adopted (stamped from
    current content) after the sweep.

    Returns a :class:`ScrubReport` whose catalog fields record whether
    the superblock and metadata record still parse.
    """
    # Deliberate layering inversion, lazily bound: the scrub report
    # validates the PRIX superblock/catalog, which only the logical
    # layer can parse.  Kept function-local so importing the storage
    # package never drags the index code in.
    from repro.prix import index as prix_index  # prixlint: disable=layering
    from repro.storage.buffer_pool import BufferPool
    from repro.storage.pager import Pager
    from repro.storage.records import RecordStore
    from repro.storage.wal import WriteAheadLog

    if guard_path is None:
        guard_path = path + ".sum"
    if wal_path is None:
        wal_path = path + ".wal"
    report = ScrubReport(target=path)

    # Page size comes from the superblock; an unreadable superblock is
    # itself a catalog failure worth reporting, so fall back to the
    # sidecar header (and finally the default) to still sweep pages.
    page_size = None
    superblock_error = None
    try:
        with open(path, "rb") as handle:  # prixlint: disable=no-raw-io
            header = handle.read(prix_index._SUPERBLOCK.size)
        _, _, _, page_size = prix_index.PrixIndex._parse_superblock(
            header, path)
    except FileNotFoundError:
        raise
    except ValueError as error:
        superblock_error = str(error)
        page_size = _sidecar_page_size(guard_path)

    guard = PageGuard.open(guard_path, page_size)
    pager = Pager.open(path, page_size=page_size, guard=guard)
    wal = None
    try:
        if os.path.exists(wal_path):
            wal = WriteAheadLog.open(wal_path, page_size,
                                     stats=pager.stats)
            guard.attach_repair_source(wal_repair_source(wal))
        scrub(pager, report)
        if stamp_missing:
            adopted = guard.stamp_all(pager)
            report.pages_unstamped -= adopted
            report.pages_ok += adopted
        if superblock_error is not None:
            report.catalog_ok = False
            report.catalog_error = superblock_error
        else:
            report.catalog_ok, report.catalog_error = _check_catalog(
                pager, BufferPool, RecordStore, prix_index, path)
    finally:
        if wal is not None:
            wal.close()
        pager.close()
    return report


def _sidecar_page_size(guard_path):
    """Page size recorded in an existing sidecar, or the engine default."""
    from repro.storage.pager import DEFAULT_PAGE_SIZE
    if os.path.exists(guard_path):
        with open(guard_path, "rb") as handle:  # prixlint: disable=no-raw-io
            raw = handle.read(_HEADER.size)
        if len(raw) == _HEADER.size:
            magic, version, page_size = _HEADER.unpack(raw)
            if magic == _MAGIC and version == _VERSION and page_size > 0:
                return page_size
    return DEFAULT_PAGE_SIZE

def _check_catalog(pager, pool_cls, records_cls, index_mod, path):
    """Parse the superblock and metadata record; ``(ok, error)``."""
    import json
    try:
        pool = pool_cls(pager, capacity=8)
        frame = pool.get(0)
        page, offset, length, _ = index_mod.PrixIndex._parse_superblock(
            bytes(frame[:index_mod._SUPERBLOCK.size]), path)
        records = records_cls(pool)
        meta = json.loads(records.read((page, offset, length)))
        if "variants" not in meta or "doc_ids" not in meta:
            return False, "metadata record is missing required keys"
        return True, None
    except PageCorruptionError as error:
        return False, str(error)
    except (ValueError, KeyError, struct.error) as error:
        return False, f"catalog unreadable: {error}"


class TreeScrubReport:
    """Aggregate health of every index file found under one directory.

    One row per index swept (each a full :class:`ScrubReport`), plus
    rolled-up totals whose keys mirror the single-file report --
    ``pages_corrupt`` entries are ``"<relative file>:<page id>"`` so a
    corrupt page stays attributable to its shard.  ``catalog_ok`` is
    the conjunction over all indexes (and, for shard directories, the
    manifest check the shard layer folds in).
    """

    __slots__ = ("target", "reports", "manifest_ok", "manifest_error")

    def __init__(self, target, reports=(), manifest_ok=None,
                 manifest_error=None):
        self.target = target
        self.reports = list(reports)   # [(relative_path, ScrubReport)]
        self.manifest_ok = manifest_ok     # None: no manifest expected
        self.manifest_error = manifest_error

    @property
    def healthy(self):
        return (self.manifest_ok is not False
                and all(report.healthy for _, report in self.reports))

    def as_dict(self):
        """JSON-ready summary; same vocabulary as :class:`ScrubReport`."""
        indexes = {rel: report.as_dict() for rel, report in self.reports}
        catalog_ok = all(report.catalog_ok is not False
                         for _, report in self.reports)
        if self.manifest_ok is not None:
            catalog_ok = catalog_ok and self.manifest_ok
        return {
            "target": self.target,
            "indexes": indexes,
            "index_count": len(self.reports),
            "pages_total": sum(r.pages_total for _, r in self.reports),
            "pages_ok": sum(r.pages_ok for _, r in self.reports),
            "pages_unstamped": sum(r.pages_unstamped
                                   for _, r in self.reports),
            "pages_repaired": sum(r.pages_repaired
                                  for _, r in self.reports),
            "pages_corrupt": [f"{rel}:{page_id}"
                              for rel, report in self.reports
                              for page_id in report.pages_corrupt],
            "catalog_ok": catalog_ok,
            "catalog_error": self.manifest_error,
            "healthy": self.healthy,
        }

    def to_json(self, indent=None):
        """Canonical JSON twin of :meth:`ScrubReport.to_json`."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    def render(self):
        """Human-readable multi-index summary (``prix scrub DIR``)."""
        lines = [f"scrub {self.target}: "
                 f"{len(self.reports)} index file(s)"]
        if self.manifest_ok is not None:
            state = ("ok" if self.manifest_ok
                     else f"CORRUPT ({self.manifest_error})")
            lines.append(f"  shard manifest: {state}")
        for rel, report in self.reports:
            state = "OK" if report.healthy else "CORRUPT"
            lines.append(f"  {rel}: {state} "
                         f"({report.pages_total} page(s), "
                         f"{len(report.pages_corrupt)} corrupt)")
        lines.append(f"  health      : "
                     f"{'OK' if self.healthy else 'CORRUPT'}")
        return "\n".join(lines)


#: File suffix that marks a scrubabble index inside a directory tree.
INDEX_SUFFIX = ".idx"


def scrub_tree(directory, stamp_missing=False):
    """Recursively scrub every ``*.idx`` file under ``directory``.

    The directory form of :func:`scrub_path` (``prix scrub DIR``):
    walks the tree in sorted order, sweeps each index file it finds
    (sidecars and manifests are skipped -- they are inputs to their
    index's sweep, not indexes), and aggregates the per-file
    :class:`ScrubReport`\\ s into one :class:`TreeScrubReport`.  A
    file that cannot be swept at all (missing, truncated below a
    superblock) is recorded as an unhealthy report rather than raised,
    matching :func:`scrub`'s report-not-raise contract.

    Shard-manifest verification is layered on top by
    ``repro.shard.health.scrub_shards`` -- the manifest format belongs
    to the shard subsystem, not the storage substrate.
    """
    report = TreeScrubReport(target=directory)
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        for name in sorted(files):
            if not name.endswith(INDEX_SUFFIX):
                continue
            path = os.path.join(root, name)
            relative = os.path.relpath(path, directory)
            try:
                swept = scrub_path(path, stamp_missing=stamp_missing)
            except (OSError, ValueError) as error:
                swept = ScrubReport(target=path)
                swept.catalog_ok = False
                swept.catalog_error = f"unscrubbable: {error}"
            report.reports.append((relative, swept))
    return report
