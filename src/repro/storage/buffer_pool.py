"""LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

The paper fixes the buffer pool at 2000 pages of 8 KiB and enables direct
I/O so that only genuine buffer misses hit the disk.  This class mirrors
that: a page request that hits the pool is a logical read; a miss goes to
the pager and is counted as a physical read.  Benchmarks call
:meth:`flush_and_clear` between queries to measure cold-cache behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager

from repro.storage.errors import (BufferPoolExhaustedError, PageSizeError,
                                  PinProtocolError, WalProtocolError)

#: Pool capacity used by the experiments; matches the paper's 2000 pages.
DEFAULT_POOL_PAGES = 2000


class BufferPool:
    """Caches page images and tracks dirty state with LRU eviction."""

    def __init__(self, pager, capacity=DEFAULT_POOL_PAGES):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._pager = pager
        self._capacity = capacity
        self._frames = OrderedDict()  # page_id -> bytearray
        self._dirty = set()
        self._decoded = {}  # page_id -> decoded object (frame-resident only)
        self._pins = {}  # page_id -> pin count (> 0; absent means unpinned)
        self._wal = None
        self._page_lsn = {}          # page_id -> LSN of last logged image
        self._wal_uncommitted = set()  # dirtied since the last commit
        self.stats = pager.stats

    @property
    def capacity(self):
        """Maximum resident frames."""
        return self._capacity

    # ------------------------------------------------------------------
    # Write-ahead logging
    # ------------------------------------------------------------------

    @property
    def wal(self):
        """The attached write-ahead log, or None (non-durable pool)."""
        return self._wal

    def attach_wal(self, wal):
        """Make every mutation flow through ``wal`` before the data file.

        From this point on the pool enforces two rules:

        - **no steal**: a page dirtied since the last :meth:`commit` is
          never written to the data file -- eviction skips it, and a
          pool full of such pages raises
          :class:`~repro.storage.errors.BufferPoolExhaustedError`
          (redo-only recovery cannot undo a stolen write);
        - **WAL before data**: a committed dirty page reaches the data
          file only after the log record holding its image is fsynced
          (:meth:`_write_back` forces the log flush when needed).
        """
        if self._wal is not None:
            raise WalProtocolError("a WAL is already attached")
        if self._dirty:
            raise WalProtocolError(
                "cannot attach a WAL to a pool with unlogged dirty "
                f"pages {sorted(self._dirty)}; flush first")
        self._wal = wal
        guard = self._pager.guard
        if guard is not None:
            # The log's committed images become the guard's read-repair
            # source: the same trust base recovery replays from.
            from repro.storage.guard import wal_repair_source
            guard.attach_repair_source(wal_repair_source(wal))

    def commit(self):
        """Seal the current batch: log every uncommitted page image,
        append a COMMIT record and (policy permitting) fsync the log.

        Returns the commit LSN, or None when no WAL is attached.  Pages
        stay dirty in the pool -- the data-file write is deferred to
        eviction, :meth:`flush` or a checkpoint -- but they become
        evictable because recovery can now redo them.
        """
        if self._wal is None:
            return None
        logged = 0
        for page_id in sorted(self._wal_uncommitted):
            # Uncommitted pages are exempt from eviction, so the frame
            # is necessarily still resident.
            self._page_lsn[page_id] = self._wal.log_page(
                page_id, self._frames[page_id])
            logged += 1
        self._wal_uncommitted.clear()
        return self._wal.commit(page_count=logged)

    def checkpoint(self):
        """Fuzzy checkpoint: make the data file self-sufficient, then
        truncate the log.

        Commits and flushes every dirty page, fsyncs the data file, and
        starts a fresh log generation.  After it returns, recovery has
        nothing to redo -- until the next mutation starts a new batch,
        which may happen immediately (nothing here blocks appends).
        """
        if self._wal is None:
            raise WalProtocolError("checkpoint needs an attached WAL")
        self.flush()
        self._pager.sync()
        self._wal.checkpoint(self._pager.num_pages)
        self._page_lsn.clear()

    def _note_dirty(self, page_id):
        """WAL bookkeeping for a freshly dirtied page."""
        if self._wal is not None:
            self._wal_uncommitted.add(page_id)

    def _write_back(self, page_id, frame):
        """Write one dirty frame to the data file, WAL permitting."""
        if self._wal is not None:
            if page_id in self._wal_uncommitted:
                raise WalProtocolError(
                    f"page {page_id} is dirty but uncommitted; writing "
                    "it to the data file would steal an uncommitted "
                    "change that redo-only recovery cannot undo")
            self._wal.require_durable(self._page_lsn.get(page_id, 0))
        self._pager.write(page_id, frame)

    @property
    def cached_pages(self):
        """Currently resident frames."""
        return len(self._frames)

    def get(self, page_id):
        """Return the page image, loading it through the pager on a miss."""
        self.stats.logical_reads += 1
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            return frame
        frame = self._pager.read(page_id)
        self._admit(page_id, frame)
        return frame

    def new_page(self):
        """Allocate a fresh page and return ``(page_id, frame)``."""
        page_id = self._pager.allocate()
        frame = bytearray(self._pager.page_size)
        self._admit(page_id, frame)
        self._dirty.add(page_id)
        self._note_dirty(page_id)
        return page_id, frame

    def get_decoded(self, page_id, decoder):
        """Return ``decoder(page_id, frame)`` memoized per frame residency.

        The decoded object lives exactly as long as the page is resident
        and clean: writes and evictions drop it.  This mirrors real
        engines keeping deserialized nodes pinned to buffer frames -- the
        physical-read accounting is unaffected because the underlying
        frame is still fetched through :meth:`get`.
        """
        cached = self._decoded.get(page_id)
        if cached is not None and page_id in self._frames:
            self.stats.logical_reads += 1
            self._frames.move_to_end(page_id)
            return cached
        frame = self.get(page_id)
        decoded = decoder(page_id, frame)
        self._decoded[page_id] = decoded
        return decoded

    def pin(self, page_id):
        """Load ``page_id`` (a logical read), pin its frame, return it.

        A pinned frame is exempt from eviction, so the returned
        ``bytearray`` stays the live in-pool image until the matching
        :meth:`unpin` -- mutations made to it cannot be silently written
        back and then orphaned by an eviction mid-use.  Pins nest; every
        ``pin`` needs exactly one ``unpin`` on every code path (prefer
        :meth:`pinned`, which guarantees that).
        """
        frame = self.get(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return frame

    def unpin(self, page_id):
        """Release one pin on ``page_id``.

        Raises :class:`PinProtocolError` when the frame is not pinned:
        silently letting the count go negative would make a later
        legitimate pin a no-op and reintroduce the eviction hazard the
        pin was supposed to prevent.
        """
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise PinProtocolError(
                f"unpin of page {page_id} which has pin count 0")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    @contextmanager
    def pinned(self, page_id):
        """Context manager: pin ``page_id`` for the block, then unpin."""
        frame = self.pin(page_id)
        try:
            yield frame
        finally:
            self.unpin(page_id)

    def pin_count(self, page_id):
        """Current pin count of ``page_id`` (0 when unpinned)."""
        return self._pins.get(page_id, 0)

    @property
    def pinned_pages(self):
        """Page ids currently holding at least one pin."""
        return frozenset(self._pins)

    def put(self, page_id, data):
        """Replace the cached image of ``page_id`` and mark it dirty.

        ``data`` must be a full page image: ``frame[:] = data`` with a
        short payload would silently shrink the frame, and the truncated
        image is what an eviction later writes back.
        """
        if len(data) != self._pager.page_size:
            raise PageSizeError(
                f"page image must be exactly {self._pager.page_size} "
                f"bytes, got {len(data)}")
        frame = self._frames.get(page_id)
        if frame is None:
            frame = bytearray(self._pager.page_size)
            self._admit(page_id, frame)
        else:
            self._frames.move_to_end(page_id)
        frame[:] = data
        self._dirty.add(page_id)
        self._note_dirty(page_id)
        self._decoded.pop(page_id, None)
        if self._pager.guard is not None:
            # The caller authored this full image, so it is the page's
            # new truth; the checksum stamp follows at write-back.
            self._pager.guard.trust(page_id)

    def mark_dirty(self, page_id):
        """Flag an in-place mutation of the cached page image."""
        if page_id not in self._frames:
            raise KeyError(f"page {page_id} is not resident")
        self._dirty.add(page_id)
        self._note_dirty(page_id)
        self._decoded.pop(page_id, None)

    def _evictable(self, page_id):
        """Whether a frame may leave the pool right now.

        Pinned frames never move; with a WAL attached, dirty frames
        whose current image is not yet logged (uncommitted) may not be
        written back either (no steal).
        """
        if page_id in self._pins:
            return False
        return page_id not in self._wal_uncommitted

    def _admit(self, page_id, frame):
        while len(self._frames) >= self._capacity:
            victim_id = next((candidate for candidate in self._frames
                              if self._evictable(candidate)), None)
            if victim_id is None:
                if self._wal is not None and self._wal_uncommitted:
                    # Memory pressure forces a batch boundary: under
                    # no-steal an uncommitted page cannot leave the
                    # pool, so a batch whose working set outgrows the
                    # pool is committed early.  Safe for builds (the
                    # superblock is only written in the final batch, so
                    # a crash between forced commits recovers to a file
                    # open() rejects as incomplete); callers that need
                    # a batch to be all-or-nothing must size the pool
                    # to hold it.
                    self.commit()
                    continue
                raise BufferPoolExhaustedError(
                    f"all {self._capacity} frames are pinned; cannot "
                    f"admit page {page_id} (unpin, or grow the pool)")
            victim = self._frames.pop(victim_id)
            if victim_id in self._dirty:
                self._write_back(victim_id, victim)
                self._dirty.discard(victim_id)
            self._decoded.pop(victim_id, None)
            self.stats.evictions += 1
        self._frames[page_id] = frame

    def flush(self):
        """Write every dirty page back without evicting anything.

        With a WAL attached this is a durability point: the current
        batch commits first (so every dirty image is logged), the log is
        fsynced where needed, and only then do pages reach the data
        file -- WAL-before-data, enforced per page in
        :meth:`_write_back`.
        """
        if self._wal is not None and self._wal_uncommitted:
            self.commit()
        for page_id in sorted(self._dirty):
            self._write_back(page_id, self._frames[page_id])
        self._dirty.clear()

    def flush_and_clear(self):
        """Write back all dirty pages and empty the pool (cold cache).

        Refuses to run while any frame is pinned: clearing would orphan
        the pinned ``bytearray`` from the pool, so later mutations through
        it would never reach disk.
        """
        if self._pins:
            raise PinProtocolError(
                "flush_and_clear with outstanding pins on pages "
                f"{sorted(self._pins)}")
        self.flush()
        self._frames.clear()
        self._decoded.clear()

    def close(self):
        """Flush all dirty pages."""
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
