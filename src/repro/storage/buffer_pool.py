"""LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

The paper fixes the buffer pool at 2000 pages of 8 KiB and enables direct
I/O so that only genuine buffer misses hit the disk.  This class mirrors
that: a page request that hits the pool is a logical read; a miss goes to
the pager and is counted as a physical read.  Benchmarks call
:meth:`flush_and_clear` between queries to measure cold-cache behaviour.

Concurrency (``docs/CONCURRENCY.md``): all frame-map state -- the frame
table, dirty set, decoded cache, pin table and WAL bookkeeping -- is
guarded by the pool's ``buffer-pool`` latch (``_latch``), with two
load-bearing refinements:

- **no blocking I/O under the latch**: every pager read/write and every
  WAL append happens *outside* the latched sections, so one thread's
  disk wait never serializes the others' cache hits (the
  ``no-blocking-io-under-latch`` lint rule pins this down statically);
- **single-flight misses**: concurrent misses on the same page elect one
  loader via ``_loading`` and the rest wait on its event, so a page is
  read from disk exactly once however many threads want it -- which is
  what keeps ``physical_reads`` exactly conserved under the threaded
  stress harness.  Dirty evictions park an event in the same table so a
  re-read of an in-flight victim waits for the write-back to land.

Pins are **thread-owned**: ``pin()`` records the calling thread, and an
``unpin()`` from a thread that holds no pin on the page is a typed
protocol error naming the actual owners.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager

from repro.storage.errors import (BufferPoolExhaustedError, PageSizeError,
                                  PinProtocolError, WalProtocolError)
from repro.storage.latch import Latch

#: Pool capacity used by the experiments; matches the paper's 2000 pages.
DEFAULT_POOL_PAGES = 2000


class BufferPool:
    """Caches page images and tracks dirty state with LRU eviction."""

    #: Machine-readable twin of the ``guarded-by`` comments in
    #: ``__init__``; the runtime sanitizer installs guarded-access
    #: assertions (reads and writes) from this mapping.
    _GUARDED = {
        "_frames": "_latch",
        "_dirty": "_latch",
        "_decoded": "_latch",
        "_pins": "_latch",
        "_loading": "_latch",
        "_page_lsn": "_latch",
        "_wal_uncommitted": "_latch",
    }

    def __init__(self, pager, capacity=DEFAULT_POOL_PAGES):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._pager = pager
        self._capacity = capacity
        self._latch = Latch("buffer-pool")  # prixrace: no-blocking-io
        self._frames = OrderedDict()  # page_id -> bytearray  # prixrace: guarded-by=_latch
        self._dirty = set()  # prixrace: guarded-by=_latch
        self._decoded = {}  # page_id -> decoded object  # prixrace: guarded-by=_latch
        self._pins = {}  # page_id -> {thread name -> count}  # prixrace: guarded-by=_latch
        self._loading = {}  # page_id -> Event (in-flight I/O)  # prixrace: guarded-by=_latch
        self._wal = None
        self._page_lsn = {}  # page_id -> LSN of last logged image  # prixrace: guarded-by=_latch
        self._wal_uncommitted = set()  # dirtied since last commit  # prixrace: guarded-by=_latch
        self.stats = pager.stats

    @property
    def capacity(self):
        """Maximum resident frames."""
        return self._capacity

    @property
    def page_size(self):
        """Size in bytes of every page image this pool serves.

        Part of the :class:`~repro.storage.backend.StorageBackend`
        surface: callers above the storage-api layer must not reach
        through ``_pager`` for it.
        """
        return self._pager.page_size

    @property
    def guard(self):
        """The substrate's checksum guard, or None (unverified reads)."""
        return self._pager.guard

    # ------------------------------------------------------------------
    # Write-ahead logging
    # ------------------------------------------------------------------

    @property
    def wal(self):
        """The attached write-ahead log, or None (non-durable pool)."""
        return self._wal

    def attach_wal(self, wal):
        """Make every mutation flow through ``wal`` before the data file.

        From this point on the pool enforces two rules:

        - **no steal**: a page dirtied since the last :meth:`commit` is
          never written to the data file -- eviction skips it, and a
          pool full of such pages raises
          :class:`~repro.storage.errors.BufferPoolExhaustedError`
          (redo-only recovery cannot undo a stolen write);
        - **WAL before data**: a committed dirty page reaches the data
          file only after the log record holding its image is fsynced
          (:meth:`_write_back` forces the log flush when needed).
        """
        if self._wal is not None:
            raise WalProtocolError("a WAL is already attached")
        with self._latch:
            if self._dirty:
                raise WalProtocolError(
                    "cannot attach a WAL to a pool with unlogged dirty "
                    f"pages {sorted(self._dirty)}; flush first")
            self._wal = wal
        guard = self._pager.guard
        if guard is not None:
            # The log's committed images become the guard's read-repair
            # source: the same trust base recovery replays from.
            from repro.storage.guard import wal_repair_source
            guard.attach_repair_source(wal_repair_source(wal))

    def commit(self):
        """Seal the current batch: log every uncommitted page image,
        append a COMMIT record and (policy permitting) fsync the log.

        Returns the commit LSN, or None when no WAL is attached.  Pages
        stay dirty in the pool -- the data-file write is deferred to
        eviction, :meth:`flush` or a checkpoint -- but they become
        evictable because recovery can now redo them.
        """
        if self._wal is None:
            return None
        with self._latch:
            # Uncommitted pages are exempt from eviction, so the frames
            # are necessarily still resident.
            images = [(page_id, self._frames[page_id])
                      for page_id in sorted(self._wal_uncommitted)]
        logged = 0
        lsns = {}
        for page_id, image in images:
            lsns[page_id] = self._wal.log_page(page_id, image)
            logged += 1
        with self._latch:
            self._page_lsn.update(lsns)
            self._wal_uncommitted.difference_update(lsns)
        return self._wal.commit(page_count=logged)

    def checkpoint(self):
        """Fuzzy checkpoint: make the data file self-sufficient, then
        truncate the log.

        Commits and flushes every dirty page, fsyncs the data file, and
        starts a fresh log generation.  After it returns, recovery has
        nothing to redo -- until the next mutation starts a new batch,
        which may happen immediately (nothing here blocks appends).
        """
        if self._wal is None:
            raise WalProtocolError("checkpoint needs an attached WAL")
        self.flush()
        self._pager.sync()
        self._wal.checkpoint(self._pager.num_pages)
        with self._latch:
            self._page_lsn.clear()

    def _note_dirty(self, page_id):  # prixrace: requires=_latch
        """WAL bookkeeping for a freshly dirtied page."""
        if self._wal is not None:
            self._wal_uncommitted.add(page_id)

    def _write_back(self, page_id, frame, lsn, uncommitted):
        """Write one dirty frame to the data file, WAL permitting.

        ``lsn`` and ``uncommitted`` are captured under the latch by the
        caller; the write itself runs latch-free (blocking I/O).
        """
        if self._wal is not None:
            if uncommitted:
                raise WalProtocolError(
                    f"page {page_id} is dirty but uncommitted; writing "
                    "it to the data file would steal an uncommitted "
                    "change that redo-only recovery cannot undo")
            self._wal.require_durable(lsn)
        self._pager.write(page_id, frame)

    @property
    def cached_pages(self):
        """Currently resident frames."""
        with self._latch:
            return len(self._frames)

    def get(self, page_id):
        """Return the page image, loading it through the pager on a miss."""
        self.stats.add(logical_reads=1)
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                return frame
        return self._load(page_id)

    def _load(self, page_id):
        """Miss path: read through the pager, single-flight per page.

        Exactly one thread performs the physical read for a given page;
        every other thread that misses it concurrently waits on the
        loader's event and then finds the frame resident.  Also parks
        behind in-flight dirty-eviction write-backs of the same page, so
        a reload cannot observe the pre-write-back file image.
        """
        while True:
            with self._latch:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self._frames.move_to_end(page_id)
                    return frame
                flight = self._loading.get(page_id)
                if flight is None:
                    flight = threading.Event()
                    self._loading[page_id] = flight
                    break
            flight.wait()
        try:
            frame = self._pager.read(page_id)
            self._admit(page_id, frame)
            return frame
        finally:
            with self._latch:
                self._loading.pop(page_id, None)
            flight.set()

    def new_page(self):
        """Allocate a fresh page and return ``(page_id, frame)``."""
        page_id = self._pager.allocate()
        frame = bytearray(self._pager.page_size)
        self._admit(page_id, frame)
        with self._latch:
            self._dirty.add(page_id)
            self._note_dirty(page_id)
        return page_id, frame

    def get_decoded(self, page_id, decoder):
        """Return ``decoder(page_id, frame)`` memoized per frame residency.

        The decoded object lives exactly as long as the page is resident
        and clean: writes and evictions drop it.  This mirrors real
        engines keeping deserialized nodes pinned to buffer frames -- the
        physical-read accounting is unaffected because the underlying
        frame is still fetched through :meth:`get`.
        """
        with self._latch:
            cached = self._decoded.get(page_id)
            if cached is not None and page_id in self._frames:
                self._frames.move_to_end(page_id)
            else:
                cached = None
        if cached is not None:
            self.stats.add(logical_reads=1)
            return cached
        frame = self.get(page_id)
        decoded = decoder(page_id, frame)
        with self._latch:
            if page_id in self._frames:
                self._decoded[page_id] = decoded
        return decoded

    def pin(self, page_id):
        """Load ``page_id`` (a logical read), pin its frame, return it.

        A pinned frame is exempt from eviction, so the returned
        ``bytearray`` stays the live in-pool image until the matching
        :meth:`unpin` -- mutations made to it cannot be silently written
        back and then orphaned by an eviction mid-use.  Pins nest, are
        owned by the calling thread, and every ``pin`` needs exactly one
        ``unpin`` on every code path (prefer :meth:`pinned`, which
        guarantees that).
        """
        frame = self.get(page_id)
        me = threading.current_thread().name
        with self._latch:
            by_thread = self._pins.setdefault(page_id, {})
            by_thread[me] = by_thread.get(me, 0) + 1
        return frame

    def unpin(self, page_id):
        """Release one of the calling thread's pins on ``page_id``.

        Raises :class:`PinProtocolError` when this thread holds no pin
        on the frame: silently letting the count go negative would make
        a later legitimate pin a no-op and reintroduce the eviction
        hazard the pin was supposed to prevent, and decrementing another
        thread's pin would unprotect a frame that thread is still using.
        The error names the actual owning threads so concurrent pin bugs
        are diagnosable from the message alone.
        """
        me = threading.current_thread().name
        with self._latch:
            by_thread = self._pins.get(page_id)
            held = 0 if by_thread is None else by_thread.get(me, 0)
            if held <= 0:
                total = 0 if by_thread is None else sum(by_thread.values())
                owners = sorted(by_thread) if by_thread else []
                detail = (f", owned by thread(s) {owners}" if owners else "")
                raise PinProtocolError(
                    f"unpin of page {page_id} by thread {me!r} which has "
                    f"pin count 0 there (page total {total}{detail})")
            if held == 1:
                del by_thread[me]
                if not by_thread:
                    del self._pins[page_id]
            else:
                by_thread[me] = held - 1

    @contextmanager
    def pinned(self, page_id):
        """Context manager: pin ``page_id`` for the block, then unpin."""
        frame = self.pin(page_id)
        try:
            yield frame
        finally:
            self.unpin(page_id)

    def pin_count(self, page_id):
        """Current pin count of ``page_id`` (0 when unpinned)."""
        with self._latch:
            by_thread = self._pins.get(page_id)
            return 0 if by_thread is None else sum(by_thread.values())

    def pin_owners(self, page_id):
        """``{thread name: pin count}`` for ``page_id`` (empty if none)."""
        with self._latch:
            return dict(self._pins.get(page_id, ()))

    @property
    def pinned_pages(self):
        """Page ids currently holding at least one pin."""
        with self._latch:
            return frozenset(self._pins)

    def put(self, page_id, data):
        """Replace the cached image of ``page_id`` and mark it dirty.

        ``data`` must be a full page image: ``frame[:] = data`` with a
        short payload would silently shrink the frame, and the truncated
        image is what an eviction later writes back.
        """
        if len(data) != self._pager.page_size:
            raise PageSizeError(
                f"page image must be exactly {self._pager.page_size} "
                f"bytes, got {len(data)}")
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
        if frame is None:
            frame = bytearray(self._pager.page_size)
            self._admit(page_id, frame)
        with self._latch:
            frame[:] = data
            self._dirty.add(page_id)
            self._note_dirty(page_id)
            self._decoded.pop(page_id, None)
        if self._pager.guard is not None:
            # The caller authored this full image, so it is the page's
            # new truth; the checksum stamp follows at write-back.
            self._pager.guard.trust(page_id)

    def mark_dirty(self, page_id):
        """Flag an in-place mutation of the cached page image."""
        with self._latch:
            if page_id not in self._frames:
                raise KeyError(f"page {page_id} is not resident")
            self._dirty.add(page_id)
            self._note_dirty(page_id)
            self._decoded.pop(page_id, None)

    def _evictable(self, page_id):  # prixrace: requires=_latch
        """Whether a frame may leave the pool right now.

        Pinned frames never move; with a WAL attached, dirty frames
        whose current image is not yet logged (uncommitted) may not be
        written back either (no steal).
        """
        if page_id in self._pins:
            return False
        return page_id not in self._wal_uncommitted

    def _exhausted(self, page_id):  # prixrace: requires=_latch
        """The typed everything-is-pinned error, naming the pin owners."""
        pages = len(self._pins)
        total = sum(sum(by_thread.values())
                    for by_thread in self._pins.values())
        threads = sorted({name for by_thread in self._pins.values()
                          for name in by_thread})
        return BufferPoolExhaustedError(
            f"all {self._capacity} frames are pinned; cannot admit page "
            f"{page_id} ({total} pin(s) on {pages} page(s) held by "
            f"thread(s) {threads}; unpin, or grow the pool)")

    def _admit(self, page_id, frame):
        """Insert ``frame``, evicting (and writing back) as needed.

        Victim selection runs under the latch; the victim's write-back
        runs outside it, with an event parked in ``_loading`` so a
        concurrent reload of the victim waits for the write to land.
        """
        while True:
            gate = None
            force_commit = False
            with self._latch:
                if len(self._frames) < self._capacity:
                    self._frames[page_id] = frame
                    return
                victim_id = next((candidate for candidate in self._frames
                                  if self._evictable(candidate)), None)
                if victim_id is None:
                    if self._wal is None or not self._wal_uncommitted:
                        raise self._exhausted(page_id)
                    # Memory pressure forces a batch boundary: under
                    # no-steal an uncommitted page cannot leave the
                    # pool, so a batch whose working set outgrows the
                    # pool is committed early.  Safe for builds (the
                    # superblock is only written in the final batch, so
                    # a crash between forced commits recovers to a file
                    # open() rejects as incomplete); callers that need
                    # a batch to be all-or-nothing must size the pool
                    # to hold it.
                    force_commit = True
                else:
                    victim = self._frames.pop(victim_id)
                    dirty = victim_id in self._dirty
                    self._dirty.discard(victim_id)
                    self._decoded.pop(victim_id, None)
                    lsn = self._page_lsn.get(victim_id, 0)
                    if dirty:
                        gate = threading.Event()
                        self._loading[victim_id] = gate
            if force_commit:
                self.commit()
                continue
            try:
                if gate is not None:
                    self._write_back(victim_id, victim, lsn,
                                     uncommitted=False)
            finally:
                if gate is not None:
                    with self._latch:
                        self._loading.pop(victim_id, None)
                    gate.set()
            self.stats.add(evictions=1)

    def flush(self):
        """Write every dirty page back without evicting anything.

        With a WAL attached this is a durability point: the current
        batch commits first (so every dirty image is logged), the log is
        fsynced where needed, and only then do pages reach the data
        file -- WAL-before-data, enforced per page in
        :meth:`_write_back`.
        """
        if self._wal is not None:
            with self._latch:
                need_commit = bool(self._wal_uncommitted)
            if need_commit:
                self.commit()
        with self._latch:
            todo = sorted(self._dirty)
        for page_id in todo:
            with self._latch:
                frame = self._frames.get(page_id)
                still_dirty = page_id in self._dirty
                lsn = self._page_lsn.get(page_id, 0)
                uncommitted = page_id in self._wal_uncommitted
            if frame is None or not still_dirty:
                continue
            self._write_back(page_id, frame, lsn, uncommitted)
            with self._latch:
                self._dirty.discard(page_id)

    def flush_and_clear(self):
        """Write back all dirty pages and empty the pool (cold cache).

        Refuses to run while any frame is pinned: clearing would orphan
        the pinned ``bytearray`` from the pool, so later mutations through
        it would never reach disk.
        """
        with self._latch:
            if self._pins:
                owners = sorted({name for by_thread in self._pins.values()
                                 for name in by_thread})
                raise PinProtocolError(
                    "flush_and_clear with outstanding pins on pages "
                    f"{sorted(self._pins)} (held by thread(s) {owners})")
        self.flush()
        with self._latch:
            self._frames.clear()
            self._decoded.clear()

    def close(self):
        """Flush all dirty pages."""
        self.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
