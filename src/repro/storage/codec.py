"""Order-preserving key encoding for B+-tree keys.

Composite keys (e.g. ViST's ``(symbol, prefix, LeftPos)``) must compare in
bytewise order exactly as their component tuples compare in Python.  The
encoding here guarantees that:

- integers become 8-byte big-endian unsigned values,
- strings become UTF-8 with ``0x00`` escaped, terminated by ``0x00 0x00``
  (so a string that is a strict prefix of another sorts first),
- tuples are the concatenation of their encoded components, prefixed by a
  one-byte type marker per component so heterogeneous keys stay unambiguous.
"""

from __future__ import annotations

import struct
import zlib

_INT_MARK = b"\x01"
_STR_MARK = b"\x02"
_INT_STRUCT = struct.Struct(">Q")

#: Largest integer representable in a key (matches the 8-byte ranges the
#: paper uses to label virtual-trie nodes).
MAX_KEY_INT = 2 ** 64 - 1


#: Struct mixing a page id into its checksum.
_PAGE_ID_STRUCT = struct.Struct(">Q")


def page_checksum(page_id, payload):
    """crc32 of a page payload, salted with its page id.

    Folding the page id into the checksum is what catches *misdirected*
    writes: a page written whole and intact but at the wrong offset has
    a perfectly self-consistent payload, so a payload-only checksum
    would verify it happily.  Salting with the id the reader expects
    makes the swap fail verification at both landing sites.
    """
    return zlib.crc32(payload, zlib.crc32(
        _PAGE_ID_STRUCT.pack(page_id))) & 0xFFFFFFFF


def encode_int(number):
    """Encode a non-negative integer, preserving numeric order."""
    if not 0 <= number <= MAX_KEY_INT:
        raise ValueError(f"key integer out of range: {number}")
    return _INT_STRUCT.pack(number)


def encode_str(text):
    """Encode a string, preserving lexicographic order, with terminator."""
    raw = text.encode("utf-8").replace(b"\x00", b"\x00\xff")
    return raw + b"\x00\x00"


def encode_key(*parts):
    """Encode a composite key from int and str components."""
    chunks = []
    for part in parts:
        if isinstance(part, bool):
            raise TypeError("bool is not a supported key component")
        if isinstance(part, int):
            chunks.append(_INT_MARK)
            chunks.append(encode_int(part))
        elif isinstance(part, str):
            chunks.append(_STR_MARK)
            chunks.append(encode_str(part))
        else:
            raise TypeError(f"unsupported key component: {type(part).__name__}")
    return b"".join(chunks)


def encode_varints(numbers):
    """Encode a sequence of non-negative integers as LEB128 varints."""
    out = bytearray()
    for number in numbers:
        if number < 0:
            raise ValueError("varints encode non-negative integers only")
        while True:
            byte = number & 0x7F
            number >>= 7
            if number:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_varints(data):
    """Decode a LEB128 varint stream back into a list of integers."""
    numbers = []
    shift = 0
    current = 0
    for byte in data:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            numbers.append(current)
            current = 0
            shift = 0
    if shift:
        raise ValueError("truncated varint stream")
    return numbers


def split_varints(data, count, start=0):
    """Decode exactly ``count`` varints from ``data`` starting at ``start``.

    Returns ``(values, end)`` where ``end`` is the offset just past the
    last consumed byte -- the remainder of ``data`` is the caller's
    (the WAL uses this to peel a varint header off a page-image
    payload without copying the image).  Raises :class:`ValueError` on
    a truncated stream.
    """
    values = []
    pos = start
    length = len(data)
    for _ in range(count):
        current = 0
        shift = 0
        while True:
            if pos >= length:
                raise ValueError("truncated varint stream")
            byte = data[pos]
            pos += 1
            current |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        values.append(current)
    return values, pos


def decode_key(data):
    """Decode a composite key back into its component tuple."""
    parts = []
    pos = 0
    length = len(data)
    while pos < length:
        marker = data[pos:pos + 1]
        pos += 1
        if marker == _INT_MARK:
            parts.append(_INT_STRUCT.unpack_from(data, pos)[0])
            pos += 8
        elif marker == _STR_MARK:
            # Inside the escaped body every 0x00 is followed by 0xff, so the
            # first 0x00 0x00 pair is necessarily the terminator.
            end = data.find(b"\x00\x00", pos)
            if end < 0:
                raise ValueError("unterminated string component")
            raw = data[pos:end].replace(b"\x00\xff", b"\x00")
            parts.append(raw.decode("utf-8"))
            pos = end + 2
        else:
            raise ValueError(f"bad key marker {marker!r} at {pos - 1}")
    return tuple(parts)
