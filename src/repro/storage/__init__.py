"""Disk storage substrate: pages, buffer pool, B+-tree, record store,
write-ahead log.

The paper runs every index (PRIX's Trie-Symbol/Docid indexes, ViST's
D-Ancestorship index, the XB-trees) on GiST B+-trees over 8 KiB pages with a
2000-page buffer pool and direct I/O.  This package reproduces that stack in
pure Python with explicit physical-read accounting so the "Disk IO (pages)"
columns of Tables 4-9 can be regenerated.

Durability is layered on top (``docs/DURABILITY.md``): an ARIES-lite
redo-only :class:`WriteAheadLog`, crash :mod:`~repro.storage.recovery`,
and deterministic fault injection (:class:`FaultSchedule` /
:class:`FaultyFile`) for the crash-matrix tests.  WAL traffic is counted
in its own ``IOStats`` fields, so the paper tables are unaffected.

The public door into the stack is :mod:`repro.storage.backend`
(``docs/ARCHITECTURE.md``): a :class:`StorageBackend` protocol with
three implementations -- :class:`FilePagerBackend` (production file
stack), :class:`InMemoryArenaBackend` (tests/benchmarks over process
memory) and the read-only :class:`MmapBackend` (serving).  The logical
index layers import storage only through that seam; the ``prixarch``
lint tier enforces the boundary statically.

Corruption safety sits beside it (``docs/ROBUSTNESS.md``): a
:class:`PageGuard` checksums every page on write-back and verifies on
read, repairing from the WAL's committed images or quarantining with a
typed :class:`PageCorruptionError`; :func:`scrub_path` sweeps a whole
index; :func:`inject_corruption` supplies the seeded bit-flip /
zero-page / misdirected-write faults the corruption-matrix tests run
under.  Guard traffic, like WAL traffic, never touches the page
counters.
"""

from repro.storage.arena import ArenaPager
from repro.storage.backend import (FilePagerBackend, InMemoryArenaBackend,
                                   MmapBackend, StorageBackend,
                                   backend_from_files, create_backend,
                                   open_backend, recover_backend)
from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import (decode_key, encode_int, encode_key,
                                 encode_str, page_checksum, split_varints)
from repro.storage.errors import (BufferPoolExhaustedError, CorruptionError,
                                  PageCorruptionError, PageOverflowError,
                                  PageRangeError, PageSizeError,
                                  PinProtocolError, ReadOnlyBackendError,
                                  StorageError, SuperblockError,
                                  TransientStorageError, WalCorruptionError,
                                  WalError, WalProtocolError)
from repro.storage.faults import (ChaosBackend, ChaosConfig, ChaosSchedule,
                                  CrashPoint, FaultSchedule, FaultyFile,
                                  corruption_plan, inject_corruption)
from repro.storage.guard import (PageGuard, ScrubReport, TreeScrubReport,
                                 scrub, scrub_path, scrub_tree,
                                 wal_repair_source)
from repro.storage.latch import Latch
from repro.storage.mmapio import MmapPager
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager
from repro.storage.records import RecordStore
from repro.storage.recovery import (RecoveryResult, recover, recover_path,
                                    scan_committed)
from repro.storage.stats import IOStats
from repro.storage.wal import (SYNC_ALWAYS, SYNC_COMMIT, SYNC_NEVER,
                               WriteAheadLog)

__all__ = [
    "ArenaPager",
    "BPlusTree",
    "BufferPool",
    "BufferPoolExhaustedError",
    "ChaosBackend",
    "ChaosConfig",
    "ChaosSchedule",
    "CorruptionError",
    "CrashPoint",
    "DEFAULT_PAGE_SIZE",
    "FaultSchedule",
    "FaultyFile",
    "FilePagerBackend",
    "IOStats",
    "InMemoryArenaBackend",
    "Latch",
    "MmapBackend",
    "MmapPager",
    "PageCorruptionError",
    "PageGuard",
    "PageOverflowError",
    "PageRangeError",
    "PageSizeError",
    "Pager",
    "PinProtocolError",
    "ReadOnlyBackendError",
    "RecordStore",
    "RecoveryResult",
    "SYNC_ALWAYS",
    "SYNC_COMMIT",
    "SYNC_NEVER",
    "ScrubReport",
    "StorageBackend",
    "StorageError",
    "SuperblockError",
    "TransientStorageError",
    "TreeScrubReport",
    "WalCorruptionError",
    "WalError",
    "WalProtocolError",
    "WriteAheadLog",
    "backend_from_files",
    "corruption_plan",
    "create_backend",
    "decode_key",
    "encode_int",
    "encode_key",
    "encode_str",
    "inject_corruption",
    "open_backend",
    "page_checksum",
    "recover",
    "recover_backend",
    "recover_path",
    "scan_committed",
    "scrub",
    "scrub_path",
    "scrub_tree",
    "split_varints",
    "wal_repair_source",
]
