"""Disk storage substrate: pages, buffer pool, B+-tree, record store,
write-ahead log.

The paper runs every index (PRIX's Trie-Symbol/Docid indexes, ViST's
D-Ancestorship index, the XB-trees) on GiST B+-trees over 8 KiB pages with a
2000-page buffer pool and direct I/O.  This package reproduces that stack in
pure Python with explicit physical-read accounting so the "Disk IO (pages)"
columns of Tables 4-9 can be regenerated.

Durability is layered on top (``docs/DURABILITY.md``): an ARIES-lite
redo-only :class:`WriteAheadLog`, crash :mod:`~repro.storage.recovery`,
and deterministic fault injection (:class:`FaultSchedule` /
:class:`FaultyFile`) for the crash-matrix tests.  WAL traffic is counted
in its own ``IOStats`` fields, so the paper tables are unaffected.

Corruption safety sits beside it (``docs/ROBUSTNESS.md``): a
:class:`PageGuard` checksums every page on write-back and verifies on
read, repairing from the WAL's committed images or quarantining with a
typed :class:`PageCorruptionError`; :func:`scrub_path` sweeps a whole
index; :func:`inject_corruption` supplies the seeded bit-flip /
zero-page / misdirected-write faults the corruption-matrix tests run
under.  Guard traffic, like WAL traffic, never touches the page
counters.
"""

from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import (decode_key, encode_int, encode_key,
                                 encode_str, page_checksum, split_varints)
from repro.storage.errors import (BufferPoolExhaustedError, CorruptionError,
                                  PageCorruptionError, PageOverflowError,
                                  PageRangeError, PageSizeError,
                                  PinProtocolError, StorageError,
                                  SuperblockError, WalCorruptionError,
                                  WalError, WalProtocolError)
from repro.storage.faults import (CrashPoint, FaultSchedule, FaultyFile,
                                  corruption_plan, inject_corruption)
from repro.storage.guard import (PageGuard, ScrubReport, scrub, scrub_path,
                                 wal_repair_source)
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager
from repro.storage.records import RecordStore
from repro.storage.recovery import (RecoveryResult, recover, recover_path,
                                    scan_committed)
from repro.storage.stats import IOStats
from repro.storage.wal import (SYNC_ALWAYS, SYNC_COMMIT, SYNC_NEVER,
                               WriteAheadLog)

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BufferPoolExhaustedError",
    "CorruptionError",
    "CrashPoint",
    "DEFAULT_PAGE_SIZE",
    "FaultSchedule",
    "FaultyFile",
    "IOStats",
    "PageCorruptionError",
    "PageGuard",
    "PageOverflowError",
    "PageRangeError",
    "PageSizeError",
    "Pager",
    "PinProtocolError",
    "RecordStore",
    "RecoveryResult",
    "SYNC_ALWAYS",
    "SYNC_COMMIT",
    "SYNC_NEVER",
    "ScrubReport",
    "StorageError",
    "SuperblockError",
    "WalCorruptionError",
    "WalError",
    "WalProtocolError",
    "WriteAheadLog",
    "corruption_plan",
    "decode_key",
    "encode_int",
    "encode_key",
    "encode_str",
    "inject_corruption",
    "page_checksum",
    "recover",
    "recover_path",
    "scan_committed",
    "scrub",
    "scrub_path",
    "split_varints",
    "wal_repair_source",
]
