"""Disk storage substrate: pages, buffer pool, B+-tree, record store.

The paper runs every index (PRIX's Trie-Symbol/Docid indexes, ViST's
D-Ancestorship index, the XB-trees) on GiST B+-trees over 8 KiB pages with a
2000-page buffer pool and direct I/O.  This package reproduces that stack in
pure Python with explicit physical-read accounting so the "Disk IO (pages)"
columns of Tables 4-9 can be regenerated.
"""

from repro.storage.bptree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.codec import (decode_key, encode_int, encode_key,
                                 encode_str)
from repro.storage.errors import (BufferPoolExhaustedError, PageOverflowError,
                                  PageSizeError, PinProtocolError,
                                  StorageError)
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager
from repro.storage.records import RecordStore
from repro.storage.stats import IOStats

__all__ = [
    "BPlusTree",
    "BufferPool",
    "BufferPoolExhaustedError",
    "DEFAULT_PAGE_SIZE",
    "IOStats",
    "PageOverflowError",
    "PageSizeError",
    "Pager",
    "PinProtocolError",
    "RecordStore",
    "StorageError",
    "decode_key",
    "encode_int",
    "encode_key",
    "encode_str",
]
