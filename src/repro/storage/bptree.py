"""Disk-based B+-tree over the buffer pool.

This is the reproduction's stand-in for the GiST B+-trees the paper uses
for every index (Trie-Symbol, Docid, D-Ancestorship, XB-tree).  Keys and
values are byte strings; composite keys are produced by
:mod:`repro.storage.codec` so bytewise order matches tuple order.

Properties:

- duplicate keys are supported (the Docid index maps one trie position to
  many documents),
- all access goes through the buffer pool, so physical page reads are
  accounted exactly like the paper's direct-I/O setup,
- deletion is *lazy* (no rebalancing): entries are removed in place and
  empty leaves remain chained.  Search and scan correctness are unaffected,
  which is all the reproduced experiments require,
- :meth:`bulk_load` builds a packed tree bottom-up from sorted pairs; index
  construction uses it instead of one-at-a-time inserts.

Page layout::

    byte 0      : 1 for leaf, 0 for internal
    bytes 1-2   : entry count (uint16)
    bytes 3-6   : leaf -> next-leaf page id; internal -> leftmost child id
    bytes 7-    : leaf     entries: klen u16, key, vlen u16, value
                  internal entries: klen u16, key, child page id u32
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right

from repro.storage.errors import KeyNotFoundError, PageOverflowError

_HEADER = struct.Struct("<BHI")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_NO_PAGE = 0xFFFFFFFF

#: Meta page layout: magic, root page id, height, entry count.
_META = struct.Struct("<8sIIQ")
_MAGIC = b"PRIXBPT1"


class _Node:
    """In-memory image of one B+-tree page."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children",
                 "next_leaf")

    def __init__(self, page_id, is_leaf):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys = []
        self.values = []    # leaf payloads
        self.children = []  # internal child page ids (len(keys) + 1)
        self.next_leaf = _NO_PAGE

    def serialized_size(self):
        """Bytes this node needs on a page."""
        size = _HEADER.size
        if self.is_leaf:
            for key, val in zip(self.keys, self.values):
                size += 4 + len(key) + len(val)
        else:
            for key in self.keys:
                size += 6 + len(key)
        return size


def _parse_node(page_id, frame):
    is_leaf, count, link = _HEADER.unpack_from(frame, 0)
    node = _Node(page_id, bool(is_leaf))
    pos = _HEADER.size
    if node.is_leaf:
        node.next_leaf = link
        for _ in range(count):
            (klen,) = _U16.unpack_from(frame, pos)
            pos += 2
            key = bytes(frame[pos:pos + klen])
            pos += klen
            (vlen,) = _U16.unpack_from(frame, pos)
            pos += 2
            val = bytes(frame[pos:pos + vlen])
            pos += vlen
            node.keys.append(key)
            node.values.append(val)
    else:
        node.children.append(link)
        for _ in range(count):
            (klen,) = _U16.unpack_from(frame, pos)
            pos += 2
            key = bytes(frame[pos:pos + klen])
            pos += klen
            (child,) = _U32.unpack_from(frame, pos)
            pos += 4
            node.keys.append(key)
            node.children.append(child)
    return node


def _serialize_node(node, page_size):
    size = node.serialized_size()
    if size > page_size:
        raise PageOverflowError(
            f"node with {len(node.keys)} entries needs {size} bytes "
            f"but the page holds {page_size}")
    frame = bytearray(page_size)
    link = node.next_leaf if node.is_leaf else (
        node.children[0] if node.children else _NO_PAGE)
    _HEADER.pack_into(frame, 0, 1 if node.is_leaf else 0,
                      len(node.keys), link)
    pos = _HEADER.size
    if node.is_leaf:
        for key, val in zip(node.keys, node.values):
            _U16.pack_into(frame, pos, len(key))
            pos += 2
            frame[pos:pos + len(key)] = key
            pos += len(key)
            _U16.pack_into(frame, pos, len(val))
            pos += 2
            frame[pos:pos + len(val)] = val
            pos += len(val)
    else:
        for key, child in zip(node.keys, node.children[1:]):
            _U16.pack_into(frame, pos, len(key))
            pos += 2
            frame[pos:pos + len(key)] = key
            pos += len(key)
            _U32.pack_into(frame, pos, child)
            pos += 4
    return frame


class BPlusTree:
    """A B+-tree whose nodes live in buffer-pool pages.

    Create with :meth:`create` (allocates a meta page and an empty root) or
    reattach to an existing tree with :meth:`attach`.
    """

    def __init__(self, pool, meta_page_id):
        self._pool = pool
        self._page_size = pool.page_size
        self._meta_page_id = meta_page_id
        frame = pool.get(meta_page_id)
        magic, root, height, count = _META.unpack_from(frame, 0)
        if magic != _MAGIC:
            raise ValueError("page is not a B+-tree meta page")
        self._root_id = root
        self._height = height
        self._count = count

    @classmethod
    def create(cls, pool):
        """Allocate and initialize a fresh, empty tree; return it."""
        meta_id, _ = pool.new_page()
        root_id, _ = pool.new_page()
        root = _Node(root_id, is_leaf=True)
        pool.put(root_id, _serialize_node(root, pool.page_size))
        cls._write_meta(pool, meta_id, root_id, 1, 0)
        return cls(pool, meta_id)

    @classmethod
    def attach(cls, pool, meta_page_id):
        """Reattach to a tree previously created in this pool's file."""
        return cls(pool, meta_page_id)

    @staticmethod
    def _write_meta(pool, meta_id, root_id, height, count):
        frame = bytearray(pool.page_size)
        _META.pack_into(frame, 0, _MAGIC, root_id, height, count)
        pool.put(meta_id, frame)

    def _sync_meta(self):
        self._write_meta(self._pool, self._meta_page_id,
                         self._root_id, self._height, self._count)

    @property
    def meta_page_id(self):
        """Page id of this tree's metadata page."""
        return self._meta_page_id

    def __len__(self):
        return self._count

    @property
    def height(self):
        """Number of levels from root to leaves."""
        return self._height

    def _load(self, page_id):
        return self._pool.get_decoded(page_id, _parse_node)

    def _save(self, node):
        self._pool.put(node.page_id, _serialize_node(node, self._page_size))

    # ------------------------------------------------------------------
    # Lookup and scans
    # ------------------------------------------------------------------

    def _descend_left(self, key):
        """Return the leaf that holds the first entry >= key."""
        node = self._load(self._root_id)
        while not node.is_leaf:
            idx = bisect_left(node.keys, key)
            node = self._load(node.children[idx])
        return node

    def search(self, key):
        """Return the value of the first entry with ``key``.

        Raises :class:`KeyNotFoundError` when absent.
        """
        for _, val in self.range_scan(key, key, inclusive_hi=True):
            return val
        raise KeyNotFoundError(repr(key))

    def get(self, key, default=None):
        """Return the first value for ``key`` or ``default``."""
        for _, val in self.range_scan(key, key, inclusive_hi=True):
            return val
        return default

    def contains(self, key):
        """Return True when at least one entry has exactly ``key``."""
        for _ in self.range_scan(key, key, inclusive_hi=True):
            return True
        return False

    def range_scan(self, lo=None, hi=None, inclusive_hi=False):
        """Yield ``(key, value)`` pairs with ``lo <= key < hi``.

        ``inclusive_hi=True`` makes the upper bound closed; ``None`` bounds
        are open-ended.  Duplicates of a key are all yielded.
        """
        if lo is None:
            node = self._load(self._root_id)
            while not node.is_leaf:
                node = self._load(node.children[0])
            idx = 0
        else:
            node = self._descend_left(lo)
            idx = bisect_left(node.keys, lo)
        while True:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None:
                    if inclusive_hi:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                yield key, node.values[idx]
                idx += 1
            if node.next_leaf == _NO_PAGE:
                return
            node = self._load(node.next_leaf)
            idx = 0

    def items(self):
        """Yield every ``(key, value)`` pair in key order."""
        return self.range_scan()

    def count_range(self, lo=None, hi=None, inclusive_hi=False):
        """Return the number of entries in the given key range."""
        return sum(1 for _ in self.range_scan(lo, hi, inclusive_hi))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key, value):
        """Insert a ``(key, value)`` entry; duplicates are allowed."""
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("keys must be bytes (use repro.storage.codec)")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        split = self._insert_into(self._root_id, bytes(key), bytes(value))
        if split is not None:
            sep_key, right_id = split
            new_root = _Node(self._pool.new_page()[0], is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root_id, right_id]
            self._save(new_root)
            self._root_id = new_root.page_id
            self._height += 1
        self._count += 1
        self._sync_meta()

    def _insert_into(self, page_id, key, value):
        """Insert beneath ``page_id``; return a (separator, right_id) split
        descriptor when the node overflowed, else None."""
        node = self._load(page_id)
        if node.is_leaf:
            idx = bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
        else:
            idx = bisect_right(node.keys, key)
            split = self._insert_into(node.children[idx], key, value)
            if split is None:
                return None
            sep_key, right_id = split
            node.keys.insert(idx, sep_key)
            node.children.insert(idx + 1, right_id)
        if node.serialized_size() <= self._page_size:
            self._save(node)
            return None
        return self._split(node)

    def _split(self, node):
        """Split an overflowing node in half; return (separator, right_id)."""
        mid = len(node.keys) // 2
        right = _Node(self._pool.new_page()[0], node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            right.next_leaf = node.next_leaf
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next_leaf = right.page_id
            separator = right.keys[0]
        else:
            # The middle key moves up; it does not remain in either child.
            separator = node.keys[mid]
            right.keys = node.keys[mid + 1:]
            right.children = node.children[mid + 1:]
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
        self._save(node)
        self._save(right)
        return separator, right.page_id

    def delete(self, key, value=None):
        """Remove the first entry matching ``key`` (and ``value`` if given).

        Deletion is lazy: no rebalancing is performed.  Raises
        :class:`KeyNotFoundError` if no matching entry exists.
        """
        node = self._descend_left(key)
        idx = bisect_left(node.keys, key)
        while True:
            while idx < len(node.keys) and node.keys[idx] == key:
                if value is None or node.values[idx] == value:
                    del node.keys[idx]
                    del node.values[idx]
                    self._save(node)
                    self._count -= 1
                    self._sync_meta()
                    return
                idx += 1
            if idx < len(node.keys) or node.next_leaf == _NO_PAGE:
                raise KeyNotFoundError(repr(key))
            node = self._load(node.next_leaf)
            idx = 0

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, pool, pairs, fill_factor=0.9):
        """Build a packed tree from ``pairs`` sorted by key; return it.

        ``fill_factor`` bounds how full each page is packed, leaving slack
        for later inserts.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError("fill_factor must be in [0.1, 1.0]")
        page_size = pool.page_size
        budget = int(page_size * fill_factor)
        meta_id, _ = pool.new_page()

        # Build the leaf level.
        leaves = []   # (first_key, page_id)
        current = _Node(pool.new_page()[0], is_leaf=True)
        size = _HEADER.size
        count = 0
        prev_key = None
        for key, value in pairs:
            key = bytes(key)
            value = bytes(value)
            if prev_key is not None and key < prev_key:
                raise ValueError("bulk_load input must be sorted by key")
            prev_key = key
            entry = 4 + len(key) + len(value)
            if size + entry > budget and current.keys:
                nxt = _Node(pool.new_page()[0], is_leaf=True)
                current.next_leaf = nxt.page_id
                pool.put(current.page_id,
                         _serialize_node(current, page_size))
                leaves.append((current.keys[0], current.page_id))
                current = nxt
                size = _HEADER.size
            current.keys.append(key)
            current.values.append(value)
            size += entry
            count += 1
        pool.put(current.page_id, _serialize_node(current, page_size))
        if current.keys:
            leaves.append((current.keys[0], current.page_id))
        elif not leaves:
            leaves.append((b"", current.page_id))

        # Build internal levels bottom-up.
        level = leaves
        height = 1
        while len(level) > 1:
            next_level = []
            node = _Node(pool.new_page()[0], is_leaf=False)
            node.children.append(level[0][1])
            first_key = level[0][0]
            size = _HEADER.size
            for sep_key, child_id in level[1:]:
                entry = 6 + len(sep_key)
                if size + entry > budget and node.keys:
                    pool.put(node.page_id, _serialize_node(node, page_size))
                    next_level.append((first_key, node.page_id))
                    node = _Node(pool.new_page()[0], is_leaf=False)
                    node.children.append(child_id)
                    first_key = sep_key
                    size = _HEADER.size
                    continue
                node.keys.append(sep_key)
                node.children.append(child_id)
                size += entry
            pool.put(node.page_id, _serialize_node(node, page_size))
            next_level.append((first_key, node.page_id))
            level = next_level
            height += 1

        root_id = level[0][1]
        cls._write_meta(pool, meta_id, root_id, height, count)
        return cls(pool, meta_id)

    # ------------------------------------------------------------------
    # Invariant checking (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self):
        """Verify ordering, separator bounds, and leaf-chain consistency.

        Raises AssertionError with a description of the first violation.
        """
        leaf_first_ids = []

        def walk(page_id, lo, hi, depth):
            node = self._load(page_id)
            for i in range(1, len(node.keys)):
                assert node.keys[i - 1] <= node.keys[i], (
                    f"page {page_id}: keys out of order at {i}")
            for key in node.keys:
                assert lo is None or key >= lo, (
                    f"page {page_id}: key below lower bound")
                # Duplicates may equal the separator on either side (a
                # split can cut inside a run of equal keys), so the upper
                # bound is inclusive.
                assert hi is None or key <= hi, (
                    f"page {page_id}: key above upper bound")
            if node.is_leaf:
                leaf_first_ids.append((depth, page_id))
                return depth
            assert len(node.children) == len(node.keys) + 1, (
                f"page {page_id}: child/key arity mismatch")
            depths = set()
            bounds = [lo] + node.keys + [hi]
            for child, (clo, chi) in zip(node.children,
                                         zip(bounds[:-1], bounds[1:])):
                depths.add(walk(child, clo, chi, depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        walk(self._root_id, None, None, 1)
        depths = {d for d, _ in leaf_first_ids}
        assert len(depths) <= 1, "leaf depth not uniform"

        # The leaf chain must enumerate exactly the leaves found by the walk.
        chained = []
        node = self._load(self._root_id)
        while not node.is_leaf:
            node = self._load(node.children[0])
        while True:
            chained.append(node.page_id)
            if node.next_leaf == _NO_PAGE:
                break
            node = self._load(node.next_leaf)
        walk_leaves = [pid for _, pid in leaf_first_ids]
        assert chained == walk_leaves, "leaf chain disagrees with tree walk"

        total = sum(1 for _ in self.items())
        assert total == self._count, (
            f"entry count {self._count} != scanned {total}")
