"""Append-only record store for variable-length blobs.

PRIX keeps each document's NPS, LPS and leaf-node list in the database
(Sections 3.2 and 4.3); ViST keeps document sequences similarly.  Records
are packed densely: small records share pages (a refinement pass over k
small documents costs ~k * record_size / page_size page reads, not k
pages), and records larger than a page span consecutively allocated
pages.

A record id is ``(page_id, offset, length)`` -- enough to locate the
record without any directory I/O.
"""

from __future__ import annotations

from repro.storage.errors import StorageError


class RecordStore:
    """Blob storage over a buffer pool with page-granular I/O accounting."""

    def __init__(self, pool):
        self._pool = pool
        self._page_size = pool.page_size
        self._current_page = None
        self._current_offset = 0

    def append(self, blob):
        """Store ``blob``; return its record id ``(page, offset, length)``.

        Small records pack into the current page; a record that does not
        fit in the remaining space starts on a fresh page and, if larger
        than one page, spans consecutively allocated pages.
        """
        if not isinstance(blob, (bytes, bytearray)):
            raise TypeError("blobs must be bytes")
        fits_in_current = (
            self._current_page is not None
            and self._current_offset + len(blob) <= self._page_size)
        if not fits_in_current:
            pages_needed = max(1, -(-len(blob) // self._page_size))
            first_page = None
            previous = None
            for _ in range(pages_needed):
                page_id, _ = self._pool.new_page()
                if first_page is None:
                    first_page = page_id
                elif page_id != previous + 1:
                    raise StorageError(
                        "record pages must be allocated consecutively")
                previous = page_id
            self._current_page = first_page
            self._current_offset = 0

        first_page = self._current_page
        first_offset = self._current_offset
        pos = 0
        page_id = first_page
        offset = first_offset
        while pos < len(blob):
            # Pin while mutating: an eviction between the slice write and
            # mark_dirty would write back (and then orphan) the frame.
            with self._pool.pinned(page_id) as frame:
                take = min(self._page_size - offset, len(blob) - pos)
                frame[offset:offset + take] = blob[pos:pos + take]
                self._pool.mark_dirty(page_id)
            pos += take
            offset += take
            if offset >= self._page_size and pos < len(blob):
                page_id += 1
                offset = 0
        self._current_page = page_id
        self._current_offset = offset
        return (first_page, first_offset, len(blob))

    def read(self, rid):
        """Return the blob stored under record id ``rid``."""
        page_id, offset, length = rid
        chunks = []
        remaining = length
        while remaining > 0:
            with self._pool.pinned(page_id) as frame:
                take = min(self._page_size - offset, remaining)
                chunks.append(bytes(frame[offset:offset + take]))
            remaining -= take
            page_id += 1
            offset = 0
        return b"".join(chunks)

    def pages_for(self, rid):
        """Number of pages the record touches."""
        _, offset, length = rid
        if length == 0:
            return 1
        first = self._page_size - offset
        if length <= first:
            return 1
        return 1 + -(-(length - first) // self._page_size)
