"""I/O accounting shared by the pager and buffer pool.

A single :class:`IOStats` instance is threaded through a storage stack; the
benchmark harness snapshots it before and after each query to report page
reads the same way the paper does (cold buffer pool, direct I/O).

Concurrency: one stats object is shared by every component of a stack
(pager, pool, WAL, guard) and -- once ``prix serve``-style workloads
land -- by every thread querying that stack.  All counter mutation
therefore goes through :meth:`IOStats.add`, which holds the object's own
``io-stats`` latch; lost updates on ``+=`` from two threads would break
the exact-conservation oracle the threaded stress harness checks
(``docs/CONCURRENCY.md``).  Cross-thread readers use :meth:`read` or
:meth:`snapshot` -- under ``PRIX_SANITIZE=1`` a bare counter attribute
access on a stats object shared between threads is flagged as a race.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.latch import Latch


def _stats_latch():
    return Latch("io-stats")


@dataclass
class IOStats:
    """Counters for logical and physical page traffic.

    The ``wal_*`` counters account write-ahead-log traffic separately
    from page traffic by construction: WAL appends and fsyncs never
    touch ``physical_reads``/``physical_writes``, so the paper's
    "Disk IO (pages)" columns stay comparable whether or not an index
    runs with ``durable=True``.

    The ``guard_*`` counters do the same for the checksum guard
    (``docs/ROBUSTNESS.md``): verifications are CPU work over bytes a
    counted read already fetched, and repairs/quarantines only happen on
    actual corruption, so none of them perturb the paper's page columns.
    """

    physical_reads: int = 0       # prixrace: guarded-by=_latch
    physical_writes: int = 0      # prixrace: guarded-by=_latch
    logical_reads: int = 0        # prixrace: guarded-by=_latch
    evictions: int = 0            # prixrace: guarded-by=_latch
    allocations: int = 0          # prixrace: guarded-by=_latch
    wal_appends: int = 0          # prixrace: guarded-by=_latch
    wal_fsyncs: int = 0           # prixrace: guarded-by=_latch
    wal_bytes: int = 0            # prixrace: guarded-by=_latch
    guard_verifications: int = 0  # prixrace: guarded-by=_latch
    guard_repairs: int = 0        # prixrace: guarded-by=_latch
    guard_quarantines: int = 0    # prixrace: guarded-by=_latch
    _latch: Latch = field(default_factory=_stats_latch, repr=False,
                          compare=False)

    #: Machine-readable twin of the ``guarded-by`` comments above; the
    #: runtime sanitizer installs its guarded-access assertions from
    #: this mapping (reads and writes alike must hold ``_latch`` once
    #: the object is shared between threads).
    _GUARDED = {name: "_latch" for name in (
        "physical_reads", "physical_writes", "logical_reads", "evictions",
        "allocations", "wal_appends", "wal_fsyncs", "wal_bytes",
        "guard_verifications", "guard_repairs", "guard_quarantines")}

    def add(self, **deltas):
        """Atomically bump the named counters (``add(physical_reads=1)``).

        The only sanctioned mutation path outside :meth:`reset`: every
        call site in the storage layer routes its increments through
        here so concurrent stacks never lose updates.
        """
        with self._latch:
            for name, amount in deltas.items():
                setattr(self, name, getattr(self, name) + amount)

    def read(self, name):
        """Latched read of one counter by name (``read("physical_reads")``).

        The sanctioned way for *cross-thread* readers -- the query
        pipeline's per-query I/O deltas, the budget meter -- to sample a
        counter: a bare attribute read on a shared stats object is
        exactly the race the guarded-field sanitizer flags.
        """
        with self._latch:
            return getattr(self, name)

    def snapshot(self):
        """Return an independent copy of the current counters."""
        with self._latch:
            return IOStats(self.physical_reads, self.physical_writes,
                           self.logical_reads, self.evictions,
                           self.allocations, self.wal_appends,
                           self.wal_fsyncs, self.wal_bytes,
                           self.guard_verifications, self.guard_repairs,
                           self.guard_quarantines)

    def delta(self, earlier):
        """Return the counter increments since ``earlier``."""
        with self._latch:
            return IOStats(
                self.physical_reads - earlier.physical_reads,
                self.physical_writes - earlier.physical_writes,
                self.logical_reads - earlier.logical_reads,
                self.evictions - earlier.evictions,
                self.allocations - earlier.allocations,
                self.wal_appends - earlier.wal_appends,
                self.wal_fsyncs - earlier.wal_fsyncs,
                self.wal_bytes - earlier.wal_bytes,
                self.guard_verifications - earlier.guard_verifications,
                self.guard_repairs - earlier.guard_repairs,
                self.guard_quarantines - earlier.guard_quarantines,
            )

    def reset(self):
        """Zero every counter."""
        with self._latch:
            self.physical_reads = 0
            self.physical_writes = 0
            self.logical_reads = 0
            self.evictions = 0
            self.allocations = 0
            self.wal_appends = 0
            self.wal_fsyncs = 0
            self.wal_bytes = 0
            self.guard_verifications = 0
            self.guard_repairs = 0
            self.guard_quarantines = 0

    @property
    def hit_ratio(self):
        """Fraction of logical reads served from the pool.

        Returns ``None`` when there was no logical traffic at all (no
        reads means no meaningful ratio).  Direct pager traffic --
        physical reads issued without a logical read, e.g. a benchmark
        peeking at pages behind the pool -- would push the raw ratio
        below zero, so the result is clamped to ``[0.0, 1.0]``.
        """
        with self._latch:
            if self.logical_reads == 0:
                return None
            ratio = 1.0 - self.physical_reads / self.logical_reads
        return min(1.0, max(0.0, ratio))


@dataclass
class StatsRegistry:
    """Named IOStats instances, one per storage stack under measurement."""

    stacks: dict = field(default_factory=dict)

    def get(self, name):
        """The named stack's stats, created on first use."""
        if name not in self.stacks:
            self.stacks[name] = IOStats()
        return self.stacks[name]
