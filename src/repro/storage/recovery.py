"""Redo-only crash recovery: replay the committed WAL tail into the data
file.

Recovery is what turns the write-ahead log's promises into an index you
can open.  The pass is a single forward scan (ARIES's redo phase; there
is no undo phase because the buffer pool never steals uncommitted pages
-- see :mod:`repro.storage.wal`):

1. Scan the log, validating every frame.  Page images accumulate in a
   pending batch; each ``COMMIT`` record promotes the batch.  The first
   invalid frame ends the scan -- a torn tail is the normal signature of
   a crash and everything after it is discarded, uncommitted batch
   included.
2. Truncate the data file down to a whole number of pages (a torn page
   append is cut off; any page that matters has a committed image).
3. Write every committed image at its page offset, extending the file
   with zero pages where the log references pages past the end.
4. fsync the data file.

The pass is **idempotent**: it never writes to the log, and re-applying
the same committed images produces the same data file, so a crash during
recovery is cured by running recovery again.  Callers that want to start
a fresh log generation afterwards (so the replayed tail is not replayed
a third time on the next open) should follow with a checkpoint, which is
what ``prix recover`` does.
"""

from __future__ import annotations

import os

from repro.storage.pager import fsync_file
from repro.storage.wal import REC_CHECKPOINT, REC_COMMIT, REC_PAGE


class RecoveryResult:
    """What one recovery pass found and did."""

    __slots__ = ("records_scanned", "commits_applied", "pages_applied",
                 "last_commit_lsn", "truncated_bytes", "pages_discarded")

    def __init__(self):
        self.records_scanned = 0
        self.commits_applied = 0
        self.pages_applied = 0
        self.last_commit_lsn = None
        self.truncated_bytes = 0
        self.pages_discarded = 0

    @property
    def clean(self):
        """True when the log held nothing to redo (already consistent)."""
        return self.pages_applied == 0 and self.truncated_bytes == 0

    def __repr__(self):
        return (f"<RecoveryResult records={self.records_scanned} "
                f"commits={self.commits_applied} "
                f"pages={self.pages_applied} "
                f"discarded={self.pages_discarded} "
                f"truncated={self.truncated_bytes}B>")


def scan_committed(wal):
    """Collect the committed page images from a log.

    Returns ``(images, result)`` where ``images`` maps ``page_id`` to the
    page's last committed image, in first-committed order.  ``result``
    carries scan statistics; images dirtied after the final durable
    commit are counted in ``pages_discarded``.
    """
    result = RecoveryResult()
    committed = {}
    pending = {}
    for record in wal.replay():
        result.records_scanned += 1
        if record.rtype == REC_PAGE:
            page_id, image = record.page_image()
            pending[page_id] = image
        elif record.rtype == REC_COMMIT:
            committed.update(pending)
            pending.clear()
            result.commits_applied += 1
            result.last_commit_lsn = record.lsn
        elif record.rtype == REC_CHECKPOINT:
            # The data file was consistent when this was written; images
            # before it (none, on a truncated log) are already in place.
            continue
    result.pages_discarded = len(pending)
    return committed, result


def recover(data_file, wal, page_size=None, guard=None):
    """Replay the committed tail of ``wal`` into ``data_file``.

    ``data_file`` is a writable binary file object positioned anywhere;
    ``wal`` is an attached :class:`~repro.storage.wal.WriteAheadLog`.
    ``page_size`` defaults to the log's.  When the index carries a
    checksum sidecar, pass its :class:`~repro.storage.guard.PageGuard`
    as ``guard`` so every replayed image is restamped -- recovery writes
    around the pager, and a stale stamp would condemn a perfectly
    recovered page on its first read after the log is checkpointed away.
    Returns a :class:`RecoveryResult`.
    """
    if page_size is None:
        page_size = wal.page_size
    committed, result = scan_committed(wal)

    # Cut off a torn page append at the end of the data file.
    data_file.seek(0, os.SEEK_END)
    size = data_file.tell()
    torn = size % page_size
    if torn:
        data_file.seek(size - torn)
        data_file.truncate()
        size -= torn
        result.truncated_bytes = torn

    num_pages = size // page_size
    for page_id, image in committed.items():
        if page_id >= num_pages:
            # Zero-fill the gap so the file stays page-aligned even if
            # the log references pages out of order.
            data_file.seek(num_pages * page_size)
            data_file.write(b"\x00" * ((page_id - num_pages) * page_size))
            num_pages = page_id + 1
        data_file.seek(page_id * page_size)
        data_file.write(image)
        if guard is not None:
            guard.stamp(page_id, image)
        result.pages_applied += 1
    if result.pages_applied or result.truncated_bytes:
        fsync_file(data_file)
    return result


def recover_path(data_path, wal_path, page_size=None, guard_path=None):
    """Path-based wrapper around :func:`recover` (the ``prix recover``
    entry point).

    Missing files are fine: no log means nothing to redo, and a missing
    data file is created empty so committed images can be replayed into
    it.  When a checksum sidecar exists (``guard_path``, default
    ``data_path + ".sum"``), replayed images are restamped into it.
    Returns a :class:`RecoveryResult` (``clean`` when there was no
    log).
    """
    from repro.storage.wal import _HEADER, WriteAheadLog

    if not os.path.exists(wal_path):
        return RecoveryResult()
    # Sanctioned raw open, mirroring the superblock sniff in
    # prix/index.py: recovery runs before any Pager can exist (the data
    # file may be torn to a non-page-multiple length the Pager rejects),
    # and every byte written here is a committed page image that normal
    # operation already counted when it was first dirtied.
    mode = "r+b" if os.path.exists(data_path) else "w+b"
    with open(data_path, mode) as data_file:  # prixlint: disable=no-raw-io
        if page_size is None:
            with open(wal_path, "rb") as peek:  # prixlint: disable=no-raw-io
                header = WriteAheadLog._parse_header(
                    peek.read(_HEADER.size))
            if header is None:
                # Unreadable header: a crash caught checkpoint truncation
                # mid-write.  The data file was fsynced before truncation
                # began, so there is nothing to redo.
                return RecoveryResult()
            _, page_size = header
        if guard_path is None:
            guard_path = data_path + ".sum"
        guard = None
        try:
            if os.path.exists(guard_path):
                from repro.storage.guard import PageGuard
                guard = PageGuard.open(guard_path, page_size)
            with WriteAheadLog.open(wal_path, page_size) as wal:
                return recover(data_file, wal, page_size=page_size,
                               guard=guard)
        finally:
            if guard is not None:
                guard.close()
