"""Errors raised by the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class PageOverflowError(StorageError):
    """A record or node entry is too large for a single page."""


class PageNotFoundError(StorageError):
    """A page id is outside the allocated range of the file."""


class PageSizeError(StorageError, ValueError):
    """A page image does not match the configured page size.

    Raised instead of silently resizing a buffer frame: a short ``put``
    would shrink the in-pool image and the eventual write-back would then
    corrupt the file (or fail far from the buggy caller).
    """


class KeyNotFoundError(StorageError, KeyError):
    """A delete or exact lookup referenced a key that is absent."""
