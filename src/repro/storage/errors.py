"""Errors raised by the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class PageOverflowError(StorageError):
    """A record or node entry is too large for a single page."""


class PageNotFoundError(StorageError):
    """A page id is outside the allocated range of the file."""


class KeyNotFoundError(StorageError, KeyError):
    """A delete or exact lookup referenced a key that is absent."""
