"""Errors raised by the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class PageOverflowError(StorageError):
    """A record or node entry is too large for a single page."""


class PageNotFoundError(StorageError):
    """A page id is outside the allocated range of the file."""


class PageSizeError(StorageError, ValueError):
    """A page image does not match the configured page size.

    Raised instead of silently resizing a buffer frame: a short ``put``
    would shrink the in-pool image and the eventual write-back would then
    corrupt the file (or fail far from the buggy caller).
    """


class KeyNotFoundError(StorageError, KeyError):
    """A delete or exact lookup referenced a key that is absent."""


class PinProtocolError(StorageError):
    """The pin/unpin discipline of the buffer pool was violated.

    Raised on unpinning a frame whose pin count is already zero (the
    old behaviour -- silently going negative -- would let a later pin
    be "cancelled" by an unrelated earlier bug), and on operations that
    would invalidate a pinned frame, such as clearing the pool while
    pins are outstanding.
    """


class BufferPoolExhaustedError(StorageError):
    """Every frame is pinned, so no page can be admitted or evicted.

    Hitting this means pins are being held across too much work (or
    leaked); the cure is narrower pin scopes, not a bigger pool.
    """
