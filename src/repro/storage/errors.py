"""Errors raised by the storage substrate."""


class StorageError(Exception):
    """Base class for storage-layer failures."""


class PageOverflowError(StorageError):
    """A record or node entry is too large for a single page."""


class PageNotFoundError(StorageError):
    """A page id is outside the allocated range of the file."""


class PageRangeError(PageNotFoundError, IndexError):
    """A read or write referenced a page id outside ``[0, num_pages)``.

    Subclasses :class:`PageNotFoundError` so existing handlers keep
    working, and :class:`IndexError` because an out-of-range page id is
    exactly an out-of-range index into the page file.  Raised instead of
    letting the pager silently extend the file (a write past the end
    would allocate pages behind the allocator's back) or surfacing a raw
    ``OSError``/``ValueError`` from a negative seek far from the buggy
    caller.
    """


class WalError(StorageError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """A WAL frame failed validation somewhere other than the tail.

    A torn *tail* is the expected signature of a crash and is handled by
    recovery (the tail is discarded); a bad frame with valid frames
    after it means the log was damaged at rest and replaying past it
    could resurrect inconsistent pages.
    """


class WalProtocolError(WalError):
    """The WAL-before-data discipline was violated.

    Raised when a dirty page would reach the data file before the log
    record covering it is durable, or when an uncommitted dirty page
    would be stolen (written back mid-transaction) -- the redo-only
    recovery pass cannot undo stolen writes, so the no-steal rule is
    load-bearing, not stylistic.
    """


class PageSizeError(StorageError, ValueError):
    """A page image does not match the configured page size.

    Raised instead of silently resizing a buffer frame: a short ``put``
    would shrink the in-pool image and the eventual write-back would then
    corrupt the file (or fail far from the buggy caller).
    """


class KeyNotFoundError(StorageError, KeyError):
    """A delete or exact lookup referenced a key that is absent."""


class PinProtocolError(StorageError):
    """The pin/unpin discipline of the buffer pool was violated.

    Raised on unpinning a frame the calling thread holds no pin on (the
    old behaviour -- silently going negative -- would let a later pin
    be "cancelled" by an unrelated earlier bug), and on operations that
    would invalidate a pinned frame, such as clearing the pool while
    pins are outstanding.  Pins are thread-owned, so the message names
    the offending thread and the threads actually holding pins --
    enough to diagnose a concurrent pin bug from the message alone.
    """


class BufferPoolExhaustedError(StorageError):
    """Every frame is pinned, so no page can be admitted or evicted.

    Hitting this means pins are being held across too much work (or
    leaked); the cure is narrower pin scopes, not a bigger pool.  The
    message reports the capacity, the outstanding pin count and the
    owning thread names, so a concurrent exhaustion is attributable
    without a debugger.
    """


class ReadOnlyBackendError(StorageError):
    """A mutation reached a read-only storage backend.

    The mmap serving backend maps the index file for concurrent readers
    and cannot accept writes, allocations, or a write-ahead log; raising
    a typed error at the first mutating call keeps the failure at the
    call site instead of surfacing later as a torn flush.
    """


class TransientStorageError(StorageError):
    """A read failed for a reason that is expected to heal on retry.

    Raised by the chaos layer (:class:`repro.storage.faults.ChaosBackend`)
    to model the environmental failures a networked or degraded disk
    exhibits -- a dropped request, a device briefly offline, an I/O
    retry-storm -- without tearing any durable state.  The serving tier
    maps it to a typed 500 so a retrying client (``repro.serve.client``)
    can tell "try again" apart from "the bytes are bad"
    (:class:`CorruptionError`) and "you asked wrong" (``ValueError``).
    """


class CorruptionError(StorageError):
    """Base class for at-rest corruption detected by the checksum guard.

    Distinct from :class:`WalProtocolError`-style programming errors:
    corruption is an *environmental* failure (bit rot, torn hardware,
    a misdirected write) that the engine must surface as a typed,
    catchable condition -- never as a silently wrong query answer.
    """


class PageCorruptionError(CorruptionError):
    """A page image failed checksum verification and could not be
    repaired from the write-ahead log.

    Carries the page id so operators can correlate with ``prix scrub``
    output.  Once raised for a page, the guard quarantines that id:
    further reads fail fast with this error instead of re-verifying (and
    potentially handing out) a known-bad image.
    """

    def __init__(self, page_id, message=None, quarantined=False):
        self.page_id = page_id
        self.quarantined = quarantined
        if message is None:
            message = (f"page {page_id} is quarantined" if quarantined
                       else f"page {page_id} failed checksum verification")
        super().__init__(message)


class SuperblockError(CorruptionError, ValueError):
    """The index superblock or catalog is missing or unreadable.

    Subclasses :class:`ValueError` so pre-guard callers that caught the
    old untyped superblock failure keep working, while new callers (the
    CLI's exit-code mapping, ``prix scrub``) can treat it as corruption.
    """
