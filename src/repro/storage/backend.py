"""The pluggable storage kernel: ``StorageBackend`` and its backends.

This module is the **storage-api** layer -- the only door through which
the logical index layers (``repro.trie``, ``repro.prix``,
``repro.query``) may reach the page substrate.  The ``prixarch``
layering rule (``.prixarch.toml``) enforces that statically: an import
of ``repro.storage.pager`` or ``repro.storage.wal`` from the logical
layers is a lint finding with the witness import chain attached.

The contract is :class:`StorageBackend`: a buffer-pool-shaped object
that serves page images, tracks dirty state, honours pins, and owns the
durability (WAL) and integrity (guard) machinery behind ``flush`` /
``commit`` / ``checkpoint`` / ``close``.  Three implementations ship:

- :class:`FilePagerBackend` -- the production stack (``Pager`` + LRU
  buffer pool + optional WAL and checksum guard) over a real file or an
  in-memory buffer;
- :class:`InMemoryArenaBackend` -- the same pool over an
  :class:`~repro.storage.arena.ArenaPager` (process memory, no file
  objects at all): tests and benchmarks;
- :class:`MmapBackend` -- a read-only pool over an
  :class:`~repro.storage.mmapio.MmapPager` for serving a finished
  index; every mutation raises
  :class:`~repro.storage.errors.ReadOnlyBackendError`.

All three run the *same* ``BufferPool`` code above the substrate, so
the paper's "Disk IO pages" accounting is byte-identical across
backends by construction.  Implementations are marked with a
``# priximpl: StorageBackend`` class annotation; the prixarch
conformance rule checks their method signatures, typed-exception
vocabulary and inferred effects against the protocol's declared effect
sets (``# prixeffect: declares=...``).
"""

from __future__ import annotations

from typing import Protocol

from repro.storage.arena import ArenaPager
from repro.storage.buffer_pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.errors import ReadOnlyBackendError
from repro.storage.guard import PageGuard
from repro.storage.mmapio import MmapPager
from repro.storage.pager import DEFAULT_PAGE_SIZE, Pager
from repro.storage.wal import SYNC_COMMIT, WriteAheadLog

__all__ = [
    "DEFAULT_PAGE_SIZE", "DEFAULT_POOL_PAGES", "SYNC_COMMIT",
    "StorageBackend", "FilePagerBackend", "InMemoryArenaBackend",
    "MmapBackend", "create_backend", "open_backend", "recover_backend",
    "recover_files", "backend_from_files",
]


class StorageBackend(Protocol):
    """Structural contract between the logical index and the page store.

    The effect sets on each method are *upper bounds*: an
    implementation's inferred effects must be a subset of the protocol
    method's declared effects (checked by the ``backend-conformance``
    lint rule).  Typed failure vocabulary: :class:`PageRangeError` for
    out-of-range ids, :class:`PageSizeError` for short images,
    :class:`PinProtocolError` / :class:`BufferPoolExhaustedError` for
    pin misuse, :class:`WalProtocolError` for durability-ordering
    violations, :class:`PageCorruptionError` for guard failures, and
    :class:`ReadOnlyBackendError` from read-only backends' mutators.
    """

    #: Backend family name ("file", "arena", "mmap") for diagnostics.
    kind: str

    @property
    def page_size(self):
        """Size in bytes of every page image this backend serves."""
        ...

    @property
    def num_pages(self):
        """Number of pages currently allocated in the substrate."""
        ...

    @property
    def stats(self):
        """The shared :class:`~repro.storage.stats.IOStats` counters."""
        ...

    @property
    def guard(self):
        """The attached checksum guard, or None (unverified reads)."""
        ...

    @property
    def wal(self):
        """The attached write-ahead log, or None (non-durable)."""
        ...

    def get(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Return the page image (logical read; physical on a miss).

        Reads carry ``wal-io`` in their effect bound because admitting
        a page can evict a dirty frame, and a no-steal write-back must
        first prove the frame's log record durable.
        """
        ...

    def get_decoded(self, page_id, decoder):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Return ``decoder(page_id, frame)`` memoized per residency."""
        ...

    def put(self, page_id, data):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Replace the image of ``page_id`` and mark it dirty."""
        ...

    def new_page(self):  # prixeffect: declares=alloc-page,pager-io,wal-io,latch-acquire,stats-mutate
        """Allocate a fresh zeroed page; return ``(page_id, frame)``."""
        ...

    def mark_dirty(self, page_id):  # prixeffect: declares=latch-acquire
        """Flag an in-place mutation of a resident page image."""
        ...

    def pin(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Pin the frame against eviction; return the live image."""
        ...

    def unpin(self, page_id):  # prixeffect: declares=latch-acquire
        """Release one of the calling thread's pins on ``page_id``."""
        ...

    def pinned(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Context manager pairing :meth:`pin` with :meth:`unpin`."""
        ...

    def attach_wal(self, wal):  # prixeffect: declares=latch-acquire
        """Route every later mutation through ``wal`` before the data
        file (no-steal, WAL-before-data)."""
        ...

    def commit(self):  # prixeffect: declares=wal-io,latch-acquire,stats-mutate
        """Seal the current mutation batch in the log; return its LSN
        (None without a WAL)."""
        ...

    def checkpoint(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Flush everything, sync the data file, truncate the log."""
        ...

    def flush(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Write every dirty page back without evicting anything."""
        ...

    def flush_and_clear(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Write back all dirty pages and empty the pool (cold cache)."""
        ...

    def sync(self):  # prixeffect: declares=pager-io
        """Force the substrate (and guard sidecar) to stable storage."""
        ...

    def close(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Flush, make the stack durable, and release every handle."""
        ...


class FilePagerBackend(BufferPool):  # priximpl: StorageBackend
    """The production backend: LRU buffer pool over a file ``Pager``.

    Subclasses :class:`BufferPool` rather than wrapping it so the hot
    path (``get`` on a resident page) stays one virtual call -- the
    paper's query loop lives on that path.  What the subclass adds is
    the *ownership* story the pool alone never had: :meth:`close` tears
    down the whole stack (flush, data-file fsync, WAL close, pager
    close) in WAL-before-data order, and :meth:`sync` exposes the
    substrate's durability barrier.
    """

    kind = "file"

    @property
    def num_pages(self):
        """Number of pages allocated in the backing substrate."""
        return self._pager.num_pages

    def sync(self):  # prixeffect: declares=pager-io
        """Fsync the data file (and guard sidecar) where supported."""
        self._pager.sync()

    def close(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Flush and close the full stack (pool, WAL, pager, guard).

        ``flush`` commits and orders the log ahead of the data pages;
        the data file is then fsynced so closing is a durability point,
        and only then is the log handle released.
        """
        self.flush()
        wal = self._wal
        if wal is not None:
            self._pager.sync()
            wal.close()
        self._pager.close()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path, page_size=DEFAULT_PAGE_SIZE, pool_pages=None,
             guard=None):
        """Backend over the page file at ``path`` (created if absent)."""
        pager = Pager.open(path, page_size=page_size, guard=guard)
        return cls(pager, capacity=pool_pages or DEFAULT_POOL_PAGES)

    @classmethod
    def in_memory(cls, page_size=DEFAULT_PAGE_SIZE, pool_pages=None,
                  guard=None):
        """Backend over an in-memory file object (``io.BytesIO``)."""
        pager = Pager.in_memory(page_size=page_size, guard=guard)
        return cls(pager, capacity=pool_pages or DEFAULT_POOL_PAGES)

    @classmethod
    def from_file(cls, fileobj, page_size=DEFAULT_PAGE_SIZE,
                  pool_pages=None, guard=None):
        """Backend over an already-open file object (fault injection)."""
        pager = Pager(fileobj, page_size=page_size, guard=guard)
        return cls(pager, capacity=pool_pages or DEFAULT_POOL_PAGES)


class InMemoryArenaBackend(FilePagerBackend):  # priximpl: StorageBackend
    """Backend over process memory: the same pool, no file objects.

    Exists for tests and benchmarks that want the full storage protocol
    -- pins, eviction, guard verification, typed errors -- without a
    filesystem.  Because only the substrate differs, every ``IOStats``
    counter behaves exactly as on :class:`FilePagerBackend`.
    """

    kind = "arena"

    def __init__(self, page_size=DEFAULT_PAGE_SIZE, pool_pages=None,
                 guard=None):
        pager = ArenaPager(page_size=page_size, guard=guard)
        super().__init__(pager, capacity=pool_pages or DEFAULT_POOL_PAGES)

    @classmethod
    def preload(cls, path, page_size=DEFAULT_PAGE_SIZE, pool_pages=None,
                guard=None):  # prixeffect: declares=raw-io,pager-io,wal-io,alloc-page,latch-acquire,stats-mutate
        """Arena backend warm-loaded from the saved index at ``path``.

        Every page of the file is copied into process memory once, up
        front, and the I/O counters are then reset -- so the snapshot
        serves queries with **zero** physical page reads afterwards (the
        serving tier's hot-index mode; ``docs/SERVING.md``).  The copy
        is a *snapshot*: it is never written back, so mutations on it
        die with the process -- which is why :func:`open_backend`
        refuses to attach a write-ahead log to one.

        ``guard`` (an opened :class:`PageGuard` sidecar) is attached
        *after* the raw copy, so later reads verify the arena images
        against the on-disk stamps exactly as the file backend would.
        """
        backend = cls(page_size=page_size, pool_pages=pool_pages)
        source = Pager.open(path, page_size=page_size)
        try:
            arena = backend._pager
            for page_id in range(source.num_pages):
                arena.allocate()
                arena.write(page_id, source.read_raw(page_id))
        finally:
            source.close()
        if guard is not None:
            backend._pager.attach_guard(guard)
        backend.stats.reset()
        return backend


class MmapBackend(FilePagerBackend):  # priximpl: StorageBackend
    """Read-only serving backend over a memory-mapped index file.

    Mutating entry points raise
    :class:`~repro.storage.errors.ReadOnlyBackendError` at the backend
    boundary -- before any pool state changes -- so a logical-layer bug
    that tries to write through a serving index fails at its call site
    with nothing to roll back.
    """

    kind = "mmap"

    def __init__(self, path, page_size=DEFAULT_PAGE_SIZE, pool_pages=None,
                 guard=None):
        pager = MmapPager(path, page_size=page_size, guard=guard)
        super().__init__(pager, capacity=pool_pages or DEFAULT_POOL_PAGES)

    def put(self, page_id, data):
        raise ReadOnlyBackendError(
            f"cannot put page {page_id} on a read-only mmap backend")

    def new_page(self):
        raise ReadOnlyBackendError(
            "cannot allocate a page on a read-only mmap backend")

    def mark_dirty(self, page_id):
        raise ReadOnlyBackendError(
            f"cannot dirty page {page_id} on a read-only mmap backend")

    def attach_wal(self, wal):
        raise ReadOnlyBackendError(
            "cannot attach a write-ahead log to a read-only mmap backend")


# ----------------------------------------------------------------------
# Wiring: the index-level factories
# ----------------------------------------------------------------------

def _open_guard(options):
    """Open the checksum sidecar named by an ``IndexOptions``."""
    if options.file_factory is not None:
        return PageGuard(options.file_factory("guard"), options.page_size)
    if options.path is None:
        return PageGuard.in_memory(options.page_size)
    guard_path = options.guard_path
    if guard_path is None:
        guard_path = options.path + ".sum"
    return PageGuard.open(guard_path, options.page_size)


def _open_wal(options, stats):
    """Open the write-ahead log named by an ``IndexOptions``."""
    if options.file_factory is not None:
        return WriteAheadLog(options.file_factory("wal"),
                             options.page_size, stats=stats,
                             sync_policy=options.wal_sync)
    wal_path = options.wal_path
    if wal_path is None:
        if options.path is None:
            raise ValueError(
                "durable=True needs a path (or a file_factory) for "
                "the write-ahead log")
        wal_path = options.path + ".wal"
    return WriteAheadLog.open(wal_path, options.page_size, stats=stats,
                              sync_policy=options.wal_sync)


def create_backend(options):
    """Build-time wiring: guard + substrate + pool + WAL per
    ``IndexOptions``.

    ``options.backend`` selects the substrate family: ``"file"`` (the
    default -- real file, ``file_factory`` object, or in-memory buffer
    when ``path`` is None) or ``"arena"`` (pure process memory).  The
    read-only ``"mmap"`` backend cannot host a build and is rejected
    with the typed error.
    """
    guard = _open_guard(options) if options.guard else None
    kind = getattr(options, "backend", "file")
    if kind == "arena":
        backend = InMemoryArenaBackend(page_size=options.page_size,
                                       pool_pages=options.pool_pages,
                                       guard=guard)
    elif kind == "file":
        if options.file_factory is not None:
            pager = Pager(options.file_factory("data"),
                          page_size=options.page_size, guard=guard)
        elif options.path is None:
            pager = Pager.in_memory(page_size=options.page_size,
                                    guard=guard)
        else:
            pager = Pager.open(options.path, page_size=options.page_size,
                               guard=guard)
        backend = FilePagerBackend(pager, capacity=options.pool_pages)
    elif kind == "mmap":
        raise ReadOnlyBackendError(
            "cannot build an index onto the read-only mmap backend; "
            "build with backend='file' and serve the saved file")
    else:
        raise ValueError(f"unknown storage backend {kind!r} "
                         "(expected 'file', 'arena' or 'mmap')")
    if options.durable:
        backend.attach_wal(_open_wal(options, backend.stats))
    return backend


def recover_backend(path, wal_path, guard_path=None):
    """Replay the committed WAL tail into the data file at ``path``.

    The pre-open recovery pass: run *before* the superblock is read so
    an index torn by a crash opens in its last committed state.
    """
    from repro.storage.recovery import recover_path
    recover_path(path, wal_path, guard_path=guard_path)


def open_backend(path, page_size, pool_pages=None, kind="file",
                 durable=False, wal_path=None, wal_sync=SYNC_COMMIT,
                 guard=False, guard_path=None, chaos=None):
    """Reattach wiring for a saved index whose page size is known.

    ``kind="file"`` reopens the writable production stack (optionally
    durable); ``kind="mmap"`` maps the file read-only for serving --
    asking for a WAL there is a :class:`ReadOnlyBackendError` because a
    read-only backend has nothing to log.  ``kind="arena"`` copies the
    whole file into process memory once (a warm snapshot: pool misses
    are served from RAM, :meth:`InMemoryArenaBackend.preload`);
    attaching a WAL there is equally refused because changes to a
    snapshot can never reach the index file.

    ``chaos`` (a :class:`~repro.storage.faults.ChaosConfig`) wraps the
    opened backend in a :class:`~repro.storage.faults.ChaosBackend`
    injecting seeded read faults -- the serving tier's chaos mode.
    With ``chaos=None`` (the default) no wrapper exists at all, so the
    "Disk IO pages" accounting is exactly the unwrapped backend's.
    """
    if guard_path is None:
        guard_path = path + ".sum"
    page_guard = PageGuard.open(guard_path, page_size) if guard else None
    if kind == "mmap":
        if durable:
            raise ReadOnlyBackendError(
                "the mmap backend is read-only; it cannot attach a "
                "write-ahead log")
        backend = MmapBackend(path, page_size=page_size,
                              pool_pages=pool_pages, guard=page_guard)
        return _wrap_chaos(backend, chaos)
    if kind == "arena":
        if durable:
            raise ReadOnlyBackendError(
                "the arena backend opens a detached in-memory snapshot; "
                "it cannot attach a write-ahead log")
        backend = InMemoryArenaBackend.preload(path, page_size=page_size,
                                               pool_pages=pool_pages,
                                               guard=page_guard)
        return _wrap_chaos(backend, chaos)
    if kind != "file":
        raise ValueError(f"unknown storage backend {kind!r} for open "
                         "(expected 'file', 'arena' or 'mmap')")
    backend = FilePagerBackend.open(path, page_size=page_size,
                                    pool_pages=pool_pages,
                                    guard=page_guard)
    if durable:
        if wal_path is None:
            wal_path = path + ".wal"
        backend.attach_wal(WriteAheadLog.open(
            wal_path, page_size, stats=backend.stats,
            sync_policy=wal_sync))
    return _wrap_chaos(backend, chaos)


def _wrap_chaos(backend, chaos):
    """Wrap ``backend`` in a :class:`ChaosBackend` when a config is
    given; imported lazily so the fault injector stays optional."""
    if chaos is None:
        return backend
    from repro.storage.faults import ChaosBackend
    return ChaosBackend(backend, chaos)


def recover_files(data_file, wal_file, guard_file=None,
                  wal_sync=SYNC_COMMIT):
    """Crash recovery over already-open file objects.

    Parses the log header for the page size, replays the committed tail
    into ``data_file``, and returns ``(wal, guard)`` ready to reattach.
    Returns ``(None, None)`` when the log header never became durable
    (a crash before the first frame): the caller should start a fresh
    log generation via :func:`backend_from_files`.
    """
    from repro.storage.recovery import recover
    from repro.storage.wal import _HEADER
    wal_file.seek(0)
    header = WriteAheadLog._parse_header(wal_file.read(_HEADER.size))
    if header is None:
        return None, None
    wal = WriteAheadLog(wal_file, header[1], sync_policy=wal_sync)
    guard = (PageGuard(guard_file, header[1])
             if guard_file is not None else None)
    recover(data_file, wal, guard=guard)
    return wal, guard


def backend_from_files(data_file, page_size, pool_pages=None, wal=None,
                       wal_file=None, guard=None, guard_file=None,
                       wal_sync=SYNC_COMMIT):
    """Backend over open file objects (the crash/corruption harnesses).

    ``wal``/``guard`` are the live objects :func:`recover_files`
    returned; when recovery yielded no log (header never durable) but a
    ``wal_file`` is present, a fresh log generation is started so the
    reopened index can keep logging.
    """
    if guard_file is not None and guard is None:
        guard = PageGuard(guard_file, page_size)
    pager = Pager(data_file, page_size=page_size, guard=guard)
    backend = FilePagerBackend(pager, capacity=pool_pages
                               or DEFAULT_POOL_PAGES)
    if wal is None and wal_file is not None:
        wal = WriteAheadLog(wal_file, page_size, sync_policy=wal_sync)
    if wal is not None:
        wal.stats = backend.stats
        backend.attach_wal(wal)
    return backend
