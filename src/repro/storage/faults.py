"""Deterministic crash and fault injection for the storage engine.

The recovery guarantees in :mod:`repro.storage.recovery` are only as
good as the crash model they were tested under.  This module supplies
that model:

- :class:`FaultyFile` is a self-contained in-memory file that separates
  the bytes the *process* wrote (``volatile``, the OS page cache) from
  the bytes that survive a crash (``durable``, the platter).  ``write``
  lands in volatile; ``fsync`` copies volatile to durable; a simulated
  crash throws the volatile state away.  Reads see volatile, exactly as
  a live process does.
- :class:`FaultSchedule` decides, from a seed and a global operation
  counter shared by every file in the run, *where* the crash lands and
  *how*: a clean crash before the write, a torn write that persists only
  a seeded-random prefix, a crash just after, or a crash at an fsync.
  The same seed also silently drops a deterministic subset of fsyncs
  (the barrier succeeds from the caller's view but moves nothing to the
  platter), modelling disks that lie -- recovery must then fall back to
  an older committed prefix rather than corrupt the index.
- :class:`CrashPoint` is the exception a simulated crash raises through
  the engine; the crash-matrix harness catches it, discards every
  volatile byte, and reopens from the durable images alone.

Determinism is the point: a failing ``(seed, crash_at)`` pair is a
complete reproduction recipe, which is what the CI crash-matrix job
uploads on failure.

Two honesty boundaries are deliberate (see ``docs/DURABILITY.md``):
the *log's* fsync is never dropped (a lying barrier under the WAL
falsifies the durability watermark itself, which no redo-only design
survives), and log truncation at a checkpoint trusts the data-file
fsync that precedes it -- so dropped-fsync injection targets data-file
traffic during builds and inserts, exactly what the matrix crashes.
"""

from __future__ import annotations

import hashlib
import io


class CrashPoint(Exception):
    """A simulated crash: the process loses every non-fsynced byte."""

    def __init__(self, op_index, kind, name):
        super().__init__(
            f"injected crash at IO op {op_index} ({kind} on {name})")
        self.op_index = op_index
        self.kind = kind
        self.name = name


#: Crash kinds a schedule can inject at a write.
KIND_BEFORE_WRITE = "crash-before-write"
KIND_TORN_WRITE = "torn-write"
KIND_AFTER_WRITE = "crash-after-write"
KIND_AT_FSYNC = "crash-at-fsync"
KIND_DROPPED_FSYNC = "dropped-fsync"


def _mix(seed, op_index, salt):
    """Deterministic 64-bit hash of (seed, op, salt); no global RNG."""
    digest = hashlib.sha256(
        f"{seed}:{op_index}:{salt}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultSchedule:
    """Seeded decisions over a shared, monotonically counted op stream.

    Every durable-relevant operation (each ``write``, each ``fsync``) on
    every :class:`FaultyFile` sharing this schedule consumes one index
    from the counter.  ``crash_at`` selects the op that crashes (None
    records the run without crashing, which is how the harness measures
    how many injection points an operation has); the seed chooses the
    crash flavour and which fsyncs are silently dropped.
    """

    #: One in this many fsyncs is silently dropped (seed-selected).
    DROP_FSYNC_PERIOD = 5

    def __init__(self, seed, crash_at=None, drop_fsyncs=True):
        self.seed = seed
        self.crash_at = crash_at
        self.drop_fsyncs = drop_fsyncs
        self.ops = 0
        self.crashed = None   # the CrashPoint raised, once raised

    def next_op(self):
        """Claim the next operation index."""
        index = self.ops
        self.ops += 1
        return index

    def write_fault(self, op_index):
        """Crash kind for write op ``op_index``, or None to proceed."""
        if op_index != self.crash_at:
            return None
        choice = _mix(self.seed, op_index, "write-kind") % 3
        return (KIND_BEFORE_WRITE, KIND_TORN_WRITE,
                KIND_AFTER_WRITE)[choice]

    def torn_length(self, op_index, total):
        """How many bytes of a torn write reach the volatile image."""
        if total <= 1:
            return 0
        return _mix(self.seed, op_index, "torn-len") % total

    def fsync_fault(self, op_index, droppable=True):
        """Fault for fsync op ``op_index``: crash, drop, or None.

        ``droppable`` is False for the log file: a lying fsync under the
        WAL pulls the durability watermark itself out from under the
        engine, which no redo-only design survives (the same barrier
        PostgreSQL must trust).  Data-file fsyncs *are* droppable --
        every committed image stays in the log until a checkpoint, so
        recovery redoes whatever the data fsync silently lost.
        """
        if op_index == self.crash_at:
            return KIND_AT_FSYNC
        if (droppable and self.drop_fsyncs
                and _mix(self.seed, op_index, "drop") %
                self.DROP_FSYNC_PERIOD == 0):
            return KIND_DROPPED_FSYNC
        return None

    def crash(self, op_index, kind, name):
        """Raise (and remember) the injected crash."""
        self.crashed = CrashPoint(op_index, kind, name)
        raise self.crashed

    def describe(self):
        """JSON-ready reproduction recipe for this schedule."""
        return {"seed": self.seed, "crash_at": self.crash_at,
                "drop_fsyncs": self.drop_fsyncs, "ops_seen": self.ops}


#: At-rest corruption kinds the injector can apply to a durable image.
KIND_BIT_FLIP = "bit-flip"
KIND_ZERO_PAGE = "zero-page"
KIND_MISDIRECTED_WRITE = "misdirected-write"

CORRUPTION_KINDS = (KIND_BIT_FLIP, KIND_ZERO_PAGE, KIND_MISDIRECTED_WRITE)


def corruption_plan(seed, point, num_pages, page_size):
    """Seeded decision of *what* corruption lands *where*.

    ``point`` plays the role ``crash_at`` plays for crashes: sweeping it
    enumerates distinct corruptions under one seed.  Returns a dict
    describing the corruption (a JSON-ready reproduction recipe, like
    :meth:`FaultSchedule.describe`), or None when the file has no pages.
    """
    if num_pages <= 0:
        return None
    kind = CORRUPTION_KINDS[_mix(seed, point, "corrupt-kind")
                            % len(CORRUPTION_KINDS)]
    page_id = _mix(seed, point, "corrupt-page") % num_pages
    plan = {"seed": seed, "point": point, "kind": kind, "page": page_id}
    if kind == KIND_BIT_FLIP:
        plan["byte"] = _mix(seed, point, "corrupt-byte") % page_size
        plan["bit"] = _mix(seed, point, "corrupt-bit") % 8
    elif kind == KIND_MISDIRECTED_WRITE:
        if num_pages == 1:
            # Nowhere to misdirect from; degrade to zeroing the page.
            plan["kind"] = KIND_ZERO_PAGE
        else:
            source = _mix(seed, point, "corrupt-source") % num_pages
            if source == page_id:
                source = (source + 1) % num_pages
            plan["source"] = source
    return plan


def inject_corruption(data, page_size, seed, point):
    """Deterministically corrupt one page of an at-rest page image.

    Models the failures the checksum guard exists to catch: a flipped
    bit (media rot), a zeroed page (a lost write over a trimmed block),
    or a misdirected write (another page's intact image landing at the
    wrong offset -- the case a payload-only checksum would miss, see
    :func:`repro.storage.codec.page_checksum`).  Returns
    ``(corrupted_bytes, plan)`` where ``plan`` is the recipe from
    :func:`corruption_plan` (None, with the data unchanged, for an empty
    file).
    """
    plan = corruption_plan(seed, point, len(data) // page_size, page_size)
    if plan is None:
        return bytes(data), None
    data = bytearray(data)
    start = plan["page"] * page_size
    if plan["kind"] == KIND_BIT_FLIP:
        data[start + plan["byte"]] ^= 1 << plan["bit"]
    elif plan["kind"] == KIND_ZERO_PAGE:
        data[start:start + page_size] = b"\x00" * page_size
    else:
        source = plan["source"] * page_size
        data[start:start + page_size] = data[source:source + page_size]
    return bytes(data), plan


class FaultyFile:
    """In-memory file with a volatile/durable split and fault hooks.

    Implements the file-object surface the :class:`Pager` and
    :class:`WriteAheadLog` use (``read``/``write``/``seek``/``tell``/
    ``flush``/``truncate``/``close``) plus ``fsync``, which
    :func:`repro.storage.pager.fsync_file` prefers over ``os.fsync``
    when present.  After a crash, :meth:`durable_bytes` is what a fresh
    process would find on disk.
    """

    def __init__(self, schedule, name="file", droppable_fsync=True):
        self._schedule = schedule
        self.name = name
        self.droppable_fsync = droppable_fsync
        self._volatile = bytearray()
        self._durable = b""
        self._pos = 0
        self._closed = False

    # -- file protocol -------------------------------------------------

    def seek(self, offset, whence=0):
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = len(self._volatile) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if self._pos < 0:
            raise ValueError("negative seek position")
        return self._pos

    def tell(self):
        return self._pos

    def read(self, size=-1):
        end = (len(self._volatile) if size is None or size < 0
               else min(self._pos + size, len(self._volatile)))
        data = bytes(self._volatile[self._pos:end])
        self._pos = end
        return data

    def write(self, data):
        data = bytes(data)
        op = self._schedule.next_op()
        kind = self._schedule.write_fault(op)
        if kind == KIND_BEFORE_WRITE:
            self._schedule.crash(op, kind, self.name)
        if kind == KIND_TORN_WRITE:
            keep = self._schedule.torn_length(op, len(data))
            self._apply(data[:keep])
            self._schedule.crash(op, kind, self.name)
        self._apply(data)
        if kind == KIND_AFTER_WRITE:
            self._schedule.crash(op, kind, self.name)
        return len(data)

    def _apply(self, data):
        end = self._pos + len(data)
        if end > len(self._volatile):
            self._volatile.extend(
                b"\x00" * (end - len(self._volatile)))
        self._volatile[self._pos:end] = data
        self._pos = end

    def truncate(self, size=None):
        if size is None:
            size = self._pos
        del self._volatile[size:]
        return size

    def flush(self):
        """A libc-level flush: no durability implied (the OS still has
        the bytes), so no op is consumed and no fault can land here."""

    def fsync(self):
        """The durability barrier (called via ``fsync_file``)."""
        op = self._schedule.next_op()
        kind = self._schedule.fsync_fault(op, self.droppable_fsync)
        if kind == KIND_AT_FSYNC:
            self._schedule.crash(op, kind, self.name)
        if kind == KIND_DROPPED_FSYNC:
            return
        self._durable = bytes(self._volatile)

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed

    # -- harness side --------------------------------------------------

    @classmethod
    def from_bytes(cls, schedule, data, name="file", droppable_fsync=True):
        """A file whose volatile *and* durable state start as ``data``.

        Models reopening a file that survived an earlier crash: the
        bytes are already on the platter, so seeding them consumes no
        operations from the schedule.
        """
        faulty = cls(schedule, name=name, droppable_fsync=droppable_fsync)
        faulty._volatile = bytearray(data)
        faulty._durable = bytes(data)
        return faulty

    def durable_bytes(self):
        """The bytes a post-crash reopen would find."""
        return self._durable

    def reopen_durable(self):
        """A plain ``BytesIO`` over the durable image (post-crash view)."""
        return io.BytesIO(self._durable)
