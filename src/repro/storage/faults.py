"""Deterministic crash and fault injection for the storage engine.

The recovery guarantees in :mod:`repro.storage.recovery` are only as
good as the crash model they were tested under.  This module supplies
that model:

- :class:`FaultyFile` is a self-contained in-memory file that separates
  the bytes the *process* wrote (``volatile``, the OS page cache) from
  the bytes that survive a crash (``durable``, the platter).  ``write``
  lands in volatile; ``fsync`` copies volatile to durable; a simulated
  crash throws the volatile state away.  Reads see volatile, exactly as
  a live process does.
- :class:`FaultSchedule` decides, from a seed and a global operation
  counter shared by every file in the run, *where* the crash lands and
  *how*: a clean crash before the write, a torn write that persists only
  a seeded-random prefix, a crash just after, or a crash at an fsync.
  The same seed also silently drops a deterministic subset of fsyncs
  (the barrier succeeds from the caller's view but moves nothing to the
  platter), modelling disks that lie -- recovery must then fall back to
  an older committed prefix rather than corrupt the index.
- :class:`CrashPoint` is the exception a simulated crash raises through
  the engine; the crash-matrix harness catches it, discards every
  volatile byte, and reopens from the durable images alone.

Determinism is the point: a failing ``(seed, crash_at)`` pair is a
complete reproduction recipe, which is what the CI crash-matrix job
uploads on failure.

Two honesty boundaries are deliberate (see ``docs/DURABILITY.md``):
the *log's* fsync is never dropped (a lying barrier under the WAL
falsifies the durability watermark itself, which no redo-only design
survives), and log truncation at a checkpoint trusts the data-file
fsync that precedes it -- so dropped-fsync injection targets data-file
traffic during builds and inserts, exactly what the matrix crashes.

Beyond crashes, the module also supplies the *live* fault model for the
serving tier (``docs/ROBUSTNESS.md``, "Chaos & resilience"):
:class:`ChaosBackend` wraps any :class:`~repro.storage.backend.
StorageBackend` and injects seeded, schedule-driven read faults --
transient errors, latency, checksum-corrupting reads that exercise the
guard's read-repair/quarantine machinery, and fail-then-heal windows --
while delegating every mutation untouched.  Like :class:`FaultSchedule`,
a :class:`ChaosConfig` is a complete reproduction recipe.
"""

from __future__ import annotations

import hashlib
import io
import time
from dataclasses import asdict, dataclass

from repro.storage.errors import (PageCorruptionError,
                                  TransientStorageError)
from repro.storage.latch import Latch


class CrashPoint(Exception):
    """A simulated crash: the process loses every non-fsynced byte."""

    def __init__(self, op_index, kind, name):
        super().__init__(
            f"injected crash at IO op {op_index} ({kind} on {name})")
        self.op_index = op_index
        self.kind = kind
        self.name = name


#: Crash kinds a schedule can inject at a write.
KIND_BEFORE_WRITE = "crash-before-write"
KIND_TORN_WRITE = "torn-write"
KIND_AFTER_WRITE = "crash-after-write"
KIND_AT_FSYNC = "crash-at-fsync"
KIND_DROPPED_FSYNC = "dropped-fsync"


def _mix(seed, op_index, salt):
    """Deterministic 64-bit hash of (seed, op, salt); no global RNG."""
    digest = hashlib.sha256(
        f"{seed}:{op_index}:{salt}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultSchedule:
    """Seeded decisions over a shared, monotonically counted op stream.

    Every durable-relevant operation (each ``write``, each ``fsync``) on
    every :class:`FaultyFile` sharing this schedule consumes one index
    from the counter.  ``crash_at`` selects the op that crashes (None
    records the run without crashing, which is how the harness measures
    how many injection points an operation has); the seed chooses the
    crash flavour and which fsyncs are silently dropped.
    """

    #: One in this many fsyncs is silently dropped (seed-selected).
    DROP_FSYNC_PERIOD = 5

    def __init__(self, seed, crash_at=None, drop_fsyncs=True):
        self.seed = seed
        self.crash_at = crash_at
        self.drop_fsyncs = drop_fsyncs
        self.ops = 0
        self.crashed = None   # the CrashPoint raised, once raised

    def next_op(self):
        """Claim the next operation index."""
        index = self.ops
        self.ops += 1
        return index

    def write_fault(self, op_index):
        """Crash kind for write op ``op_index``, or None to proceed."""
        if op_index != self.crash_at:
            return None
        choice = _mix(self.seed, op_index, "write-kind") % 3
        return (KIND_BEFORE_WRITE, KIND_TORN_WRITE,
                KIND_AFTER_WRITE)[choice]

    def torn_length(self, op_index, total):
        """How many bytes of a torn write reach the volatile image."""
        if total <= 1:
            return 0
        return _mix(self.seed, op_index, "torn-len") % total

    def fsync_fault(self, op_index, droppable=True):
        """Fault for fsync op ``op_index``: crash, drop, or None.

        ``droppable`` is False for the log file: a lying fsync under the
        WAL pulls the durability watermark itself out from under the
        engine, which no redo-only design survives (the same barrier
        PostgreSQL must trust).  Data-file fsyncs *are* droppable --
        every committed image stays in the log until a checkpoint, so
        recovery redoes whatever the data fsync silently lost.
        """
        if op_index == self.crash_at:
            return KIND_AT_FSYNC
        if (droppable and self.drop_fsyncs
                and _mix(self.seed, op_index, "drop") %
                self.DROP_FSYNC_PERIOD == 0):
            return KIND_DROPPED_FSYNC
        return None

    def crash(self, op_index, kind, name):
        """Raise (and remember) the injected crash."""
        self.crashed = CrashPoint(op_index, kind, name)
        raise self.crashed

    def describe(self):
        """JSON-ready reproduction recipe for this schedule."""
        return {"seed": self.seed, "crash_at": self.crash_at,
                "drop_fsyncs": self.drop_fsyncs, "ops_seen": self.ops}


#: At-rest corruption kinds the injector can apply to a durable image.
KIND_BIT_FLIP = "bit-flip"
KIND_ZERO_PAGE = "zero-page"
KIND_MISDIRECTED_WRITE = "misdirected-write"

CORRUPTION_KINDS = (KIND_BIT_FLIP, KIND_ZERO_PAGE, KIND_MISDIRECTED_WRITE)


def corruption_plan(seed, point, num_pages, page_size):
    """Seeded decision of *what* corruption lands *where*.

    ``point`` plays the role ``crash_at`` plays for crashes: sweeping it
    enumerates distinct corruptions under one seed.  Returns a dict
    describing the corruption (a JSON-ready reproduction recipe, like
    :meth:`FaultSchedule.describe`), or None when the file has no pages.
    """
    if num_pages <= 0:
        return None
    kind = CORRUPTION_KINDS[_mix(seed, point, "corrupt-kind")
                            % len(CORRUPTION_KINDS)]
    page_id = _mix(seed, point, "corrupt-page") % num_pages
    plan = {"seed": seed, "point": point, "kind": kind, "page": page_id}
    if kind == KIND_BIT_FLIP:
        plan["byte"] = _mix(seed, point, "corrupt-byte") % page_size
        plan["bit"] = _mix(seed, point, "corrupt-bit") % 8
    elif kind == KIND_MISDIRECTED_WRITE:
        if num_pages == 1:
            # Nowhere to misdirect from; degrade to zeroing the page.
            plan["kind"] = KIND_ZERO_PAGE
        else:
            source = _mix(seed, point, "corrupt-source") % num_pages
            if source == page_id:
                source = (source + 1) % num_pages
            plan["source"] = source
    return plan


def inject_corruption(data, page_size, seed, point):
    """Deterministically corrupt one page of an at-rest page image.

    Models the failures the checksum guard exists to catch: a flipped
    bit (media rot), a zeroed page (a lost write over a trimmed block),
    or a misdirected write (another page's intact image landing at the
    wrong offset -- the case a payload-only checksum would miss, see
    :func:`repro.storage.codec.page_checksum`).  Returns
    ``(corrupted_bytes, plan)`` where ``plan`` is the recipe from
    :func:`corruption_plan` (None, with the data unchanged, for an empty
    file).
    """
    plan = corruption_plan(seed, point, len(data) // page_size, page_size)
    if plan is None:
        return bytes(data), None
    data = bytearray(data)
    start = plan["page"] * page_size
    if plan["kind"] == KIND_BIT_FLIP:
        data[start + plan["byte"]] ^= 1 << plan["bit"]
    elif plan["kind"] == KIND_ZERO_PAGE:
        data[start:start + page_size] = b"\x00" * page_size
    else:
        source = plan["source"] * page_size
        data[start:start + page_size] = data[source:source + page_size]
    return bytes(data), plan


class FaultyFile:
    """In-memory file with a volatile/durable split and fault hooks.

    Implements the file-object surface the :class:`Pager` and
    :class:`WriteAheadLog` use (``read``/``write``/``seek``/``tell``/
    ``flush``/``truncate``/``close``) plus ``fsync``, which
    :func:`repro.storage.pager.fsync_file` prefers over ``os.fsync``
    when present.  After a crash, :meth:`durable_bytes` is what a fresh
    process would find on disk.
    """

    def __init__(self, schedule, name="file", droppable_fsync=True):
        self._schedule = schedule
        self.name = name
        self.droppable_fsync = droppable_fsync
        self._volatile = bytearray()
        self._durable = b""
        self._pos = 0
        self._closed = False

    # -- file protocol -------------------------------------------------

    def seek(self, offset, whence=0):
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = len(self._volatile) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if self._pos < 0:
            raise ValueError("negative seek position")
        return self._pos

    def tell(self):
        return self._pos

    def read(self, size=-1):
        end = (len(self._volatile) if size is None or size < 0
               else min(self._pos + size, len(self._volatile)))
        data = bytes(self._volatile[self._pos:end])
        self._pos = end
        return data

    def write(self, data):
        data = bytes(data)
        op = self._schedule.next_op()
        kind = self._schedule.write_fault(op)
        if kind == KIND_BEFORE_WRITE:
            self._schedule.crash(op, kind, self.name)
        if kind == KIND_TORN_WRITE:
            keep = self._schedule.torn_length(op, len(data))
            self._apply(data[:keep])
            self._schedule.crash(op, kind, self.name)
        self._apply(data)
        if kind == KIND_AFTER_WRITE:
            self._schedule.crash(op, kind, self.name)
        return len(data)

    def _apply(self, data):
        end = self._pos + len(data)
        if end > len(self._volatile):
            self._volatile.extend(
                b"\x00" * (end - len(self._volatile)))
        self._volatile[self._pos:end] = data
        self._pos = end

    def truncate(self, size=None):
        if size is None:
            size = self._pos
        del self._volatile[size:]
        return size

    def flush(self):
        """A libc-level flush: no durability implied (the OS still has
        the bytes), so no op is consumed and no fault can land here."""

    def fsync(self):
        """The durability barrier (called via ``fsync_file``)."""
        op = self._schedule.next_op()
        kind = self._schedule.fsync_fault(op, self.droppable_fsync)
        if kind == KIND_AT_FSYNC:
            self._schedule.crash(op, kind, self.name)
        if kind == KIND_DROPPED_FSYNC:
            return
        self._durable = bytes(self._volatile)

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed

    # -- harness side --------------------------------------------------

    @classmethod
    def from_bytes(cls, schedule, data, name="file", droppable_fsync=True):
        """A file whose volatile *and* durable state start as ``data``.

        Models reopening a file that survived an earlier crash: the
        bytes are already on the platter, so seeding them consumes no
        operations from the schedule.
        """
        faulty = cls(schedule, name=name, droppable_fsync=droppable_fsync)
        faulty._volatile = bytearray(data)
        faulty._durable = bytes(data)
        return faulty

    def durable_bytes(self):
        """The bytes a post-crash reopen would find."""
        return self._durable

    def reopen_durable(self):
        """A plain ``BytesIO`` over the durable image (post-crash view)."""
        return io.BytesIO(self._durable)


# ----------------------------------------------------------------------
# Live chaos injection at the StorageBackend seam
# ----------------------------------------------------------------------

#: Fault kinds a chaos schedule can inject at a read.
KIND_READ_ERROR = "read-error"
KIND_READ_LATENCY = "read-latency"
KIND_CORRUPT_READ = "corrupt-read"
KIND_FAIL_WINDOW = "fail-window"

CHAOS_KINDS = (KIND_READ_ERROR, KIND_READ_LATENCY, KIND_CORRUPT_READ,
               KIND_FAIL_WINDOW)


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded live-fault mix (a complete reproduction recipe).

    Each ``*_period`` is a mean: read op ``i`` injects that fault when
    ``hash(seed, i) % period == 0`` (None disables the fault entirely),
    so two runs with the same config fault the same positions of the
    per-backend op stream.  ``fail_first`` models fail-then-heal: the
    first N read ops after arming all raise
    :class:`~repro.storage.errors.TransientStorageError`, after which
    the backend is healthy again (modulo the periodic faults).
    """

    seed: int
    read_error_period: int | None = None
    latency_period: int | None = None
    latency_ms: float = 1.0
    corrupt_period: int | None = None
    fail_first: int = 0

    def as_dict(self):
        """JSON-ready form (the replay recipe CI artifacts embed)."""
        return asdict(self)


class ChaosSchedule:
    """Seeded fault decisions over a monotone read-op counter.

    The live twin of :class:`FaultSchedule`: every injectable read on
    the owning :class:`ChaosBackend` claims one index from ``ops`` and
    :meth:`decide` maps it to a fault kind (or None) purely from
    ``(config.seed, op_index)``.  The schedule itself holds no lock --
    the backend claims indexes under its own latch, the same external-
    synchronization discipline :class:`FaultSchedule` relies on.
    """

    def __init__(self, config):
        self.config = config
        self.ops = 0
        self.injected = {kind: 0 for kind in CHAOS_KINDS}

    def next_op(self):
        """Claim the next read-operation index."""
        index = self.ops
        self.ops += 1
        return index

    def decide(self, op_index):
        """Fault kind for read op ``op_index``, or None to proceed.

        Corruption outranks the transient error, which outranks latency,
        so a single op never stacks faults and the counts stay
        attributable to one kind each.
        """
        config = self.config
        if op_index < config.fail_first:
            return KIND_FAIL_WINDOW
        if (config.corrupt_period and _mix(
                config.seed, op_index,
                "chaos-corrupt") % config.corrupt_period == 0):
            return KIND_CORRUPT_READ
        if (config.read_error_period and _mix(
                config.seed, op_index,
                "chaos-error") % config.read_error_period == 0):
            return KIND_READ_ERROR
        if (config.latency_period and _mix(
                config.seed, op_index,
                "chaos-latency") % config.latency_period == 0):
            return KIND_READ_LATENCY
        return None

    def corrupt_bit(self, op_index, page_size):
        """Which bit of the page image a corrupt-read flips."""
        return _mix(self.config.seed, op_index,
                    "chaos-bit") % (page_size * 8)

    def record(self, kind):
        """Count one injected fault of ``kind``."""
        self.injected[kind] += 1

    def describe(self):
        """JSON-ready reproduction recipe plus injection counts."""
        return {"config": self.config.as_dict(), "ops_seen": self.ops,
                "injected": dict(self.injected)}


class ChaosBackend:  # priximpl: StorageBackend
    """A :class:`StorageBackend` that injects seeded read faults.

    Wraps any backend and perturbs only the *read* path (``get``,
    ``get_decoded``, ``pin``, ``pinned``); every mutation, lifecycle and
    accounting member delegates untouched, so with no faults due the
    wrapped backend behaves identically -- and with chaos disabled
    entirely (no wrapper) the "Disk IO pages" accounting is byte-for-
    byte the unwrapped backend's.

    Fault semantics (all decided by the :class:`ChaosSchedule`):

    - ``read-error`` / the ``fail-first`` window raise
      :class:`~repro.storage.errors.TransientStorageError` -- the
      caller's retry is expected to succeed.
    - ``read-latency`` sleeps ``config.latency_ms`` and proceeds.
    - ``corrupt-read`` feeds a bit-flipped copy of the true page image
      through the attached guard's :meth:`~repro.storage.guard.
      PageGuard.admit` -- the PR 4 read-repair path.  With a committed
      WAL image the guard repairs and the read succeeds; without one
      the guard quarantines and raises
      :class:`~repro.storage.errors.PageCorruptionError`, and because
      the quarantine is synthetic (the durable bytes are intact) the
      backend immediately heals it with a stamp of the true image so
      later reads recover.  On an unguarded or unstamped page the fault
      downgrades to a transient error.

    Concurrency: the op counter, armed flag and corrupt-read injection
    are serialized under the backend's own ``chaos-backend`` latch
    (corrupt-reads write the guard sidecar, which is not internally
    latched); transient raises and latency sleeps happen outside it.
    The latch orders strictly before the storage latches the inner
    backend takes (``chaos-backend`` -> ``buffer-pool``/``io-stats``),
    and nothing below storage ever calls back into the wrapper.
    """

    kind = "chaos"

    def __init__(self, inner, config, armed=True):
        self._inner = inner
        self._config = config
        self._schedule = ChaosSchedule(config)
        self._latch = Latch("chaos-backend")
        self._armed = bool(armed)  # prixrace: guarded-by=_latch

    #: Machine-readable twin of the ``guarded-by`` comment above; the
    #: runtime sanitizer installs guarded-access assertions from this
    #: mapping once the object is shared between threads.
    _GUARDED = {"_armed": "_latch"}

    # -- chaos controls ------------------------------------------------

    def set_armed(self, armed):  # prixeffect: declares=latch-acquire
        """Enable or disable injection (mount-time attach reads run
        disarmed so faults target live traffic, not the catalog)."""
        with self._latch:
            self._armed = bool(armed)

    def chaos_describe(self):  # prixeffect: declares=latch-acquire
        """JSON-ready replay recipe plus live injection counts."""
        with self._latch:
            recipe = self._schedule.describe()
            recipe["armed"] = self._armed
        return recipe

    def _chaos_read(self, page_id, op_name):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """Claim one read op and inject whatever fault it drew."""
        with self._latch:
            if not self._armed:
                return
            op = self._schedule.next_op()
            fault = self._schedule.decide(op)
            if fault is None:
                return
            self._schedule.record(fault)
            if fault == KIND_CORRUPT_READ:
                # Still latched: corrupt-reads stamp the guard sidecar,
                # whose file handle is not internally latched.
                self._corrupt_read(op, page_id, op_name)
                return
        if fault == KIND_READ_LATENCY:
            time.sleep(self._config.latency_ms / 1000.0)
            return
        raise TransientStorageError(
            f"injected {fault} at read op {op} ({op_name} of page "
            f"{page_id}, seed {self._config.seed})")

    def _corrupt_read(self, op_index, page_id, op_name):  # prixeffect: declares=raw-io,pager-io,wal-io,latch-acquire,stats-mutate
        """Feed a bit-flipped image through the guard's admit path."""
        inner = self._inner
        page_guard = inner.guard
        true_image = bytes(inner.get(page_id))
        if page_guard is None or not page_guard.is_stamped(page_id):
            raise TransientStorageError(
                f"injected corrupt-read at read op {op_index} "
                f"({op_name} of page {page_id}) downgraded to a "
                "transient error: the page carries no checksum stamp")
        corrupted = bytearray(true_image)
        bit = self._schedule.corrupt_bit(op_index, len(corrupted))
        corrupted[bit // 8] ^= 1 << (bit % 8)
        try:
            # Reach-through to the inner pager is deliberate: admit()
            # needs the repair-write target, and the wrapper must never
            # count its injections as page traffic.
            page_guard.admit(page_id, bytes(corrupted), inner._pager)
        except PageCorruptionError:
            # No committed WAL image covered the page, so the guard
            # quarantined it.  The quarantine is synthetic -- the
            # durable bytes are intact -- so heal it before re-raising
            # and later reads see a healthy page again.
            page_guard.stamp(page_id, true_image)
            raise
        # admit() succeeded: the guard repaired the image from the WAL
        # (read-repair); the durable bytes were never wrong.

    # -- StorageBackend: accounting ------------------------------------

    @property
    def page_size(self):
        """Page size of the wrapped backend."""
        return self._inner.page_size

    @property
    def num_pages(self):
        """Allocated page count of the wrapped backend."""
        return self._inner.num_pages

    @property
    def stats(self):
        """The wrapped backend's :class:`IOStats` (injections never
        count as page traffic)."""
        return self._inner.stats

    @property
    def guard(self):
        """The wrapped backend's checksum guard, or None."""
        return self._inner.guard

    @property
    def wal(self):
        """The wrapped backend's write-ahead log, or None."""
        return self._inner.wal

    # -- StorageBackend: reads (injection points) ----------------------

    def get(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Read a page image, possibly through an injected fault."""
        self._chaos_read(page_id, "get")
        return self._inner.get(page_id)

    def get_decoded(self, page_id, decoder):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Decoded read, possibly through an injected fault."""
        self._chaos_read(page_id, "get_decoded")
        return self._inner.get_decoded(page_id, decoder)

    def pin(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Pin a frame, possibly through an injected fault.

        Like every backend's ``pin``, ownership of the pin transfers to
        the caller, who balances it with :meth:`unpin` (or avoids the
        obligation entirely via :meth:`pinned`) -- hence the suppressed
        balance finding on the delegation.
        """
        self._chaos_read(page_id, "pin")
        return self._inner.pin(page_id)  # prixlint: disable=pin-unpin-balance

    def pinned(self, page_id):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Pinned-read context manager over the wrapped backend."""
        self._chaos_read(page_id, "pinned")
        return self._inner.pinned(page_id)

    # -- StorageBackend: pure delegation -------------------------------

    def put(self, page_id, data):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Delegate a page replacement to the wrapped backend."""
        return self._inner.put(page_id, data)

    def new_page(self):  # prixeffect: declares=alloc-page,pager-io,wal-io,latch-acquire,stats-mutate
        """Delegate page allocation to the wrapped backend."""
        return self._inner.new_page()

    def mark_dirty(self, page_id):  # prixeffect: declares=latch-acquire
        """Delegate a dirty flag to the wrapped backend."""
        self._inner.mark_dirty(page_id)

    def unpin(self, page_id):  # prixeffect: declares=latch-acquire
        """Delegate a pin release to the wrapped backend."""
        self._inner.unpin(page_id)

    def attach_wal(self, wal):  # prixeffect: declares=latch-acquire
        """Delegate WAL attachment to the wrapped backend."""
        self._inner.attach_wal(wal)

    def commit(self):  # prixeffect: declares=wal-io,latch-acquire,stats-mutate
        """Delegate a commit to the wrapped backend."""
        return self._inner.commit()

    def checkpoint(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Delegate a checkpoint to the wrapped backend."""
        return self._inner.checkpoint()

    def flush(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Delegate a flush to the wrapped backend."""
        self._inner.flush()

    def flush_and_clear(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Delegate flush-and-clear to the wrapped backend."""
        self._inner.flush_and_clear()

    def sync(self):  # prixeffect: declares=pager-io
        """Delegate the durability barrier to the wrapped backend."""
        self._inner.sync()

    def close(self):  # prixeffect: declares=pager-io,wal-io,latch-acquire,stats-mutate
        """Close the wrapped backend."""
        self._inner.close()
