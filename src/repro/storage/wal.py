"""ARIES-lite write-ahead log for the PRIX storage engine.

The paper's update story (Section 5.2.1) mutates the virtual-trie
B+-trees in place; this module supplies the durability layer that makes
those mutations survive a crash.  The design is deliberately small:

- **Redo-only, physical records.**  Every log record that matters for
  recovery is a full page image.  There is no undo pass because the
  buffer pool runs a *no-steal* policy when a WAL is attached: a page
  dirtied by an uncommitted batch never reaches the data file, so
  recovery only ever re-applies committed images
  (:mod:`repro.storage.recovery`).
- **Framed records.**  Each record is ``crc32 | length | lsn | type |
  payload``.  The LSN is the record's byte position in the logical log
  (monotonic across checkpoint truncations via a base offset stored in
  the header), so a frame landing at the wrong offset -- the signature
  of a torn or misdirected write -- fails validation even when its CRC
  is internally consistent.
- **Commit batches.**  Page images accumulate per batch; a ``COMMIT``
  record seals them.  Recovery discards images after the last durable
  commit, which is what makes a crash mid-``insert_sequence`` atomic.
- **Fuzzy checkpoints with truncation.**  After the buffer pool has
  flushed and the data file is fsynced, the entire log is superseded:
  :meth:`WriteAheadLog.checkpoint` truncates it and starts a fresh
  generation whose header carries the old end-LSN as its base, keeping
  LSNs monotonic.  Appends may resume immediately; nothing blocks on
  the checkpoint being "clean" beyond the data-file fsync.

WAL traffic is accounted in its own ``IOStats`` counters
(``wal_appends``/``wal_fsyncs``/``wal_bytes``), never in
``physical_reads``/``physical_writes``, so the paper's "Disk IO
(pages)" tables are unaffected by durability (see ``DESIGN.md``).

This module is, next to ``pager.py``, the second sanctioned raw-I/O
gateway in ``repro.storage``: log bytes do not flow through the pager
because they are not page traffic.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.storage.codec import encode_varints, split_varints
from repro.storage.errors import WalCorruptionError, WalError
from repro.storage.pager import fsync_file
from repro.storage.stats import IOStats

#: Record types.
REC_PAGE = 1        # payload: varint(page_id) + raw page image
REC_COMMIT = 2      # payload: varints(batch_seq, page_count)
REC_CHECKPOINT = 3  # payload: varints(num_pages)

#: Log header: magic, version, base LSN, page size.
_HEADER = struct.Struct("<8sIQI")
_MAGIC = b"PRIXWAL1"
_VERSION = 1

#: Record frame: crc32, payload length, lsn, type.
_FRAME = struct.Struct("<IIQB")

#: Upper bound on a sane payload (one page image plus slack); a length
#: beyond this in a frame header means garbage, not a record.
_MAX_PAYLOAD_SLACK = 64

#: fsync policies.
SYNC_COMMIT = "commit"   # fsync on every commit record (default)
SYNC_ALWAYS = "always"   # fsync after every append
SYNC_NEVER = "never"     # only explicit sync()/checkpoint() fsync


class WalRecord:
    """One decoded log record."""

    __slots__ = ("lsn", "rtype", "payload")

    def __init__(self, lsn, rtype, payload):
        self.lsn = lsn
        self.rtype = rtype
        self.payload = payload

    def page_image(self):
        """Decode a ``REC_PAGE`` payload into ``(page_id, image)``."""
        if self.rtype != REC_PAGE:
            raise WalError(f"record at LSN {self.lsn} is not a page image")
        (page_id,), start = split_varints(self.payload, 1)
        return page_id, self.payload[start:]

    def __repr__(self):
        return (f"<WalRecord lsn={self.lsn} type={self.rtype} "
                f"{len(self.payload)}B>")


def _crc(length, lsn, rtype, payload):
    head = struct.pack("<IQB", length, lsn, rtype)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


class WriteAheadLog:
    """Append-only framed log over a single file object.

    Like :class:`~repro.storage.pager.Pager`, the log is file-object
    first (the fault injector hands it a :class:`FaultyFile`) with an
    :meth:`open` classmethod for paths.  All appends go to the end of
    the file; :attr:`flushed_lsn` tracks the durability watermark the
    buffer pool's WAL-before-data rule checks against.
    """

    def __init__(self, fileobj, page_size, stats=None,
                 sync_policy=SYNC_COMMIT):
        if sync_policy not in (SYNC_COMMIT, SYNC_ALWAYS, SYNC_NEVER):
            raise ValueError(f"unknown sync policy {sync_policy!r}")
        self._file = fileobj
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.sync_policy = sync_policy
        self._commit_seq = 0
        self._base_lsn = 0
        self._end = _HEADER.size        # file offset of the next append
        self._flushed_lsn = 0
        self._attach()

    @classmethod
    def open(cls, path, page_size, stats=None, sync_policy=SYNC_COMMIT):
        """Open (or create) a log file at ``path``.

        Sanctioned raw open: the WAL is the durability gateway and its
        bytes are deliberately not page traffic (they are counted in
        ``wal_bytes``, not ``physical_writes``).
        """
        mode = "r+b" if os.path.exists(path) else "w+b"
        handle = open(path, mode)  # wal.py is a sanctioned raw-I/O gateway
        return cls(handle, page_size, stats=stats, sync_policy=sync_policy)

    # ------------------------------------------------------------------
    # Header management
    # ------------------------------------------------------------------

    def _attach(self):
        """Adopt an existing log file or initialize a fresh one."""
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size == 0:
            self._write_header()
            return
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        header = self._parse_header(raw)
        if header is None:
            raise WalCorruptionError(
                "existing log file does not start with a valid PRIX WAL "
                "header; refusing to append to it")
        self._base_lsn, stored_page_size = header
        if stored_page_size != self.page_size:
            raise WalError(
                f"log was written with page size {stored_page_size}, "
                f"not {self.page_size}")
        # Find the end of the valid record run so new appends land
        # after it; a torn tail from an earlier crash is overwritten.
        tail = self._base_lsn
        for record in self.replay():
            tail = record.lsn + _FRAME.size + len(record.payload)
        self._end = _HEADER.size + (tail - self._base_lsn)
        self._file.seek(self._end)
        self._file.truncate()
        self._flushed_lsn = tail

    @staticmethod
    def _parse_header(raw):
        """``(base_lsn, page_size)`` from header bytes, or None."""
        if len(raw) < _HEADER.size:
            return None
        magic, version, base_lsn, page_size = _HEADER.unpack(
            raw[:_HEADER.size])
        if magic != _MAGIC or version != _VERSION or page_size <= 0:
            return None
        return base_lsn, page_size

    def _write_header(self):
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, _VERSION, self._base_lsn,
                                      self.page_size))
        self._end = _HEADER.size
        self._flushed_lsn = self._base_lsn

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def next_lsn(self):
        """The LSN the next appended record will receive."""
        return self._base_lsn + (self._end - _HEADER.size)

    @property
    def flushed_lsn(self):
        """Durability watermark: every record with ``lsn`` strictly below
        this has been fsynced.  The buffer pool refuses to write a dirty
        page to the data file until the page's image record is below
        this mark (WAL-before-data)."""
        return self._flushed_lsn

    def append(self, rtype, payload):
        """Append one framed record; returns its LSN (not yet durable)."""
        lsn = self.next_lsn
        frame = _FRAME.pack(_crc(len(payload), lsn, rtype, payload),
                            len(payload), lsn, rtype)
        self._file.seek(self._end)
        self._file.write(frame)
        self._file.write(payload)
        self._end += _FRAME.size + len(payload)
        self.stats.add(wal_appends=1,
                       wal_bytes=_FRAME.size + len(payload))
        if self.sync_policy == SYNC_ALWAYS:
            self.sync()
        return lsn

    def log_page(self, page_id, image):
        """Append a page-image redo record; returns its LSN."""
        if len(image) != self.page_size:
            raise WalError(
                f"page image must be {self.page_size} bytes, "
                f"got {len(image)}")
        return self.append(REC_PAGE,
                           encode_varints([page_id]) + bytes(image))

    def commit(self, page_count=0):
        """Seal the current batch with a COMMIT record.

        Under the default ``commit`` policy the log is fsynced before
        returning, so the batch is durable when this method completes.
        Returns the commit record's LSN.
        """
        self._commit_seq += 1
        lsn = self.append(REC_COMMIT,
                          encode_varints([self._commit_seq, page_count]))
        if self.sync_policy in (SYNC_COMMIT, SYNC_ALWAYS):
            self.sync()
        return lsn

    def sync(self):
        """fsync the log; advances :attr:`flushed_lsn` to the end."""
        fsync_file(self._file)
        self.stats.add(wal_fsyncs=1)
        self._flushed_lsn = self.next_lsn

    def require_durable(self, lsn):
        """Ensure every record below ``lsn`` (inclusive) is on disk.

        The WAL-before-data hook: the buffer pool calls this with a dirty
        page's image LSN immediately before writing the page to the data
        file, forcing a log fsync when the record is still volatile.
        """
        if lsn >= self._flushed_lsn:
            self.sync()

    # ------------------------------------------------------------------
    # Reading and truncation
    # ------------------------------------------------------------------

    def replay(self):
        """Yield every valid record in order, stopping at the torn tail.

        A frame whose CRC, length, or LSN does not validate ends the
        iteration: everything after it is the residue of a crash (or of
        a checkpoint racing a crash) and must not be re-applied.
        """
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size < _HEADER.size:
            return
        self._file.seek(0)
        header = self._parse_header(self._file.read(_HEADER.size))
        if header is None:
            return
        base_lsn, page_size = header
        offset = _HEADER.size
        max_payload = page_size + _MAX_PAYLOAD_SLACK
        while offset + _FRAME.size <= size:
            self._file.seek(offset)
            crc, length, lsn, rtype = _FRAME.unpack(
                self._file.read(_FRAME.size))
            if (length > max_payload
                    or lsn != base_lsn + (offset - _HEADER.size)
                    or offset + _FRAME.size + length > size):
                return
            payload = self._file.read(length)
            if len(payload) < length:
                return
            if _crc(length, lsn, rtype, payload) != crc:
                return
            yield WalRecord(lsn, rtype, payload)
            offset += _FRAME.size + length

    def checkpoint(self, num_pages):
        """Start a fresh log generation after a completed checkpoint.

        The caller must have flushed the buffer pool and fsynced the
        data file first: truncation forgets every logged image, so the
        data file is the only copy afterwards.  The new generation's
        base LSN continues from the old end so LSNs stay monotonic, and
        a CHECKPOINT record (carrying the data file's page count) is
        written and fsynced so recovery can distinguish "fresh log" from
        "header torn off by a crash".
        """
        new_base = self.next_lsn
        self._file.seek(0)
        self._file.truncate()
        self._base_lsn = new_base
        self._write_header()
        self.append(REC_CHECKPOINT, encode_varints([num_pages]))
        self.sync()

    @property
    def size_bytes(self):
        """Current log file length in bytes."""
        return self._end

    def close(self):
        """Close the log file (without an implicit fsync)."""
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
