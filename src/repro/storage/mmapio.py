"""Read-only memory-mapped page substrate.

A :class:`MmapPager` maps a finished index file once and serves page
reads as slices of the mapping -- no per-read ``seek``/``read`` syscall
pair, no userspace copy beyond the one the buffer pool makes when it
admits the page.  It exposes the same surface as
:class:`~repro.storage.pager.Pager` so the regular buffer pool (and
therefore the paper's "Disk IO pages" accounting) runs over it
unchanged, but every mutating entry point raises
:class:`~repro.storage.errors.ReadOnlyBackendError`: the serving tier
maps one immutable artifact for many concurrent readers, and a write
reaching the mapping would be a layering bug, not a feature.

Corruption handling degrades gracefully rather than silently: with a
guard attached, a bad page has no WAL to repair from (read-only means
no log), so verification quarantines the page and raises the same typed
:class:`~repro.storage.errors.PageCorruptionError` the file pager
raises after repair fails.
"""

from __future__ import annotations

import mmap

from repro.storage.errors import PageRangeError, ReadOnlyBackendError
from repro.storage.latch import Latch
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.storage.stats import IOStats


class MmapPager:
    """Pager-compatible read-only view over a memory-mapped page file."""

    #: Machine-readable twin of the ``guarded-by`` comments below, for
    #: the runtime sanitizer's guarded-access assertions.
    _GUARDED = {"_map": "_io_latch"}

    def __init__(self, path, page_size=DEFAULT_PAGE_SIZE, stats=None,
                 guard=None):
        self.path = path
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self.guard = None
        self._io_latch = Latch("pager-io")
        # The file object stays open for the lifetime of the mapping;
        # mmapio.py is a sanctioned raw-I/O gateway like pager.py.
        self._file = open(path, "rb")
        size = self._file.seek(0, 2)
        if size % page_size:
            self._file.close()
            raise ValueError(
                f"file size {size} is not a multiple of page size "
                f"{page_size}")
        self._num_pages = size // page_size
        # mmap rejects zero-length maps; an empty file simply has no
        # pages, and every read is then out of range anyway.
        if size:
            self._map = mmap.mmap(  # prixrace: guarded-by=_io_latch
                self._file.fileno(), size, access=mmap.ACCESS_READ)
        else:
            self._map = None  # prixrace: guarded-by=_io_latch
        if guard is not None:
            self.attach_guard(guard)

    def attach_guard(self, guard):
        """Attach a checksum guard; it adopts this pager's stats."""
        if guard.page_size != self.page_size:
            raise ValueError(
                f"guard page size {guard.page_size} does not match pager "
                f"page size {self.page_size}")
        guard.stats = self.stats
        self.guard = guard

    @property
    def num_pages(self):
        """Number of pages in the mapped file."""
        return self._num_pages

    def _check_range(self, page_id):
        """Reject out-of-range page ids with the pager's typed error."""
        if not isinstance(page_id, int) or isinstance(page_id, bool):
            raise PageRangeError(
                f"page id must be an int, got {type(page_id).__name__}")
        if not 0 <= page_id < self._num_pages:
            raise PageRangeError(
                f"page {page_id} is out of range [0, {self._num_pages})")

    def read(self, page_id):  # prixeffect: declares=pager-io,latch-acquire,stats-mutate
        """Copy one page out of the mapping (counted as a physical read).

        The count keeps the reproduced I/O columns comparable across
        substrates; whether the kernel had the page resident is exactly
        the distinction the paper's buffer-pool model already abstracts.
        """
        self._check_range(page_id)
        with self._io_latch:
            if self.guard is not None:
                self.guard.check_quarantine(page_id)
            offset = page_id * self.page_size
            data = bytes(self._map[offset:offset + self.page_size])
            self.stats.add(physical_reads=1)
            if self.guard is not None:
                data = self.guard.admit(page_id, data, self)
        return bytearray(data)

    def read_raw(self, page_id):  # prixeffect: declares=pager-io,latch-acquire
        """Read one page without verification or read accounting."""
        self._check_range(page_id)
        with self._io_latch:
            offset = page_id * self.page_size
            return bytearray(self._map[offset:offset + self.page_size])

    def allocate(self):
        """Refuse: a mapped artifact cannot grow."""
        raise ReadOnlyBackendError(
            f"cannot allocate a page on read-only mmap pager for "
            f"{self.path!r}")

    def write(self, page_id, data):
        """Refuse: the mapping is immutable."""
        raise ReadOnlyBackendError(
            f"cannot write page {page_id} on read-only mmap pager for "
            f"{self.path!r}")

    def repair_write(self, page_id, data):
        """Refuse: no WAL, no repair source, no writable mapping.

        The guard treats a failing ``repair_write`` like a failed
        repair, so a corrupt page quarantines instead of silently
        serving bad bytes.
        """
        raise ReadOnlyBackendError(
            f"cannot repair page {page_id} on read-only mmap pager for "
            f"{self.path!r}")

    def sync(self):
        """No-op: nothing dirty can exist behind a read-only mapping."""

    def close(self):
        """Unmap the file and release the descriptor."""
        with self._io_latch:
            if self._map is not None:
                self._map.close()
                self._map = None
        self._file.close()
        if self.guard is not None:
            self.guard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
