"""MaxGap: the upper-bounding distance metric of Section 5.4.

``MaxGap(e, delta)`` is the maximum, over every node labeled ``e`` in the
collection, of the difference between the postorder numbers of its first
and last children.  During subsequence matching, the gap between adjacent
match positions is bounded by MaxGap of the earlier label (Theorem 4),
letting the filter discard trie paths that cannot lead to a twig match
without any false dismissals.
"""

from __future__ import annotations

from repro.xmlkit.tree import sequence_label


class MaxGapTable:
    """Per-label MaxGap values for one collection and sequence variant."""

    def __init__(self, gaps=None):
        self._gaps = dict(gaps or {})

    def get(self, label):
        """MaxGap for ``label``; labels with at most one child map to 0."""
        return self._gaps.get(label, 0)

    def merge_span(self, label, span):
        """Fold one observed first-to-last child span into the table."""
        if span > self._gaps.get(label, 0):
            self._gaps[label] = span

    def merge_node(self, node):
        """Fold one (numbered) node's child span into the table."""
        if len(node.children) >= 2:
            span = node.children[-1].postorder - node.children[0].postorder
            label = sequence_label(node)
            if span > self._gaps.get(label, 0):
                self._gaps[label] = span

    def as_dict(self):
        """Copy of the label -> MaxGap mapping."""
        return dict(self._gaps)

    def __len__(self):
        return len(self._gaps)


def position_gaps(seq):
    """Per-position parent spans for the finer-grained MaxGap (§5.4).

    ``gaps[i]`` is the first-to-last child span of the parent of the node
    deleted at position ``i+1`` -- the quantity Theorem 4 bounds for the
    occurrence at that sequence position.
    """
    first = {}
    last = {}
    for position, parent in enumerate(seq.nps, start=1):
        if parent not in first:
            first[parent] = position
        last[parent] = position
    return [last[parent] - first[parent] for parent in seq.nps]


def compute_maxgap(documents):
    """Compute the MaxGap table over a collection of numbered documents.

    The documents must be numbered in the same variant the index uses:
    pass extended documents when building the table for an EPIndex.
    """
    table = MaxGapTable()
    for document in documents:
        for node in document.nodes_in_postorder():
            table.merge_node(node)
    return table
