"""Prufer sequence machinery (Section 3 of the paper).

Provides the tree-to-sequence transformation (LPS and NPS, in both the
Regular and Extended variants), the inverse reconstruction that witnesses
the one-to-one correspondence, and the MaxGap upper-bounding distance
metric of Section 5.4.
"""

from repro.prufer.maxgap import MaxGapTable, compute_maxgap, position_gaps
from repro.prufer.reconstruct import reconstruct_document
from repro.prufer.sequence import (PruferSequence, extended_sequence,
                                   regular_sequence)

__all__ = [
    "MaxGapTable",
    "PruferSequence",
    "compute_maxgap",
    "extended_sequence",
    "position_gaps",
    "regular_sequence",
    "reconstruct_document",
]
