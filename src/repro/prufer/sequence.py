"""Construction of Labeled and Numbered Prufer sequences.

The paper's variant (Section 3.1) deletes nodes until a single node is
left, producing a sequence of length n-1 for a tree with n nodes.  With
postorder numbering, Lemma 1 makes construction trivial: the node deleted
i-th is the node numbered i, so the i-th sequence entry is simply the label
(LPS) or postorder number (NPS) of the *parent* of node i.

Two variants are produced:

- :func:`regular_sequence` -- the sequence of the tree as-is; leaf labels do
  not appear (the basis of RPIndex),
- :func:`extended_sequence` -- the sequence of the tree extended with a
  dummy child under every leaf (Section 5.6), so every original node's
  label appears (the basis of EPIndex).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlkit.tree import Document, extend_with_dummies, sequence_label


@dataclass(frozen=True)
class PruferSequence:
    """The Prufer transform of one document (or query twig) tree.

    Attributes:
        lps: Labeled Prufer sequence -- parent labels, deletion order.
        nps: Numbered Prufer sequence -- parent postorder numbers.
        n_nodes: node count of the (possibly extended) tree.
        leaves: ``(label, postorder)`` of each leaf of the sequenced tree,
            stored for the leaf-refinement phase.
        extended: True when this is an Extended-Prufer sequence.
    """

    lps: tuple
    nps: tuple
    n_nodes: int
    leaves: tuple
    extended: bool

    def __len__(self):
        return len(self.lps)

    def parent_of(self, postorder_number):
        """Postorder number of the parent of ``postorder_number``.

        Exploits Lemma 1: the NPS entry at index ``i`` (1-based) is the
        parent of the node numbered ``i``.  The root has no parent and
        returns 0.
        """
        if postorder_number == self.n_nodes:
            return 0
        return self.nps[postorder_number - 1]


def _sequence_of(document, extended):
    nodes = document.nodes_in_postorder()
    lps = []
    nps = []
    for node in nodes[:-1]:  # every node except the root
        lps.append(sequence_label(node.parent))
        nps.append(node.parent.postorder)
    leaves = tuple((sequence_label(n), n.postorder)
                   for n in nodes if n.is_leaf)
    return PruferSequence(lps=tuple(lps), nps=tuple(nps),
                          n_nodes=len(nodes), leaves=leaves,
                          extended=extended)


def regular_sequence(document):
    """Return the Regular-Prufer sequence of a numbered document."""
    return _sequence_of(document, extended=False)


def extended_sequence(document):
    """Return the Extended-Prufer sequence (dummy child under each leaf)."""
    extended_doc = Document(extend_with_dummies(document.root),
                            doc_id=document.doc_id)
    return _sequence_of(extended_doc, extended=True)
