"""Inverse transform: rebuild a tree from its Prufer sequence.

Witnesses the one-to-one correspondence the paper's indexing relies on
(Section 3.1): from the NPS alone the tree *shape* is fully determined
(``nps[i-1]`` is the parent of node ``i``, the root is node ``n``); the LPS
supplies every non-leaf label; the stored leaf list supplies the rest.
"""

from __future__ import annotations

from repro.xmlkit.errors import TreeConstructionError
from repro.xmlkit.tree import VALUE_LABEL_PREFIX, Document, XMLNode


def reconstruct_document(lps, nps, leaves, doc_id=0):
    """Rebuild the :class:`Document` whose Prufer transform is given.

    Args:
        lps: labeled Prufer sequence (parent sequence-labels; value nodes
            carry the :data:`VALUE_LABEL_PREFIX` marker).
        nps: numbered Prufer sequence (parent postorder numbers).
        leaves: iterable of ``(label, postorder)`` pairs for leaf nodes.
        doc_id: identifier for the rebuilt document.

    Returns:
        A numbered :class:`Document` structurally identical to the original.
    """
    if len(lps) != len(nps):
        raise TreeConstructionError("LPS and NPS lengths differ")
    n_nodes = len(nps) + 1
    if n_nodes < 1:
        raise TreeConstructionError("empty sequence")

    labels = {}
    for parent_label, parent_number in zip(lps, nps):
        if not 1 <= parent_number <= n_nodes:
            raise TreeConstructionError(
                f"NPS entry {parent_number} outside 1..{n_nodes}")
        known = labels.get(parent_number)
        if known is not None and known != parent_label:
            raise TreeConstructionError(
                f"node {parent_number} assigned two labels: "
                f"{known!r} and {parent_label!r}")
        labels[parent_number] = parent_label
    for label, number in leaves:
        known = labels.get(number)
        if known is not None and known != label:
            raise TreeConstructionError(
                f"leaf {number} label conflicts with LPS-derived label")
        labels[number] = label

    missing = [i for i in range(1, n_nodes + 1) if i not in labels]
    if missing:
        raise TreeConstructionError(
            f"labels unknown for nodes {missing[:5]} (leaf list incomplete?)")

    nodes = {}
    for i in range(1, n_nodes + 1):
        label = labels[i]
        if label.startswith(VALUE_LABEL_PREFIX):
            nodes[i] = XMLNode(label[len(VALUE_LABEL_PREFIX):], is_value=True)
        else:
            nodes[i] = XMLNode(label)
    # Children must hang under their parent in ascending postorder number:
    # among siblings, document order equals postorder-number order.
    for child_number, parent_number in enumerate(nps, start=1):
        parent = nodes[parent_number]
        if parent.is_value:
            # Tolerate value parents during reconstruction of extended
            # trees whose value leaves carry dummy children.
            child = nodes[child_number]
            child.parent = parent
            parent.children.append(child)
        else:
            parent.append(nodes[child_number])

    root = nodes[n_nodes]
    document = Document(root, doc_id=doc_id)
    for node in document.nodes_in_postorder():
        expected = node.postorder
        # Verify postorder consistency: a well-formed sequence reproduces
        # the numbering it was built from.
        if nodes[expected] is not node:
            raise TreeConstructionError(
                "sequence is not a valid postorder-numbered Prufer sequence")
    return document
