"""Serialize document trees back to XML text.

Attribute subelements produced by the parser (tags starting with ``@`` whose
only child is a value node) are emitted as real XML attributes, so
``parse_document(serialize(doc))`` round-trips structurally.
"""

from __future__ import annotations

from io import StringIO

from repro.xmlkit.parser import ATTRIBUTE_PREFIX

_ESCAPES_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ESCAPES_ATTR = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(text, table):
    for char, replacement in table.items():
        if char in text:
            text = text.replace(char, replacement)
    return text


def _is_attribute_node(node):
    return (not node.is_value
            and node.tag.startswith(ATTRIBUTE_PREFIX)
            and all(child.is_value for child in node.children)
            and len(node.children) <= 1)


def _write_node(node, out):
    if node.is_value:
        out.write(_escape(node.tag, _ESCAPES_TEXT))
        return
    attributes = []
    content = []
    for child in node.children:
        if _is_attribute_node(child):
            attributes.append(child)
        else:
            content.append(child)
    out.write(f"<{node.tag}")
    for attr in attributes:
        name = attr.tag[len(ATTRIBUTE_PREFIX):]
        attr_value = attr.children[0].tag if attr.children else ""
        out.write(f' {name}="{_escape(attr_value, _ESCAPES_ATTR)}"')
    if not content:
        out.write("/>")
        return
    out.write(">")
    for child in content:
        _write_node(child, out)
    out.write(f"</{node.tag}>")


def serialize(document_or_node):
    """Return the XML text of a :class:`Document` or :class:`XMLNode`."""
    node = getattr(document_or_node, "root", document_or_node)
    out = StringIO()
    _write_node(node, out)
    return out.getvalue()
