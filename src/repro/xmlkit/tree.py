"""Ordered labeled tree model for XML documents.

Every XML document is modeled as an ordered tree of :class:`XMLNode` objects
(Section 2 of the paper).  Element nodes carry tags; values (character data)
occur at leaf nodes and are modeled as nodes whose label is the text itself.
Attributes are represented as subelements, exactly as the paper prescribes
("no special distinction will be made between elements and attributes").

A :class:`Document` wraps a root node with a document identifier and the two
numbering schemes the reproduction needs:

- *postorder numbers* 1..n (Section 3.2) -- the basis of Prufer sequences,
- *region encoding* ``(start, end, level)`` -- the containment-property
  numbering consumed by the TwigStack family of baselines.
"""

from __future__ import annotations

from repro.xmlkit.errors import TreeConstructionError

#: Tag reserved for the dummy children appended by the Extended-Prufer
#: transformation (Section 5.6).  It can never appear in parsed XML because
#: '#' is not a valid name start character.
DUMMY_TAG = "#dummy"

#: Prefix applied to value-node labels wherever labels enter sequence or
#: key space, so the value "title" can never collide with an element tag
#: ``title``.  0x1F is a control character and cannot occur in parsed XML.
VALUE_LABEL_PREFIX = "\x1f"

#: Value strings longer than this are fingerprinted before entering label
#: space, so arbitrarily long PCDATA never overflows an index page.  The
#: prefix + SHA-256 fingerprint still matches exact-equality predicates
#: (both sides are fingerprinted identically).
VALUE_LABEL_LIMIT = 256

_FINGERPRINT_MARK = "\x1e#"


def sequence_label(node):
    """The label a node contributes to Prufer sequences and index keys."""
    if node.is_value:
        return value_label(node.tag)
    return node.tag


def value_label(text):
    """The sequence/key label for value content ``text``.

    Query literals must be tokenized through this same function so that
    fingerprinted (oversized) values compare equal on both sides.
    """
    return VALUE_LABEL_PREFIX + _value_token(text)


def _value_token(text):
    if len(text) <= VALUE_LABEL_LIMIT:
        return text
    import hashlib
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return text[:64] + _FINGERPRINT_MARK + digest


class XMLNode:
    """One node of an ordered labeled tree.

    Attributes:
        tag: the element tag, or the text content for value nodes.
        is_value: True when this node represents character data.
        children: ordered list of child nodes.
        parent: parent node, or None for the root.
        postorder: 1-based postorder number, assigned by ``Document.number``.
        start, end, level: region encoding, assigned by ``Document.number``.
    """

    __slots__ = ("tag", "is_value", "children", "parent",
                 "postorder", "start", "end", "level")

    def __init__(self, tag, children=None, is_value=False):
        if not tag:
            raise TreeConstructionError("node label must be non-empty")
        self.tag = tag
        self.is_value = is_value
        self.children = []
        self.parent = None
        self.postorder = 0
        self.start = 0
        self.end = 0
        self.level = 0
        if children:
            for child in children:
                self.append(child)

    def append(self, child):
        """Attach ``child`` as the rightmost child of this node."""
        if self.is_value:
            raise TreeConstructionError("value nodes cannot have children")
        if child.parent is not None:
            raise TreeConstructionError("node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    @property
    def is_leaf(self):
        """True when the node has no children."""
        return not self.children

    @property
    def is_dummy(self):
        """True for an Extended-Prufer dummy node."""
        return self.tag == DUMMY_TAG

    def iter_subtree(self):
        """Yield the nodes of this subtree in document (pre-) order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self):
        """Yield the nodes of this subtree in postorder."""
        # Iterative two-stack postorder keeps deep TREEBANK-like trees from
        # blowing the recursion limit.
        stack, out = [self], []
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return reversed(out)

    def find(self, tag):
        """Return the first descendant-or-self node with ``tag``, or None."""
        for node in self.iter_subtree():
            if node.tag == tag:
                return node
        return None

    def child_by_tag(self, tag):
        """Return the first direct child with ``tag``, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def text(self):
        """Return the concatenation of value-node labels in this subtree."""
        return "".join(n.tag for n in self.iter_subtree() if n.is_value)

    def __repr__(self):
        kind = "value" if self.is_value else "elem"
        return f"<XMLNode {kind} {self.tag!r} post={self.postorder}>"


def element(tag, *children):
    """Convenience constructor for an element node."""
    return XMLNode(tag, children=children, is_value=False)


def value(text):
    """Convenience constructor for a value (character data) node."""
    return XMLNode(text, is_value=True)


class Document:
    """An XML document: a rooted ordered labeled tree plus its numberings.

    The constructor numbers the tree immediately; any later structural
    mutation must be followed by :meth:`renumber`.
    """

    def __init__(self, root, doc_id=0):
        self.root = root
        self.doc_id = doc_id
        self._postorder_nodes = []
        self.renumber()

    def renumber(self):
        """(Re)assign postorder numbers and the region encoding."""
        self._postorder_nodes = list(self.root.iter_postorder())
        for number, node in enumerate(self._postorder_nodes, start=1):
            node.postorder = number
        counter = 0
        stack = [(self.root, 1, False)]
        while stack:
            node, level, exiting = stack.pop()
            counter += 1
            if exiting:
                node.end = counter
                continue
            node.start = counter
            node.level = level
            stack.append((node, level, True))
            for child in reversed(node.children):
                stack.append((child, level + 1, False))

    @property
    def size(self):
        """Total number of nodes in the tree."""
        return len(self._postorder_nodes)

    def node_by_postorder(self, number):
        """Return the node with the given 1-based postorder number."""
        return self._postorder_nodes[number - 1]

    def nodes_in_postorder(self):
        """Return all nodes ordered by their postorder number."""
        return list(self._postorder_nodes)

    def leaves(self):
        """Return ``(label, postorder)`` pairs for every leaf node.

        This is the per-document leaf-node list that PRIX stores alongside
        the NPS (Section 4.3) for the final refinement phase.
        """
        return [(n.tag, n.postorder) for n in self._postorder_nodes
                if n.is_leaf]

    def element_count(self):
        """Number of element (non-value) nodes."""
        return sum(1 for n in self._postorder_nodes if not n.is_value)

    def value_count(self):
        """Number of value (character data) nodes."""
        return sum(1 for n in self._postorder_nodes if n.is_value)

    def max_depth(self):
        """Depth of the deepest node (root = 1)."""
        return max(n.level for n in self._postorder_nodes)

    def __repr__(self):
        return f"<Document id={self.doc_id} root={self.root.tag!r} n={self.size}>"


def same_tree(a, b):
    """Structural equality of two trees (labels, kinds and child order)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.tag != y.tag or x.is_value != y.is_value:
            return False
        if len(x.children) != len(y.children):
            return False
        stack.extend(zip(x.children, y.children))
    return True


def copy_tree(node):
    """Deep-copy a subtree (numbering fields are not preserved)."""
    clone = XMLNode(node.tag, is_value=node.is_value)
    stack = [(node, clone)]
    while stack:
        src, dst = stack.pop()
        for child in src.children:
            child_clone = XMLNode(child.tag, is_value=child.is_value)
            dst.append(child_clone)
            stack.append((child, child_clone))
    return clone


def extend_with_dummies(root):
    """Return a copy of the tree with a dummy child under every leaf.

    This is the Extended-Prufer transformation of Section 5.6: the Prufer
    sequence of the extended tree contains the labels of *all* nodes of the
    original tree, which lets value predicates participate in subsequence
    filtering.
    """
    clone = copy_tree(root)
    for node in list(clone.iter_subtree()):
        if node.is_leaf and not node.is_dummy:
            # Bypass ``append`` so value leaves may carry the dummy child;
            # the dummy is a construction artifact, not document content.
            dummy = XMLNode(DUMMY_TAG)
            dummy.parent = node
            node.children.append(dummy)
    return clone
