"""XML substrate: tokenizer, parser, tree model and serializer.

Implemented from scratch (no ``xml.etree``/``lxml``) so the whole stack,
down to the byte stream, is under the reproduction's control.
"""

from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.parser import (parse_document, parse_fragment,
                                 split_documents)
from repro.xmlkit.serializer import serialize
from repro.xmlkit.tokenizer import Token, TokenType, tokenize
from repro.xmlkit.tree import Document, XMLNode

__all__ = [
    "Document",
    "Token",
    "TokenType",
    "XMLNode",
    "XMLSyntaxError",
    "parse_document",
    "parse_fragment",
    "serialize",
    "split_documents",
    "tokenize",
]
