"""XML parser: token stream -> ordered labeled tree.

Following Section 2 of the paper, attributes are folded into the tree as
subelements: an attribute ``k="v"`` of element ``e`` becomes a child element
node ``@k`` of ``e`` with a single value-node child ``v``.  The ``@`` prefix
keeps attribute names from colliding with element tags (it is not a valid
XML name start character) while letting the rest of the system treat both
uniformly, exactly as the paper does.
"""

from __future__ import annotations

from repro.xmlkit.errors import XMLSyntaxError
from repro.xmlkit.tokenizer import TokenType, tokenize
from repro.xmlkit.tree import Document, XMLNode

#: Prefix applied to attribute names when folding them into the tree.
ATTRIBUTE_PREFIX = "@"


def _attach_attributes(node, attrs):
    for name, attr_value in attrs:
        attr_node = XMLNode(ATTRIBUTE_PREFIX + name)
        if attr_value:
            attr_node.append(XMLNode(attr_value, is_value=True))
        node.append(attr_node)


def parse_fragment(text):
    """Parse an XML string and return the root :class:`XMLNode`."""
    root = None
    stack = []
    for token in tokenize(text):
        if token.type is TokenType.TEXT:
            if not stack:
                raise XMLSyntaxError("character data outside the root element",
                                     token.offset)
            stack[-1].append(XMLNode(token.value, is_value=True))
        elif token.type is TokenType.START:
            node = XMLNode(token.value)
            _attach_attributes(node, token.attrs)
            if stack:
                stack[-1].append(node)
            elif root is None:
                root = node
            else:
                raise XMLSyntaxError("multiple root elements", token.offset)
            if not token.self_closing:
                stack.append(node)
        else:  # TokenType.END
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.value}>", token.offset)
            open_node = stack.pop()
            if open_node.tag != token.value:
                raise XMLSyntaxError(
                    f"mismatched end tag </{token.value}>, "
                    f"expected </{open_node.tag}>", token.offset)
    if root is None:
        raise XMLSyntaxError("document has no root element")
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    return root


def parse_document(text, doc_id=0):
    """Parse an XML string into a numbered :class:`Document`."""
    return Document(parse_fragment(text), doc_id=doc_id)


def split_documents(text, record_tags=None, start_id=1):
    """Parse a corpus file into one :class:`Document` per record.

    Large bibliographic/biological corpora wrap millions of records in a
    single root element; the paper indexes each record as its own
    document (e.g. 328,858 sequences from one DBLP file).  This splits
    the root's element children into separate documents.

    Args:
        text: the corpus XML.
        record_tags: optional collection of tags to accept as records;
            other children are skipped.  Default: every element child.
        start_id: document id of the first record.

    Returns a list of numbered :class:`Document` objects.
    """
    root = parse_fragment(text)
    documents = []
    doc_id = start_id
    for child in root.children:
        if child.is_value:
            continue
        if child.tag.startswith(ATTRIBUTE_PREFIX):
            continue  # root attributes are not records
        if record_tags is not None and child.tag not in record_tags:
            continue
        child.parent = None
        documents.append(Document(child, doc_id=doc_id))
        doc_id += 1
    return documents
