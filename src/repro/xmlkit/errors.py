"""Errors raised by the XML substrate."""


class XMLSyntaxError(ValueError):
    """Raised when the tokenizer or parser encounters malformed XML.

    Carries the byte offset and a human-readable reason so callers can
    surface precise diagnostics.
    """

    def __init__(self, message, offset=None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)


class TreeConstructionError(ValueError):
    """Raised when an operation would produce an invalid document tree."""
