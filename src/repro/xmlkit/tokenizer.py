"""A from-scratch streaming XML tokenizer.

The tokenizer turns XML text into a flat stream of :class:`Token` objects:
start tags (with attributes), end tags, and character data.  Comments,
processing instructions, the XML declaration and DOCTYPE are consumed and
discarded; CDATA sections and the five predefined entities are decoded into
character data.

It deliberately implements the subset of XML 1.0 that database corpora use
(DBLP, SWISSPROT and TREEBANK are all plain element/attribute/PCDATA
documents); exotic features such as external DTD entities are rejected with
:class:`~repro.xmlkit.errors.XMLSyntaxError` rather than silently
mis-parsed.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.xmlkit.errors import XMLSyntaxError


class TokenType(enum.Enum):
    """Kinds of tokens produced by :func:`tokenize`."""

    START = "start"
    END = "end"
    TEXT = "text"


@dataclass(frozen=True)
class Token:
    """One lexical unit of an XML document."""

    type: TokenType
    value: str
    attrs: tuple = field(default=())
    self_closing: bool = False
    offset: int = 0


_NAME_RE = re.compile(
    "[A-Za-z_:\u0080-\U0010ffff][-A-Za-z0-9._:\u0080-\U0010ffff]*")
_WS_RE = re.compile(r"\s+")
_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")


def _decode_entities(text, offset):
    """Replace predefined and numeric character references in ``text``."""

    def replace(match):
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _ENTITIES[body]
        except KeyError:
            raise XMLSyntaxError(
                f"unknown entity &{body};", offset + match.start()
            ) from None

    if "&" not in text:
        return text
    return _ENTITY_RE.sub(replace, text)


def _parse_attributes(text, base_offset):
    """Parse the attribute region of a start tag into (name, value) pairs."""
    attrs = []
    pos = 0
    length = len(text)
    while pos < length:
        ws = _WS_RE.match(text, pos)
        if ws:
            pos = ws.end()
        if pos >= length:
            break
        name_match = _NAME_RE.match(text, pos)
        if not name_match:
            raise XMLSyntaxError("malformed attribute name", base_offset + pos)
        name = name_match.group(0)
        pos = name_match.end()
        ws = _WS_RE.match(text, pos)
        if ws:
            pos = ws.end()
        if pos >= length or text[pos] != "=":
            raise XMLSyntaxError(
                f"attribute {name!r} missing '='", base_offset + pos
            )
        pos += 1
        ws = _WS_RE.match(text, pos)
        if ws:
            pos = ws.end()
        if pos >= length or text[pos] not in "\"'":
            raise XMLSyntaxError(
                f"attribute {name!r} value must be quoted", base_offset + pos
            )
        quote = text[pos]
        end = text.find(quote, pos + 1)
        if end < 0:
            raise XMLSyntaxError(
                f"unterminated value for attribute {name!r}", base_offset + pos
            )
        raw = text[pos + 1:end]
        attrs.append((name, _decode_entities(raw, base_offset + pos + 1)))
        pos = end + 1
    return tuple(attrs)


def tokenize(text):
    """Yield the :class:`Token` stream of an XML document string."""
    pos = 0
    length = len(text)
    while pos < length:
        if text[pos] != "<":
            next_lt = text.find("<", pos)
            if next_lt < 0:
                next_lt = length
            raw = text[pos:next_lt]
            decoded = _decode_entities(raw, pos)
            if decoded.strip():
                yield Token(TokenType.TEXT, decoded, offset=pos)
            pos = next_lt
            continue

        if text.startswith("<!--", pos):
            end = text.find("-->", pos + 4)
            if end < 0:
                raise XMLSyntaxError("unterminated comment", pos)
            pos = end + 3
            continue

        if text.startswith("<![CDATA[", pos):
            end = text.find("]]>", pos + 9)
            if end < 0:
                raise XMLSyntaxError("unterminated CDATA section", pos)
            raw = text[pos + 9:end]
            if raw:
                yield Token(TokenType.TEXT, raw, offset=pos)
            pos = end + 3
            continue

        if text.startswith("<!DOCTYPE", pos):
            # Consume up to the matching '>', honoring an internal subset.
            depth = 0
            scan = pos
            while scan < length:
                char = text[scan]
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
                elif char == ">" and depth <= 0:
                    break
                scan += 1
            if scan >= length:
                raise XMLSyntaxError("unterminated DOCTYPE", pos)
            pos = scan + 1
            continue

        if text.startswith("<?", pos):
            end = text.find("?>", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated processing instruction", pos)
            pos = end + 2
            continue

        if text.startswith("</", pos):
            end = text.find(">", pos + 2)
            if end < 0:
                raise XMLSyntaxError("unterminated end tag", pos)
            name = text[pos + 2:end].strip()
            if not _NAME_RE.fullmatch(name):
                raise XMLSyntaxError(f"malformed end tag {name!r}", pos)
            yield Token(TokenType.END, name, offset=pos)
            pos = end + 1
            continue

        # Ordinary start tag.
        end = text.find(">", pos + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated start tag", pos)
        body = text[pos + 1:end]
        self_closing = body.endswith("/")
        if self_closing:
            body = body[:-1]
        name_match = _NAME_RE.match(body)
        if not name_match:
            raise XMLSyntaxError("malformed start tag", pos)
        name = name_match.group(0)
        attrs = _parse_attributes(body[name_match.end():], pos + 1 + name_match.end())
        yield Token(TokenType.START, name, attrs=attrs,
                    self_closing=self_closing, offset=pos)
        pos = end + 1
