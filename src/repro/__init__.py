"""PRIX reproduction: Indexing and Querying XML Using Prufer Sequences.

This package is a full, from-scratch Python reproduction of the PRIX system
(Rao and Moon, ICDE 2004) together with every substrate the paper depends on:

- :mod:`repro.xmlkit` -- XML tokenizer/parser and an ordered labeled tree model,
- :mod:`repro.datasets` -- synthetic DBLP/SWISSPROT/TREEBANK-like corpora,
- :mod:`repro.storage` -- paged storage, buffer pool and a disk-based B+-tree,
- :mod:`repro.prufer` -- Prufer sequence construction and reconstruction,
- :mod:`repro.trie` -- the virtual trie and its containment labeling,
- :mod:`repro.prix` -- the PRIX index and the filter/refine query pipeline,
- :mod:`repro.query` -- an XPath-subset parser producing twig patterns,
- :mod:`repro.baselines` -- ViST, PathStack, TwigStack and TwigStackXB,
- :mod:`repro.bench` -- the experiment harness regenerating every table/figure.

Quickstart::

    from repro import PrixIndex, parse_xpath
    from repro.datasets import dblp

    corpus = dblp(n_records=500, seed=7)
    index = PrixIndex.build(corpus.documents)
    matches = index.query(parse_xpath('//inproceedings[./author="A. Turing"]'))
"""

import os as _os

from repro.prix.index import PrixIndex
from repro.prix.matcher import TwigMatch
from repro.query.xpath import parse_xpath
from repro.query.twig import TwigPattern, TwigNode, Axis
from repro.xmlkit.parser import parse_document
from repro.xmlkit.tree import Document, XMLNode

__all__ = [
    "Axis",
    "Document",
    "PrixIndex",
    "TwigMatch",
    "TwigNode",
    "TwigPattern",
    "XMLNode",
    "parse_document",
    "parse_xpath",
]

__version__ = "1.0.0"

# PRIX_SANITIZE=1 turns on the runtime resource-protocol sanitizer for
# the whole process (see repro.analysis.sanitizer) -- CI runs one test
# shard this way so pin/flush discipline is asserted dynamically too.
if _os.environ.get("PRIX_SANITIZE", "") not in ("", "0"):
    from repro.analysis.sanitizer import enable as _enable_sanitizer
    _enable_sanitizer()
