"""Data-driven query workload generation.

The paper's future work asks how PRIX behaves "for different query
characteristics such as the cardinality of result sets".  To study that,
queries must exist at many selectivities; this module samples twig
patterns from the indexed documents themselves, so every generated query
has at least one match and cardinalities spread naturally.
"""

from __future__ import annotations

import random

from repro.query.twig import Axis, TwigNode, TwigPattern


def sample_twig(documents, rng, max_depth=3, branch_p=0.5,
                descendant_p=0.3, value_p=0.25):
    """Sample one twig pattern that occurs in ``documents``.

    Picks a random node of a random document and grows a pattern along
    its actual edges: a downward path with optional sibling branch,
    occasionally generalizing a child edge to ``//`` or keeping a value
    predicate.  Queries therefore vary in selectivity from one document
    to most of the corpus.
    """
    for _ in range(64):
        document = rng.choice(documents)
        candidates = [node for node in document.nodes_in_postorder()
                      if not node.is_value and node.children]
        if candidates:
            anchor = rng.choice(candidates)
            pattern = _grow(anchor, rng, max_depth, branch_p,
                            descendant_p, value_p)
            if pattern is not None:
                return pattern
    raise ValueError("could not sample a twig from these documents")


def _grow(anchor, rng, max_depth, branch_p, descendant_p, value_p):
    root = TwigNode(anchor.tag)
    count = _extend(root, anchor, rng, max_depth, branch_p,
                    descendant_p, value_p)
    if count == 0:
        return None
    return TwigPattern(root, absolute=False, source="sampled")


def _extend(twig_node, data_node, rng, depth_left, branch_p,
            descendant_p, value_p):
    """Grow the twig along the data node's real children; returns how
    many child steps were added."""
    if depth_left <= 0 or not data_node.children:
        return 0
    added = 0
    n_branches = 2 if (rng.random() < branch_p
                       and len(data_node.children) >= 2) else 1
    children = rng.sample(data_node.children,
                          min(n_branches, len(data_node.children)))
    for data_child in children:
        if data_child.is_value:
            if rng.random() < value_p:
                twig_node.append(TwigNode(data_child.tag, axis=Axis.CHILD,
                                          is_value=True))
                added += 1
            continue
        axis = (Axis.DESCENDANT if rng.random() < descendant_p
                else Axis.CHILD)
        child = TwigNode(data_child.tag, axis=axis)
        twig_node.append(child)
        added += 1
        _extend(child, data_child, rng, depth_left - 1, branch_p,
                descendant_p, value_p)
    return added
