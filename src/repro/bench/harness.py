"""Measurement harness shared by every benchmark.

A :class:`BenchEnvironment` builds, once per (corpus, scale), all four
systems over their own storage stacks:

- the PRIX index (RPIndex + EPIndex),
- the region-encoded streams for TwigStack,
- the XB-tree forest for TwigStackXB,
- the ViST index.

Every measurement runs cold: the relevant buffer pool is flushed and
cleared first, so the reported page counts correspond to the paper's
direct-I/O methodology.  Environments are cached at module level because
pytest-benchmark re-imports bench modules freely.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.twigstack import TwigJoinStats, twig_stack
from repro.baselines.twigstackxb import XBForest, twig_stack_xb
from repro.baselines.vist import VistIndex, VistStats
from repro.bench.workloads import query_by_id
from repro.datasets import get_corpus
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

#: Scale used by the benchmark suite; override with REPRO_SCALE=tiny|small|
#: medium|large.
DEFAULT_SCALE = os.environ.get("REPRO_SCALE", "medium")

#: Page size for every system's storage stack.  The paper uses 8 KiB pages
#: against ~100 MB datasets; our corpora are ~100x smaller, so 1 KiB pages
#: keep the pages-per-dataset ratio (and therefore the I/O behaviour the
#: tables measure) in the same regime.  Override with REPRO_PAGE_SIZE.
BENCH_PAGE_SIZE = int(os.environ.get("REPRO_PAGE_SIZE", "1024"))


@dataclass
class SystemResult:
    """One (system, query) measurement."""

    system: str
    qid: str
    matches: int
    elapsed: float
    pages: int
    extra: dict = field(default_factory=dict)


class BenchEnvironment:
    """All four systems built over one corpus."""

    def __init__(self, corpus_name, scale=None, page_size=None):
        self.corpus_name = corpus_name
        self.scale = scale or DEFAULT_SCALE
        self.page_size = page_size or BENCH_PAGE_SIZE
        self.corpus = get_corpus(corpus_name, self.scale)
        documents = self.corpus.documents

        from repro.prix.index import IndexOptions
        self.prix = PrixIndex.build(
            documents, IndexOptions(page_size=self.page_size))

        self._stream_pool = BufferPool(
            Pager.in_memory(page_size=self.page_size))
        self.streams = StreamSet.build(documents, self._stream_pool)

        self._xb_pool = BufferPool(
            Pager.in_memory(page_size=self.page_size))
        self.xb_forest = XBForest.build(build_stream_entries(documents),
                                        self._xb_pool)

        self._vist_pool = BufferPool(
            Pager.in_memory(page_size=self.page_size))
        self.vist = VistIndex.build(documents, self._vist_pool)

        self._patterns = {}

    def pattern(self, qid):
        """Parsed (and cached) pattern for a Table 3 query id."""
        if qid not in self._patterns:
            self._patterns[qid] = parse_xpath(query_by_id(qid).xpath)
        return self._patterns[qid]

    # ------------------------------------------------------------------
    # Cold measurements, one per system
    # ------------------------------------------------------------------

    def run_prix(self, qid, variant=None, use_maxgap=True,
                 strategy="auto"):
        """Cold PRIX measurement for one query."""
        pattern = self.pattern(qid)
        matches, stats = self.prix.query_with_stats(
            pattern, variant=variant, use_maxgap=use_maxgap,
            strategy=strategy, cold=True)
        return SystemResult(
            system="PRIX", qid=qid, matches=len(matches),
            elapsed=stats.elapsed_seconds, pages=stats.physical_reads,
            extra={"variant": stats.variant,
                   "strategy": stats.strategy,
                   "range_queries": stats.filter.range_queries,
                   "nodes_visited": stats.filter.nodes_visited,
                   "pruned": stats.filter.pruned_by_maxgap,
                   "candidates": stats.filter.candidates})

    def run_twigstack(self, qid):
        """Cold TwigStack measurement for one query."""
        pattern = self.pattern(qid)
        self._stream_pool.flush_and_clear()
        before = self._stream_pool.stats.physical_reads
        started = time.perf_counter()
        matches, stats = twig_stack(pattern, self.streams)
        elapsed = time.perf_counter() - started
        return SystemResult(
            system="TwigStack", qid=qid, matches=len(matches),
            elapsed=elapsed,
            pages=self._stream_pool.stats.physical_reads - before,
            extra={"scanned": stats.elements_scanned,
                   "path_solutions": stats.path_solutions})

    def run_twigstack_xb(self, qid):
        """Cold TwigStackXB measurement for one query."""
        pattern = self.pattern(qid)
        self._xb_pool.flush_and_clear()
        before = self._xb_pool.stats.physical_reads
        started = time.perf_counter()
        matches, stats = twig_stack_xb(pattern, self.xb_forest)
        elapsed = time.perf_counter() - started
        return SystemResult(
            system="TwigStackXB", qid=qid, matches=len(matches),
            elapsed=elapsed,
            pages=self._xb_pool.stats.physical_reads - before,
            extra={"scanned": stats.elements_scanned,
                   "drilldowns": stats.drilldowns,
                   "coarse_advances": stats.coarse_advances})

    def run_vist(self, qid):
        """Cold ViST measurement for one query."""
        pattern = self.pattern(qid)
        self._vist_pool.flush_and_clear()
        before = self._vist_pool.stats.physical_reads
        started = time.perf_counter()
        docs, stats = self.vist.query(pattern)
        elapsed = time.perf_counter() - started
        return SystemResult(
            system="ViST", qid=qid, matches=len(docs),
            elapsed=elapsed,
            pages=self._vist_pool.stats.physical_reads - before,
            extra={"range_queries": stats.range_queries,
                   "keys_scanned": stats.keys_scanned,
                   "candidate_docs": stats.candidate_docs})


_ENVIRONMENTS = {}


def environment(corpus_name, scale=None):
    """Shared, lazily built environment for (corpus, scale)."""
    key = (corpus_name, scale or DEFAULT_SCALE)
    if key not in _ENVIRONMENTS:
        _ENVIRONMENTS[key] = BenchEnvironment(corpus_name, scale)
    return _ENVIRONMENTS[key]
