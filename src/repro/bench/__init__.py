"""Benchmark harness: workloads, measurement, and table/figure rendering."""

from repro.bench.workloads import QUERIES, QuerySpec, queries_for

__all__ = ["QUERIES", "QuerySpec", "queries_for"]
