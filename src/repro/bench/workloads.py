"""The nine XPath queries of Table 3, against the synthetic corpora.

Each :class:`QuerySpec` mirrors one row of the paper's Table 3: the XPath
text, the corpus it runs on, and its structural characteristics (node
count, branch count, values, wildcards).  Match counts are *not* hardcoded
-- the generators plant the needles, and ``tests/test_table3.py`` checks
that the PRIX engine and the naive oracle agree on every count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuerySpec:
    """One Table 3 row."""

    qid: str
    xpath: str
    corpus: str
    has_values: bool
    description: str


QUERIES = (
    QuerySpec("Q1", '//inproceedings[./author="Jim Gray"][./year="1990"]',
              "dblp", True, "twig, 5 nodes, 2 branches, values"),
    QuerySpec("Q2", "//www[./editor]/url",
              "dblp", False, "twig, 3 nodes, 2 branches, no values"),
    QuerySpec("Q3", '//title[text()="Semantic Analysis Patterns"]',
              "dblp", True, "path, 2 nodes, value"),
    QuerySpec("Q4", '//Entry[./Keyword="Rhizomelic"]',
              "swissprot", True, "path, 3 nodes, value"),
    QuerySpec("Q5", '//Entry/Ref[./Author="Mueller P"][./Author="Keller M"]',
              "swissprot", True, "twig, 6 nodes, 2 branches, values"),
    QuerySpec("Q6", '//Entry[./Org="Piroplasmida"][.//Author]//from',
              "swissprot", True, "twig, 5 nodes, 3 branches, value, //"),
    QuerySpec("Q7", "//S//NP/SYM",
              "treebank", False, "path, 3 nodes, two //"),
    QuerySpec("Q8", "//NP[./RBR_OR_JJR]/PP",
              "treebank", False, "twig, 3 nodes, 2 branches, parent/child"),
    QuerySpec("Q9", "//NP/PP/NP[./NNS_OR_NN][./NN]",
              "treebank", False, "twig, 5 nodes, 2 branches"),
)


def queries_for(corpus_name):
    """The Table 3 queries that run against ``corpus_name``."""
    return tuple(spec for spec in QUERIES if spec.corpus == corpus_name)


def query_by_id(qid):
    """The QuerySpec with the given Table 3 id."""
    for spec in QUERIES:
        if spec.qid == qid:
            return spec
    raise KeyError(qid)
