"""Plain-text table rendering for the benchmark harness.

Each benchmark regenerates one table or figure of the paper; these helpers
print the measured rows next to the paper's published values so the shape
comparison (who wins, by what factor) is immediate, and append every table
to ``benchmarks/results.txt`` for the EXPERIMENTS.md record.
"""

from __future__ import annotations

import os

RESULTS_PATH = os.environ.get(
    "REPRO_RESULTS", os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
        "benchmarks", "results.txt"))


def format_table(title, headers, rows):
    """Render an aligned text table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_table(title, headers, rows, echo=True, persist=True):
    """Print a table and append it to the shared results file."""
    text = format_table(title, headers, rows)
    if echo:
        print("\n" + text + "\n")
    if persist:
        try:
            with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
                handle.write(text + "\n\n")
        except OSError:
            pass
    return text


def ratio(numerator, denominator):
    """Human-readable ratio with divide-by-zero care."""
    if denominator == 0:
        return "inf" if numerator else "1.0x"
    return f"{numerator / denominator:.1f}x"
