"""The virtual trie of Labeled Prufer sequences (Section 5.2).

The trie is "virtual": at query time only its B+-tree projection exists
(the Trie-Symbol and Docid indexes built by :mod:`repro.prix.index`).  This
package provides the in-memory construction used at build time and the two
containment-labeling schemes:

- :class:`~repro.trie.labeling.BulkDFSLabeler` -- exact, gap-free labels
  assigned by a DFS over the finished trie (used for static corpora),
- :class:`~repro.trie.labeling.DynamicLabeler` -- the paper-faithful
  dynamic scheme with alpha-prefix pre-allocation, which can suffer scope
  underflows (Section 5.2.1); underflows are counted and trigger a rebuild.
"""

from repro.trie.labeling import (BulkDFSLabeler, DynamicLabeler,
                                 ScopeUnderflowError)
from repro.trie.trie import SequenceTrie, TrieNode

__all__ = [
    "BulkDFSLabeler",
    "DynamicLabeler",
    "ScopeUnderflowError",
    "SequenceTrie",
    "TrieNode",
]
