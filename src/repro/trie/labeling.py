"""Containment labeling of the virtual trie (Section 5.2.1).

Every trie node receives a range ``(left, right)`` such that a node's range
strictly contains the ranges of all its descendants; range queries on
``left`` then enumerate descendants, which is what Algorithm 1's
subsequence matching needs.

Two labelers are provided:

- :class:`BulkDFSLabeler` assigns exact, gap-free labels with one DFS over
  the complete trie.  It is what the PRIX index uses when built from a
  static corpus.
- :class:`DynamicLabeler` reproduces the paper's dynamic scheme: ranges
  are handed out as sequences arrive, with the range of each node carved
  out of its parent's unallocated scope.  Long sequences and large
  alphabets can exhaust a scope (*scope underflow*); the paper mitigates
  this by pre-allocating ranges for an in-memory trie of the sequences'
  length-``alpha`` prefixes, sized by the frequency and length of the
  sequences that share each prefix.  Underflows are counted and surface as
  :class:`ScopeUnderflowError` so the ablation benchmark can measure the
  effect of ``alpha`` directly.
"""

from __future__ import annotations


class ScopeUnderflowError(RuntimeError):
    """A dynamic-label allocation ran out of scope (Section 5.2.1)."""


class BulkDFSLabeler:
    """Gap-free exact labels: one DFS over a finished trie."""

    def label(self, trie):
        """Assign (left, right) to every node; return the root's range."""
        counter = 0

        # Iterative DFS with explicit enter/exit so deep tries are safe.
        stack = [(trie.root, False)]
        while stack:
            node, exiting = stack.pop()
            counter += 1
            if exiting:
                node.right = counter
                continue
            node.left = counter
            stack.append((node, True))
            for label in sorted(node.children, reverse=True):
                stack.append((node.children[label], False))
        return trie.root.left, trie.root.right


class _Scope:
    """Allocation state for one trie node under the dynamic scheme."""

    __slots__ = ("left", "right", "next_free")

    def __init__(self, left, right):
        self.left = left
        self.right = right
        self.next_free = left + 1

    def carve(self, size):
        """Allocate a child scope of ``size`` ids; may underflow."""
        if self.next_free + size > self.right:
            raise ScopeUnderflowError(
                f"need {size} ids but only "
                f"{self.right - self.next_free} remain")
        child = _Scope(self.next_free, self.next_free + size)
        self.next_free += size
        return child


class DynamicLabeler:
    """Paper-faithful dynamic labeling with alpha-prefix pre-allocation.

    Args:
        max_range: the root scope ``(1, max_range)``; the paper uses 8-byte
            ranges, i.e. ``2**63``.
        alpha: length of the LPS prefixes whose trie nodes get ranges
            pre-allocated by frequency/length (``0`` disables
            pre-allocation and makes underflows most likely).
        fanout_guess: how many children a non-pre-allocated node is assumed
            to eventually have; each new child receives
            ``remaining_scope / fanout_guess`` ids.
    """

    def __init__(self, max_range=2 ** 63, alpha=4, fanout_guess=8,
                 min_share=16):
        if max_range < 16:
            raise ValueError("max_range too small to label anything")
        self.max_range = max_range
        self.alpha = alpha
        self.fanout_guess = fanout_guess
        #: Smallest range carved for any child; leaves insertion slack so
        #: the trie can grow in place (incremental inserts, Section 5.2.1).
        self.min_share = max(min_share, 2)
        self.underflows = 0
        self.rebuilds = 0
        #: Nodes labeled before the first underflow (coverage metric for
        #: the alpha ablation: pre-allocation pushes the failure deeper).
        self.labeled_before_underflow = 0

    def label(self, trie, sequences=None):
        """Label ``trie``; on unrecoverable underflow fall back to bulk DFS.

        Args:
            trie: the finished :class:`SequenceTrie`.
            sequences: the label sequences that were inserted, used to
                compute prefix weights for pre-allocation.  When omitted,
                weights are derived from the trie itself.

        Returns the root's range.
        """
        weights = self._prefix_weights(trie)
        try:
            return self._assign(trie, weights)
        except ScopeUnderflowError:
            self.underflows += 1
            self.rebuilds += 1
            return BulkDFSLabeler().label(trie)

    def _prefix_weights(self, trie):
        """Weight of each node: total residual sequence length through it.

        Mirrors the paper: a pre-allocated prefix node's range is sized by
        the *frequency* and *length* of the sequences sharing that prefix.
        """
        weights = {}
        # Post-order accumulation without recursion (LPS's can be long).
        order = []
        stack = [trie.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children.values())
        for node in reversed(order):
            weight = 1 + len(node.doc_ids)
            for child in node.children.values():
                weight += weights[id(child)]
            weights[id(node)] = weight
        return weights

    def _assign(self, trie, weights):
        root_scope = _Scope(1, self.max_range)
        trie.root.left = root_scope.left
        trie.root.right = root_scope.right
        self.labeled_before_underflow = 0

        stack = [(trie.root, root_scope)]
        while stack:
            node, scope = stack.pop()
            children = [node.children[label]
                        for label in sorted(node.children)]
            if not children:
                continue
            in_prefix = node.level < self.alpha
            if in_prefix:
                # Pre-allocation: split *half* the scope proportionally to
                # the weight of each child subtree; the other half stays
                # unallocated for children that appear later.
                available = (scope.right - scope.next_free) // 2
                total_weight = sum(weights[id(c)] for c in children)
                for child in children:
                    share = max(
                        self.min_share,
                        2 * weights[id(child)],
                        available * weights[id(child)] // max(total_weight, 1),
                    )
                    child_scope = scope.carve(share)
                    child.left = child_scope.left
                    child.right = child_scope.right
                    self.labeled_before_underflow += 1
                    stack.append((child, child_scope))
            else:
                # Dynamic allocation: every child gets an equal slice of
                # the scope that remains when it first appears.
                for child in children:
                    remaining = scope.right - scope.next_free
                    share = max(remaining // self.fanout_guess,
                                self.min_share)
                    child_scope = scope.carve(share)
                    child.left = child_scope.left
                    child.right = child_scope.right
                    self.labeled_before_underflow += 1
                    stack.append((child, child_scope))
        return trie.root.left, trie.root.right
