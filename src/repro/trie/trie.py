"""In-memory trie over Labeled Prufer sequences.

Only the LPS's themselves are inserted (never their suffixes); Section 5.2
notes this suffices because subsequence matching is done with range queries
over the Trie-Symbol indexes.  Sharing of root-to-leaf paths across
documents with similar structure is exactly the effect the paper credits
for PRIX's small search space on DBLP (Section 6.4.2).
"""

from __future__ import annotations


class TrieNode:
    """One trie node: the target of an edge labeled ``label``."""

    __slots__ = ("label", "children", "doc_ids", "level", "left", "right",
                 "node_gap")

    def __init__(self, label, level):
        self.label = label
        self.children = {}
        #: Documents whose LPS ends exactly at this node.
        self.doc_ids = []
        #: Depth in the trie == position in the LPS (1-based).
        self.level = level
        self.left = 0
        self.right = 0
        #: Finer-grained MaxGap (Section 5.4): the largest first-to-last
        #: child span of this occurrence's parent node, over the
        #: documents passing through this trie node.
        self.node_gap = 0

    def __repr__(self):
        return (f"<TrieNode {self.label!r} level={self.level} "
                f"range=({self.left},{self.right})>")


class SequenceTrie:
    """A trie of label sequences with per-node document terminals."""

    def __init__(self):
        self.root = TrieNode(label=None, level=0)
        self.sequence_count = 0
        self.node_count = 0

    def insert(self, labels, doc_id, gaps=None):
        """Insert one LPS; record ``doc_id`` at its terminal node.

        ``gaps``, when given, carries the document's per-position parent
        spans; each is merged into the corresponding node's finer-grained
        MaxGap (Section 5.4).
        """
        node = self.root
        for position, label in enumerate(labels):
            child = node.children.get(label)
            if child is None:
                child = TrieNode(label, node.level + 1)
                node.children[label] = child
                self.node_count += 1
            node = child
            if gaps is not None and gaps[position] > node.node_gap:
                node.node_gap = gaps[position]
        node.doc_ids.append(doc_id)
        self.sequence_count += 1
        return node

    def iter_nodes(self):
        """Yield every node except the root, in DFS (label-sorted) order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root:
                yield node
            for label in sorted(node.children, reverse=True):
                stack.append(node.children[label])

    def path_count(self):
        """Number of root-to-leaf paths (distinct full LPS's)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.children:
                count += 1
            stack.extend(node.children.values())
        return count

    def max_path_sharing(self):
        """The largest number of documents sharing one terminal node.

        Reproduces the paper's observation that one DBLP root-to-leaf path
        was shared by 31,864 Regular-Prufer sequences.
        """
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if len(node.doc_ids) > best:
                best = len(node.doc_ids)
            stack.extend(node.children.values())
        return best
