"""TREEBANK-like corpus: skinny, deep trees with recursive element names.

Structural signature reproduced from the paper's TREEBANK snapshot:

- one document per parsed sentence; trees are narrow but *deep* (the
  paper's file reaches depth 36) with heavy recursion of S/NP/VP/PP,
- leaf values stand in for the encrypted PCDATA of the original (opaque
  ``VALnnnn`` tokens); queries Q7-Q9 are value-free, as in the paper,
- the needles are structural: scattered ``NP/SYM`` chains under recursive
  ``S`` (Q7), rare ``RBR_OR_JJR`` siblings of ``PP`` under ``NP`` (Q8) --
  including many near-misses where NP is an ancestor but *not* the parent
  of both, the sub-optimality trap of Section 6.4.2 -- and
  ``NP/PP/NP`` chains with ``NNS_OR_NN``/``NN`` children (Q9).
"""

from __future__ import annotations

import random

from repro.datasets.base import Corpus
from repro.xmlkit.tree import Document, copy_tree, element, value

_PRETERMINALS = ["NN", "NNS", "VB", "VBD", "DT", "JJ", "IN", "PRP", "CC"]


def _val(rng):
    return value(f"VAL{rng.randint(0, 99999):05d}")


def _preterminal(rng, tag=None):
    node = element(tag or rng.choice(_PRETERMINALS))
    node.append(_val(rng))
    return node


def _np(rng, depth, budget):
    """A noun phrase; recurses into NP/PP chains while budget remains."""
    np = element("NP")
    np.append(_preterminal(rng, "DT" if rng.random() < 0.4 else "NN"))
    if budget > 0 and rng.random() < 0.55:
        if rng.random() < 0.5:
            pp = element("PP")
            pp.append(_preterminal(rng, "IN"))
            pp.append(_np(rng, depth + 2, budget - 1))
            np.append(pp)
        else:
            np.append(_np(rng, depth + 1, budget - 1))
    return np


def _vp(rng, depth, budget):
    vp = element("VP")
    vp.append(_preterminal(rng, "VBD"))
    if budget > 0 and rng.random() < 0.5:
        vp.append(_np(rng, depth + 1, budget - 1))
    if budget > 0 and rng.random() < 0.3:
        vp.append(_s(rng, depth + 1, budget - 2))
    return vp


def _s(rng, depth, budget):
    s = element("S")
    s.append(_np(rng, depth + 1, max(budget - 1, 0)))
    s.append(_vp(rng, depth + 1, max(budget - 1, 0)))
    return s


def _refresh_values(root, rng):
    """Give a copied skeleton fresh (encrypted-stand-in) leaf values."""
    for node in root.iter_subtree():
        if node.is_value:
            node.tag = f"VAL{rng.randint(0, 99999):05d}"


def treebank(n_sentences=800, seed=36, q7_positions=9, q8_matches=1,
             q8_near_misses=40, q9_matches=6, n_templates=24):
    """Generate a TREEBANK-like corpus of ``n_sentences`` sentence trees.

    Sentences are instantiated from ``n_templates`` parse skeletons (real
    treebanks reuse a limited set of production patterns, which is what
    gives the Prufer trie its prefix sharing); leaf values are fresh per
    sentence, standing in for the original's encrypted PCDATA.

    - ``q7_positions`` sentences receive a ``NP/SYM`` chain nested under a
      recursive ``S``,
    - ``q8_matches`` sentences receive a true ``NP[./RBR_OR_JJR]/PP``
      match; ``q8_near_misses`` sentences receive the ancestor-only
      near-miss (``NP`` above both, parent of neither),
    - ``q9_matches`` sentences receive a ``NP/PP/NP`` chain whose inner NP
      has both ``NNS_OR_NN`` and ``NN`` children.
    """
    rng = random.Random(seed)
    templates = [_s(rng, 1, rng.randint(4, 14))
                 for _ in range(n_templates)]
    documents = []
    q7_set = set(int((i + 0.5) * n_sentences / q7_positions)
                 for i in range(q7_positions))
    candidates = [p for p in range(n_sentences) if p not in q7_set]
    q8_true = set(rng.sample(candidates, min(q8_matches, len(candidates))))
    candidates = [p for p in candidates if p not in q8_true]
    q8_near = set(rng.sample(candidates, min(q8_near_misses,
                                             len(candidates) // 2)))
    candidates = [p for p in candidates if p not in q8_near]
    q9_set = set(rng.sample(candidates, min(q9_matches, len(candidates))))

    for position in range(n_sentences):
        sentence = copy_tree(templates[rng.randrange(n_templates)])
        _refresh_values(sentence, rng)

        if position in q7_set:
            # Deep S ... NP/SYM needle: nest an extra S chain then a SYM.
            holder = sentence.find("NP") or sentence
            inner_s = element("S")
            chain = inner_s
            for _ in range(rng.randint(1, 4)):
                nested = element("NP")
                chain.append(nested)
                chain = nested
            sym = element("SYM")
            sym.append(_val(rng))
            chain.append(sym)
            holder.append(inner_s)
        if position in q8_true:
            np = element("NP")
            rbr = element("RBR_OR_JJR")
            rbr.append(_val(rng))
            pp = element("PP")
            pp.append(_preterminal(rng, "IN"))
            np.append(rbr)
            np.append(pp)
            sentence.append(np)
        if position in q8_near:
            # NP is an ancestor of both RBR_OR_JJR and PP but parent of
            # neither: TwigStack's partial path matches merge-fail here.
            np = element("NP")
            left = element("ADJP")
            rbr = element("RBR_OR_JJR")
            rbr.append(_val(rng))
            left.append(rbr)
            right = element("VP")
            pp = element("PP")
            pp.append(_preterminal(rng, "IN"))
            right.append(pp)
            np.append(left)
            np.append(right)
            sentence.append(np)
        if position in q9_set:
            outer = element("NP")
            pp = element("PP")
            inner = element("NP")
            for tag in ("NNS_OR_NN", "NN"):
                child = element(tag)
                child.append(_val(rng))
                inner.append(child)
            pp.append(inner)
            outer.append(pp)
            sentence.append(outer)

        documents.append(Document(sentence, doc_id=position + 1))

    return Corpus(name="treebank", documents=documents,
                  params={"n_sentences": n_sentences, "seed": seed,
                          "q7_positions": q7_positions,
                          "q8_matches": q8_matches, "q9_matches": q9_matches})
