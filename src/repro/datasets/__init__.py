"""Synthetic corpora mirroring the paper's datasets (Table 2).

The paper uses DBLP, SWISSPROT and TREEBANK from the University of
Washington repository.  Those files are not redistributable here, so each
generator reproduces the *structural signature* the experiments depend on:

- :func:`dblp` -- many small, shallow records with highly similar
  structure (the trie-sharing regime of Section 6.4.2),
- :func:`swissprot` -- bushy, shallow entries with heavy attribute use,
- :func:`treebank` -- skinny, deep trees with recursive element names.

All generators are deterministic given a seed, and plant the specific
needles (authors, keywords, organisms...) that queries Q1-Q9 look for.
"""

from repro.datasets.base import Corpus, corpus_stats
from repro.datasets.dblp import dblp
from repro.datasets.examples import (figure1_documents, figure1_query,
                                     figure2_document, figure2_query)
from repro.datasets.registry import get_corpus, list_corpora
from repro.datasets.swissprot import swissprot
from repro.datasets.treebank import treebank

__all__ = [
    "Corpus",
    "corpus_stats",
    "dblp",
    "figure1_documents",
    "figure1_query",
    "figure2_document",
    "figure2_query",
    "get_corpus",
    "list_corpora",
    "swissprot",
    "treebank",
]
