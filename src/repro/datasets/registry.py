"""Corpus registry with the scales the benchmark harness uses.

Scales keep the corpora laptop-sized while preserving each dataset's
structural signature; the benchmark harness defaults to ``"medium"``.
"""

from __future__ import annotations

from repro.datasets.dblp import dblp
from repro.datasets.swissprot import swissprot
from repro.datasets.treebank import treebank

_SCALES = {
    "tiny": {"dblp": 120, "swissprot": 40, "treebank": 60},
    "small": {"dblp": 600, "swissprot": 150, "treebank": 250},
    "medium": {"dblp": 2000, "swissprot": 600, "treebank": 800},
    "large": {"dblp": 8000, "swissprot": 2400, "treebank": 3000},
}

_GENERATORS = {
    "dblp": lambda n: dblp(n_records=n),
    "swissprot": lambda n: swissprot(n_entries=n),
    "treebank": lambda n: treebank(n_sentences=n),
}


def list_corpora():
    """Names of the available corpus generators."""
    return sorted(_GENERATORS)


def get_corpus(name, scale="medium"):
    """Instantiate a corpus by name at a registered scale.

    ``scale`` may also be an integer document count.
    """
    if name not in _GENERATORS:
        raise KeyError(f"unknown corpus {name!r}; try one of {list_corpora()}")
    if isinstance(scale, int):
        count = scale
    else:
        try:
            count = _SCALES[scale][name]
        except KeyError:
            raise KeyError(
                f"unknown scale {scale!r}; try one of {sorted(_SCALES)}"
            ) from None
    return _GENERATORS[name](count)
