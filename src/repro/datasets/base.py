"""Corpus container and the Table 2 statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmlkit.parser import ATTRIBUTE_PREFIX
from repro.xmlkit.serializer import serialize


@dataclass
class Corpus:
    """A named collection of documents plus its generation parameters."""

    name: str
    documents: list
    params: dict

    def __len__(self):
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)


@dataclass
class CorpusStats:
    """The columns of the paper's Table 2 for one corpus."""

    name: str
    size_bytes: int
    n_elements: int
    n_attributes: int
    max_depth: int
    n_sequences: int

    @property
    def size_mbytes(self):
        """Serialized size in mebibytes."""
        return self.size_bytes / (1024 * 1024)


def corpus_stats(corpus):
    """Compute the Table 2 row for a corpus.

    Elements and attributes are counted the way the paper does: attribute
    nodes (the parser's ``@``-prefixed subelements) count as attributes,
    all other element nodes count as elements; value nodes count as
    neither.  Size is the serialized XML byte count.
    """
    size_bytes = 0
    n_elements = 0
    n_attributes = 0
    max_depth = 0
    for document in corpus.documents:
        size_bytes += len(serialize(document).encode("utf-8"))
        for node in document.nodes_in_postorder():
            if node.is_value:
                continue
            if node.tag.startswith(ATTRIBUTE_PREFIX):
                n_attributes += 1
            else:
                n_elements += 1
        depth = document.max_depth()
        if depth > max_depth:
            max_depth = depth
    return CorpusStats(
        name=corpus.name,
        size_bytes=size_bytes,
        n_elements=n_elements,
        n_attributes=n_attributes,
        max_depth=max_depth,
        n_sequences=len(corpus.documents),
    )
