"""SWISSPROT-like corpus: bushy, shallow, attribute-heavy protein entries.

Structural signature reproduced from the paper's SWISSPROT snapshot:

- one document per protein ``Entry``; entries are *bushy* (many children
  under the root and under ``Features``) and shallow (max depth ~5),
- roughly 0.74 attributes per element (the paper's snapshot has 2.19M
  attributes for 2.98M elements), modeled with ``@id``/``@type`` etc.,
- references carry multiple ``Author`` children -- the needle structure
  for Q5, which searches for a Ref with two specific coauthors,
- entries with ``Org="Piroplasmida"`` are scattered and only a few of
  them also have Author descendants plus ``from`` fields, while Author
  and from tags abound *near* them in other entries: the distribution
  that defeats TwigStackXB's skipping on Q6 (Section 6.4.2).
"""

from __future__ import annotations

import random

from repro.datasets.base import Corpus
from repro.xmlkit.parser import ATTRIBUTE_PREFIX
from repro.xmlkit.tree import Document, XMLNode, element, value

_AUTHORS = ["Smith J", "Chen L", "Okada T", "Varga B", "Novak P",
            "Silva M", "Dubois C", "Hansen K", "Rossi G", "Kim S",
            "Mueller P", "Keller M", "Weber H", "Olsen N", "Braun F"]
_ORGS = ["Eukaryota", "Metazoa", "Chordata", "Mammalia", "Primates",
         "Rodentia", "Bacteria", "Proteobacteria", "Fungi", "Viridiplantae",
         "Apicomplexa"]
_KEYWORDS = ["Hydrolase", "Kinase", "Membrane", "Transport", "Zinc",
             "Repeat", "Signal", "Glycoprotein", "Phosphorylation",
             "Transferase", "Oxidoreductase"]
_FEATURE_TYPES = ["DOMAIN", "CHAIN", "SIGNAL", "TRANSMEM", "BINDING",
                  "ACT_SITE", "CARBOHYD", "DISULFID"]

NEEDLE_KEYWORD = "Rhizomelic"
NEEDLE_ORG = "Piroplasmida"
NEEDLE_AUTHOR_A = "Mueller P"
NEEDLE_AUTHOR_B = "Keller M"


def _attr(name, text):
    node = XMLNode(ATTRIBUTE_PREFIX + name)
    node.append(value(text))
    return node


def _field(tag, text):
    node = element(tag)
    node.append(value(text))
    return node


def _ref(rng, number, authors=None):
    ref = element("Ref")
    ref.append(_attr("num", str(number)))
    names = list(authors or [])
    n_random = rng.randint(1, 3) if not names else rng.randint(0, 2)
    for _ in range(n_random):
        name = rng.choice(_AUTHORS)
        if name not in (NEEDLE_AUTHOR_A, NEEDLE_AUTHOR_B):
            names.append(name)
    for name in names:
        ref.append(_field("Author", name))
    ref.append(_field("Cite", f"Bib{rng.randint(1, 9999)}"))
    ref.append(_field("MedlineID", str(rng.randint(10 ** 6, 10 ** 7))))
    return ref


def _feature(rng, with_from=True):
    feature = element(rng.choice(_FEATURE_TYPES))
    feature.append(_attr("status", "predicted" if rng.random() < 0.3
                         else "experimental"))
    if with_from:
        feature.append(_field("from", str(rng.randint(1, 400))))
        feature.append(_field("to", str(rng.randint(401, 900))))
    feature.append(_field("Descr", f"site {rng.randint(1, 99)}"))
    return feature


def _entry(rng, entry_id, *, orgs, keywords, refs, n_features,
           features_with_from):
    entry = element("Entry")
    entry.append(_attr("id", f"P{entry_id:06d}"))
    entry.append(_attr("class", "STANDARD"))
    entry.append(_field("AC", f"Q{rng.randint(10000, 99999)}"))
    entry.append(_field("Mod", f"{rng.randint(1, 28)}-{rng.randint(1, 12)}"
                               f"-{rng.randint(1986, 2003)}"))
    for org in orgs:
        entry.append(_field("Org", org))
    for keyword in keywords:
        entry.append(_field("Keyword", keyword))
    for ref in refs:
        entry.append(ref)
    features = element("Features")
    for index in range(n_features):
        features.append(_feature(rng, with_from=index < features_with_from))
    entry.append(features)
    return entry


def swissprot(n_entries=600, seed=19860721, q4_matches=3, q5_matches=5,
              piroplasmida_entries=8, piroplasmida_full=2):
    """Generate a SWISSPROT-like corpus of ``n_entries`` Entry documents.

    - ``q4_matches`` entries carry the Q4 keyword needle,
    - ``q5_matches`` references (in distinct entries) carry both Q5
      coauthors,
    - ``piroplasmida_entries`` entries carry ``Org="Piroplasmida"``
      scattered through the corpus, of which only ``piroplasmida_full``
      also have Author descendants *and* ``from`` fields (the Q6 shape);
      the rest lack one of the two, forcing merge-style engines to probe.
    """
    rng = random.Random(seed)
    positions = list(range(n_entries))
    piro_positions = [int((i + 0.5) * n_entries / piroplasmida_entries)
                      for i in range(piroplasmida_entries)]
    remaining = [p for p in positions if p not in set(piro_positions)]
    q4_positions = set(rng.sample(remaining, q4_matches))
    remaining = [p for p in remaining if p not in q4_positions]
    q5_positions = set(rng.sample(remaining, q5_matches))

    documents = []
    piro_full = set(piro_positions[:piroplasmida_full])
    for position in positions:
        orgs = rng.sample(_ORGS, rng.randint(1, 3))
        keywords = rng.sample(_KEYWORDS, rng.randint(1, 4))
        refs = [_ref(rng, i + 1) for i in range(rng.randint(1, 3))]
        n_features = rng.randint(3, 8)
        features_with_from = n_features  # 'from' abounds, as in the paper

        if position in set(piro_positions):
            orgs = [NEEDLE_ORG] + orgs
            if position not in piro_full:
                # Near-miss entries: Piroplasmida but no Author descendants
                # (references stripped) -- TwigStackXB must drill down to
                # reject these.
                refs = []
        if position in q4_positions:
            keywords = [NEEDLE_KEYWORD] + keywords
        if position in q5_positions:
            refs.append(_ref(rng, len(refs) + 1,
                             authors=[NEEDLE_AUTHOR_A, NEEDLE_AUTHOR_B]))

        entry = _entry(rng, position + 1, orgs=orgs, keywords=keywords,
                       refs=refs, n_features=n_features,
                       features_with_from=features_with_from)
        documents.append(Document(entry, doc_id=position + 1))

    return Corpus(name="swissprot", documents=documents,
                  params={"n_entries": n_entries, "seed": seed,
                          "q4_matches": q4_matches, "q5_matches": q5_matches,
                          "piroplasmida_entries": piroplasmida_entries,
                          "piroplasmida_full": piroplasmida_full})
