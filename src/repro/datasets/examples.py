"""The paper's running examples as ready-made documents.

- :func:`figure2_document` -- the 15-node tree T of Figure 2(a), whose
  LPS/NPS the paper works through in Examples 1-6,
- :func:`figure2_query` -- the query twig Q of Figure 2(b),
- :func:`figure1_documents` -- a (Doc1, Doc2) pair exhibiting the false
  alarm of Figure 1(b): the twig occurs in Doc1 only, but ViST's
  structure-encoded subsequence matching also reports Doc2.
"""

from __future__ import annotations

from repro.query.twig import Axis, TwigNode, TwigPattern
from repro.xmlkit.tree import Document, element


def figure2_document(doc_id=1):
    """The tree T of Figure 2(a), reconstructed from its sequences.

    The paper gives LPS(T) = A C B C C B A C A E E E D A and
    NPS(T) = 15 3 7 6 6 7 15 9 15 13 13 13 14 15, which determine the
    shape and every internal label.  The labels of the two leaves the
    paper's Example 6 does not list (nodes 1 and 8) are not derivable
    from the sequences; we use C and F respectively.
    """
    root = element("A")                       # node 15
    root.append(element("C"))                 # node 1 (leaf child of root)
    b = element("B")                          # node 7
    c3 = element("C")                         # node 3
    c3.append(element("D"))                   # node 2
    c6 = element("C")                         # node 6
    c6.append(element("D"))                   # node 4
    c6.append(element("E"))                   # node 5
    b.append(c3)
    b.append(c6)
    root.append(b)
    c9 = element("C")                         # node 9
    c9.append(element("F"))                   # node 8
    root.append(c9)
    d14 = element("D")                        # node 14
    e13 = element("E")                        # node 13
    e13.append(element("G"))                  # node 10
    e13.append(element("F"))                  # node 11
    e13.append(element("F"))                  # node 12
    d14.append(e13)
    root.append(d14)
    return Document(root, doc_id=doc_id)


def figure2_query():
    """The query twig Q of Figure 2(b).

    From Examples 2 and 6: LPS(Q) = B A E D A, NPS(Q) = 2 6 4 5 6, with
    leaves (C, 1) and (F, 3) -- i.e. A[ B/C ][ D/E/F ] as an ordered twig.
    """
    root = TwigNode("A")
    b = TwigNode("B")
    b.append(TwigNode("C"))
    d = TwigNode("D")
    e = TwigNode("E")
    e.append(TwigNode("F"))
    d.append(e)
    root.append(b)
    root.append(d)
    return TwigPattern(root, absolute=False, source="figure2")


def figure1_documents():
    """A (Doc1, Doc2) pair reproducing the Figure 1(b) false alarm.

    The twig ``//B[./C][./D]`` occurs in Doc1 (one B with both children).
    In Doc2 the C and the D hang under *different* B elements, yet the
    structure-encoded sequence of the query,
    ``(B, A)(C, AB)(D, AB)``, is still a subsequence of Doc2's sequence
    ``(A, e)(B, A)(C, AB)(B, A)(D, AB)`` -- ViST reports a false alarm,
    PRIX's refinement rejects it.
    """
    doc1_root = element("A")
    b = element("B")
    b.append(element("C"))
    b.append(element("D"))
    doc1_root.append(b)

    doc2_root = element("A")
    b1 = element("B")
    b1.append(element("C"))
    b2 = element("B")
    b2.append(element("D"))
    doc2_root.append(b1)
    doc2_root.append(b2)

    return Document(doc1_root, doc_id=1), Document(doc2_root, doc_id=2)


def figure1_query():
    """The twig used by :func:`figure1_documents`: ``//B[./C][./D]``."""
    root = TwigNode("B")
    root.append(TwigNode("C", axis=Axis.CHILD))
    root.append(TwigNode("D", axis=Axis.CHILD))
    return TwigPattern(root, absolute=False, source="//B[./C][./D]")
