"""DBLP-like corpus: shallow, highly similar bibliography records.

Structural signature reproduced from the paper's DBLP snapshot:

- one document per bibliography record (inproceedings / article / www /
  book), so the corpus is many small trees,
- records of the same kind share structure almost exactly, producing the
  heavy root-to-leaf path sharing in the Regular-Prufer trie that
  Section 6.4.2 credits for Q2's speed,
- ``www`` records are rare and *scattered* through the document-id space,
  and only a fraction of them carry an ``editor`` -- the distribution that
  forces TwigStackXB to drill down (Table 9),
- the needles for Q1 ("Jim Gray" + "1990"), Q2 (www/editor/url) and Q3
  (the title "Semantic Analysis Patterns") are planted deterministically.
"""

from __future__ import annotations

import random

from repro.datasets.base import Corpus
from repro.xmlkit.parser import ATTRIBUTE_PREFIX
from repro.xmlkit.tree import Document, XMLNode, element, value

_FIRST = ["Alan", "Barbara", "Chen", "Dana", "Edgar", "Fatima", "Grace",
          "Hiro", "Irene", "Jim", "Klaus", "Lena", "Moshe", "Nadia",
          "Otto", "Priya", "Quentin", "Rosa", "Stefan", "Tara"]
_LAST = ["Turing", "Liskov", "Wu", "Scott", "Codd", "Haddad", "Hopper",
         "Tanaka", "Greif", "Gray", "Knuth", "Meier", "Vardi", "Petrov",
         "Wagner", "Rao", "Moon", "Diaz", "Ullman", "Chandra"]
_TITLE_WORDS = ["Adaptive", "Query", "Processing", "Indexing", "Semantic",
                "Streams", "Optimization", "Databases", "Distributed",
                "Concurrency", "Recovery", "Views", "Joins", "Caching",
                "Patterns", "Analysis", "Mining", "Transactions"]
_VENUES = ["SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "CIKM"]

#: The needle values the Table 3 query analogues look for.
NEEDLE_AUTHOR = "Jim Gray"
NEEDLE_YEAR = "1990"
NEEDLE_TITLE = "Semantic Analysis Patterns"


def _attr(name, text):
    node = XMLNode(ATTRIBUTE_PREFIX + name)
    node.append(value(text))
    return node


def _field(tag, text):
    node = element(tag)
    node.append(value(text))
    return node


def _person(rng):
    # Never emit the planted needle author by chance, so the Q1 match
    # count stays exactly the number of planted records.
    while True:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        if name != NEEDLE_AUTHOR:
            return name


def _title(rng):
    while True:
        words = rng.sample(_TITLE_WORDS, rng.randint(3, 5))
        title = " ".join(words)
        if title != NEEDLE_TITLE:
            return title


def _inproceedings(rng, key, author_override=None, year_override=None,
                   title_override=None):
    record = element("inproceedings")
    record.append(_attr("key", key))
    authors = [author_override] if author_override else []
    for _ in range(rng.randint(1, 3)):
        authors.append(_person(rng))
    for author in authors:
        record.append(_field("author", author))
    record.append(_field("title", title_override or _title(rng)))
    record.append(_field("booktitle", rng.choice(_VENUES)))
    record.append(_field("year", year_override or str(rng.randint(1970, 2003))))
    if rng.random() < 0.7:
        record.append(_field("pages", f"{rng.randint(1, 400)}-"
                                      f"{rng.randint(401, 800)}"))
    if rng.random() < 0.4:
        record.append(_field("ee", f"db/conf/x/{key}.html"))
    # url tags abound outside www records too (Section 6.4.2: "editor
    # and url occurred frequently in the dataset and were present around
    # the documents with www elements").
    if rng.random() < 0.45:
        record.append(_field("url", f"db/conf/x/{key}"))
    return record


def _article(rng, key):
    record = element("article")
    record.append(_attr("key", key))
    for _ in range(rng.randint(1, 4)):
        record.append(_field("author", _person(rng)))
    record.append(_field("title", _title(rng)))
    record.append(_field("journal", "TODS" if rng.random() < 0.5 else "TKDE"))
    record.append(_field("volume", str(rng.randint(1, 30))))
    record.append(_field("year", str(rng.randint(1970, 2003))))
    if rng.random() < 0.5:
        record.append(_field("url", f"db/journals/x/{key}"))
    if rng.random() < 0.15:
        # Special-issue editors: the editor tag is not unique to www.
        record.append(_field("editor", _person(rng)))
    return record


def _www(rng, key, with_editor):
    record = element("www")
    record.append(_attr("key", key))
    if with_editor:
        record.append(_field("editor", _person(rng)))
    record.append(_field("title", _title(rng)))
    record.append(_field("url", f"http://dblp.example/{key}"))
    return record


def dblp(n_records=2000, seed=20040301, www_fraction=0.02,
         www_editor_fraction=0.3, q1_matches=6, q3_matches=1):
    """Generate a DBLP-like corpus of ``n_records`` record documents.

    The Q1 needle (``author="Jim Gray"`` and ``year="1990"``) is planted in
    exactly ``q1_matches`` inproceedings records; the Q3 needle title in
    exactly ``q3_matches`` records.  ``www`` records make up
    ``www_fraction`` of the corpus, scattered evenly, and only
    ``www_editor_fraction`` of those carry an editor.
    """
    rng = random.Random(seed)
    documents = []
    n_www = max(1, int(n_records * www_fraction))
    www_positions = set(
        int((i + 0.5) * n_records / n_www) for i in range(n_www))
    q1_positions = set(rng.sample(
        [i for i in range(n_records) if i not in www_positions],
        q1_matches))
    q3_positions = set(rng.sample(
        sorted(set(range(n_records)) - www_positions - q1_positions),
        q3_matches))

    www_seen = 0
    for position in range(n_records):
        key = f"rec/{position:07d}"
        if position in www_positions:
            with_editor = (www_seen % max(1, int(1 / www_editor_fraction))) == 0
            record = _www(rng, key, with_editor)
            www_seen += 1
        elif position in q1_positions:
            record = _inproceedings(rng, key, author_override=NEEDLE_AUTHOR,
                                    year_override=NEEDLE_YEAR)
        elif position in q3_positions:
            record = _inproceedings(rng, key, title_override=NEEDLE_TITLE)
        elif rng.random() < 0.6:
            record = _inproceedings(rng, key)
        else:
            record = _article(rng, key)
        documents.append(Document(record, doc_id=position + 1))

    return Corpus(name="dblp", documents=documents,
                  params={"n_records": n_records, "seed": seed,
                          "q1_matches": q1_matches, "q3_matches": q3_matches})
