"""Command-line interface for the PRIX index.

Usage::

    python -m repro.cli build INDEX.idx doc1.xml doc2.xml ...
    python -m repro.cli build INDEX.idx --corpus dblp --scale small
    python -m repro.cli build SHARDS/ --corpus dblp --shards 4 --workers 4
    python -m repro.cli query INDEX.idx '//book[./author="Knuth"]/title'
    python -m repro.cli stats INDEX.idx
    python -m repro.cli lint src/repro --format json

``build`` indexes XML files (one document each) or one of the bundled
synthetic corpora; ``query`` runs a twig query and prints matches with
execution statistics; ``stats`` summarizes a saved index; ``lint`` runs
the prixlint static invariant checks (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import get_corpus, list_corpora
# Exit codes: 1 = generic failure, 2 = usage error or missing file,
# 3 = corruption or recovery failure.  Scripts (and the CI smoke
# steps) branch on these, so they are part of the CLI's contract; the
# numbers live in repro.exitcodes because the serving protocol embeds
# the same vocabulary in its typed error responses.
from repro.exitcodes import EXIT_CORRUPTION, EXIT_ERROR, EXIT_USAGE
from repro.prix.budget import BudgetExceededError, QueryBudget
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.errors import CorruptionError, StorageError, WalError
from repro.xmlkit.parser import parse_document, split_documents


def _open_index(path, backend="file"):
    """Open ``path`` as whichever index kind it is.

    A directory holding a ``prixshard.json`` manifest opens as a
    :class:`~repro.shard.ShardedIndex`; anything else opens as a
    monolithic :class:`PrixIndex`.  Every read-side command routes
    through here, so shard directories are first-class arguments to
    ``query``/``stats``/``insert``/``delete``.
    """
    from repro.shard import ShardedIndex, is_shard_directory
    if is_shard_directory(path):
        return ShardedIndex.open(path, backend=backend)
    return PrixIndex.open(path, backend=backend)


def _cmd_build(args):
    if args.corpus:
        corpus = get_corpus(args.corpus, args.scale)
        documents = corpus.documents
        print(f"generated corpus {args.corpus!r} "
              f"({len(documents)} documents)")
    elif args.files:
        documents = []
        for path in args.files:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if args.split:
                documents.extend(split_documents(
                    text, start_id=len(documents) + 1))
            else:
                documents.append(parse_document(text,
                                                len(documents) + 1))
        print(f"parsed {len(documents)} document(s)")
    else:
        print("error: provide XML files or --corpus", file=sys.stderr)
        return EXIT_USAGE

    if args.shards:
        from repro.shard import build_shards
        options = IndexOptions(page_size=args.page_size,
                               labeler=args.labeler,
                               durable=args.durable,
                               guard=args.guard)
        report = build_shards(documents, args.index, shards=args.shards,
                              workers=args.workers, options=options)
        for row in report.shards:
            print(f"  {row.name}: {row.doc_count} document(s) "
                  f"[{row.low}..{row.high}], {row.trie_nodes} trie "
                  f"nodes, {row.build_seconds * 1000:.0f} ms")
        print(f"sharded index written to {args.index} "
              f"({len(report.shards)} shard(s), {args.workers} "
              f"worker(s), {report.elapsed_seconds:.2f} s)")
        return 0

    options = IndexOptions(path=args.index,
                           page_size=args.page_size,
                           labeler=args.labeler,
                           durable=args.durable,
                           guard=args.guard)
    index = PrixIndex.build(documents, options)
    index.save()
    if index.durable:
        print(f"write-ahead log at {args.index}.wal")
    if args.guard:
        print(f"checksum sidecar at {args.index}.sum")
    for variant in index.variants():
        stats = index.trie_stats(variant)
        print(f"  {variant}: {stats.node_count} trie nodes over "
              f"{stats.total_sequence_length} sequence symbols")
    index.close()
    print(f"index written to {args.index}")
    return 0


def _make_budget(args):
    """Assemble a QueryBudget from the ``--budget-*`` flags, or None."""
    budget = QueryBudget(
        max_range_queries=args.budget_range_queries,
        max_physical_reads=args.budget_reads,
        max_candidates=args.budget_candidates,
        deadline_seconds=(args.budget_ms / 1000.0
                          if args.budget_ms is not None else None))
    return None if budget.unlimited else budget


def _cmd_query(args):
    index = _open_index(args.index, backend=args.backend)
    try:
        pattern = parse_xpath(args.xpath)
        matches, stats = index.query_with_stats(
            pattern, ordered=args.ordered, variant=args.variant,
            use_maxgap=not args.no_maxgap, cold=args.cold,
            budget=_make_budget(args))
        by_doc = {}
        for match in matches:
            by_doc.setdefault(match.doc_id, []).append(match)
        if getattr(matches, "approximate", False):
            # The degradation contract (docs/ROBUSTNESS.md): these are
            # the filter phase's candidate documents, a guaranteed
            # superset of the exact answer's documents (Theorems 1-2).
            print(f"approximate result: {len(by_doc)} candidate "
                  f"document(s), a superset of the exact answer")
            print(f"  degraded: {matches.degradation_reason}")
            for doc_id in sorted(by_doc)[:args.limit]:
                print(f"  doc {doc_id} (unrefined candidate)")
            if len(by_doc) > args.limit:
                print(f"  ... ({len(by_doc) - args.limit} more)")
        else:
            print(f"{len(matches)} match(es) in {len(by_doc)} document(s)")
            limit = args.limit
            shown = 0
            for doc_id in sorted(by_doc):
                for match in by_doc[doc_id]:
                    if shown >= limit:
                        print(f"  ... ({len(matches) - shown} more)")
                        return 0
                    print(f"  doc {doc_id}: {dict(match.images)}")
                    shown += 1
        if args.explain:
            print(f"\nvariant={stats.variant} strategy={stats.strategy} "
                  f"arrangements={stats.arrangements}")
            if getattr(stats, "shards", 0):
                scattered = ", ".join(
                    f"{row['shard']}={row['matches']}"
                    for row in stats.per_shard)
                print(f"shards: {stats.shards} ({scattered})")
            print(f"filter: {stats.filter.range_queries} range queries, "
                  f"{stats.filter.nodes_visited} trie nodes, "
                  f"{stats.filter.pruned_by_maxgap} pruned by MaxGap")
            print(f"refinement: {stats.candidates_refined} candidates, "
                  f"{stats.candidates_accepted} accepted")
            print(f"I/O: {stats.physical_reads} pages read "
                  f"({'cold' if args.cold else 'warm'}); "
                  f"elapsed {stats.elapsed_seconds * 1000:.2f} ms")
        return 0
    finally:
        index.close()


def _cmd_insert(args):
    index = _open_index(args.index)
    try:
        doc_id = args.doc_id
        if doc_id is None:
            from repro.shard import ShardedIndex
            if isinstance(index, ShardedIndex):
                doc_id = index.catalog.entries[-1].high + 1
            else:
                doc_id = (max(index._doc_ids) + 1) if index._doc_ids else 1
        with open(args.file, "r", encoding="utf-8") as handle:
            document = parse_document(handle.read(), doc_id)
        from repro.prix.incremental import RebuildRequiredError
        try:
            index.insert_document(document)
        except RebuildRequiredError as error:
            print(f"error: {error}\nthe index has no insertion slack; "
                  f"rebuild it with --labeler dynamic (for a shard "
                  f"directory, run 'prix rebalance')", file=sys.stderr)
            return 1
        index.save()
        print(f"inserted document {doc_id}; index now holds "
              f"{index.doc_count} documents")
        return 0
    finally:
        index.close()


def _cmd_delete(args):
    index = _open_index(args.index)
    try:
        index.delete_document(args.doc_id)
        index.save()
        print(f"deleted document {args.doc_id}; index now holds "
              f"{index.doc_count} documents")
        return 0
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        index.close()


def _cmd_explain(args):
    from repro.prix.explain import explain
    index = PrixIndex.open(args.index)
    try:
        print(explain(index, args.xpath, variant=args.variant), end="")
        return 0
    finally:
        index.close()


def _cmd_recover(args):
    from repro.storage.recovery import recover_path
    wal_path = args.wal or args.index + ".wal"
    result = recover_path(args.index, wal_path)
    if result.clean:
        print("nothing to redo; index is consistent")
    else:
        print(f"replayed {result.commits_applied} committed batch(es): "
              f"{result.pages_applied} page(s) redone, "
              f"{result.pages_discarded} uncommitted image(s) discarded, "
              f"{result.truncated_bytes} torn byte(s) truncated")
    if args.no_checkpoint:
        return 0
    # Checkpoint so the replayed tail is not replayed again on the next
    # open; this also verifies the recovered index actually opens.
    with PrixIndex.open(args.index, durable=True, wal_path=wal_path) as index:
        index.checkpoint()
        print(f"checkpointed; index holds {index.doc_count} documents")
    return 0


def _cmd_checkpoint(args):
    wal_path = args.wal or args.index + ".wal"
    with PrixIndex.open(args.index, durable=True, wal_path=wal_path) as index:
        before = index._pool.wal.size_bytes
        index.checkpoint()
        after = index._pool.wal.size_bytes
        print(f"checkpoint complete; log truncated "
              f"{before} -> {after} bytes")
    return 0


def _cmd_scrub(args):
    import os

    from repro.storage.guard import scrub_path
    if os.path.isdir(args.index):
        # Directory form: recursively scrub every index file found.  A
        # shard directory additionally has its manifest verified; any
        # unhealthy shard (or a bad manifest) yields the single
        # corruption exit code, same as one bad index.
        from repro.shard import is_shard_directory, scrub_shards
        from repro.storage import scrub_tree
        if is_shard_directory(args.index):
            report = scrub_shards(args.index, stamp_missing=args.stamp)
        else:
            report = scrub_tree(args.index, stamp_missing=args.stamp)
    else:
        report = scrub_path(args.index, wal_path=args.wal,
                            stamp_missing=args.stamp)
    if args.json:
        # The canonical serialization -- byte-identical to what the
        # serving tier's /healthz endpoint caches (docs/SERVING.md).
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 0 if report.healthy else EXIT_CORRUPTION


def _cmd_lint(args):
    from repro.analysis.runner import run_lint
    return run_lint(args)


def _cmd_serve(args):
    from repro.serve.server import run
    return run(args)


def _cmd_client(args):
    from repro.serve.client import ClientError, PrixServeClient
    import json
    client = PrixServeClient(args.url, retries=args.retries,
                             timeout=args.timeout, seed=args.retry_seed)
    try:
        result = client.query(args.xpath, index=args.index,
                              ordered=args.ordered, variant=args.variant,
                              use_maxgap=not args.no_maxgap,
                              limit=args.limit,
                              deadline_ms=args.deadline_ms)
    except ClientError as error:
        # The typed hierarchy mirrors repro.exitcodes, so the process
        # exit status matches what the equivalent local 'prix query'
        # would have returned for the same failure.
        print(f"error [{type(error).__name__}]: {error}", file=sys.stderr)
        return error.exit_code
    print(json.dumps(result, sort_keys=True, indent=2))
    return 0


def _stats_payload(index, target):
    """Machine-readable ``prix stats`` summary (``--json``).

    Mirrors ``prix scrub --json``: canonical keys the shard bench and
    the CI matrix scrape instead of parsing the human rendering.
    """
    from repro.shard import ShardedIndex
    payload = {"target": target, "documents": index.doc_count}
    if isinstance(index, ShardedIndex):
        catalog = index.catalog
        payload["generation"] = catalog.generation
        payload["shard_count"] = index.shard_count
        payload["shards"] = index.shard_stats()
    else:
        payload["variants"] = {}
        for variant in index.variants():
            stats = index.trie_stats(variant)
            payload["variants"][variant] = {
                "sequences": stats.sequence_count,
                "total_symbols": stats.total_sequence_length,
                "trie_nodes": stats.node_count,
                "paths": stats.path_count,
                "max_path_sharing": stats.max_path_sharing,
            }
    return payload


def _cmd_stats(args):
    import json

    from repro.shard import ShardedIndex
    index = _open_index(args.index, backend=args.backend)
    try:
        if args.json:
            print(json.dumps(_stats_payload(index, args.index),
                             sort_keys=True, indent=2))
            return 0
        if isinstance(index, ShardedIndex):
            catalog = index.catalog
            print(f"documents: {index.doc_count}")
            print(f"shards: {index.shard_count} "
                  f"(generation {catalog.generation})")
            for row in index.shard_stats():
                print(f"  {row['shard']}: {row['doc_count']} doc(s) "
                      f"[{row['low']}..{row['high']}] in {row['file']}")
            return 0
        print(f"documents: {index.doc_count}")
        for variant in index.variants():
            stats = index.trie_stats(variant)
            kind = ("Extended-Prufer (EPIndex)" if variant == "ep"
                    else "Regular-Prufer (RPIndex)")
            print(f"\n{variant} -- {kind}")
            print(f"  sequences        : {stats.sequence_count}")
            print(f"  total symbols    : {stats.total_sequence_length}")
            print(f"  trie nodes       : {stats.node_count}")
            print(f"  root-leaf paths  : {stats.path_count}")
            print(f"  best path sharing: {stats.max_path_sharing} docs")
        return 0
    finally:
        index.close()


def _cmd_rebalance(args):
    from repro.shard import compact, rebalance
    if args.compact:
        report = compact(args.index, workers=args.workers)
    else:
        report = rebalance(args.index, shards=args.shards,
                           workers=args.workers)
    print(f"generation {report.generation}: {report.shards} shard(s), "
          f"{report.doc_count} document(s)")
    print(f"  reused      : {report.reused}")
    print(f"  incremental : {report.incremental}")
    print(f"  rebuilt     : {report.rebuilt}")
    print(f"  moved docs  : {report.moved_documents}")
    print(f"  elapsed     : {report.elapsed_seconds:.2f} s")
    return 0


def make_parser():
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="prix", description="PRIX XML twig-query index (ICDE 2004)")
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build and save an index")
    build.add_argument("index", help="output index file")
    build.add_argument("files", nargs="*", help="XML files (one doc each)")
    build.add_argument("--corpus", choices=list_corpora(),
                       help="use a bundled synthetic corpus instead")
    build.add_argument("--scale", default="small",
                       help="corpus scale (tiny/small/medium/large or int)")
    build.add_argument("--page-size", type=int, default=8192)
    build.add_argument("--split", action="store_true",
                       help="treat each root child as its own document "
                            "(DBLP-style corpus files)")
    build.add_argument("--labeler", choices=["bulk", "dynamic"],
                       default="bulk",
                       help="trie labeling: 'dynamic' leaves slack for "
                            "later 'insert' commands")
    build.add_argument("--durable", action="store_true",
                       help="write-ahead log every mutation to "
                            "INDEX.wal so a crash is recoverable "
                            "with 'prix recover'")
    build.add_argument("--guard", action="store_true",
                       help="keep per-page checksums in INDEX.sum; "
                            "reads verify, repair from the WAL, or fail "
                            "with a typed corruption error")
    build.add_argument("--shards", type=int, default=None, metavar="N",
                       help="partition into N doc-id-range shards; "
                            "INDEX becomes a directory holding one "
                            "index file per shard plus a checksummed "
                            "prixshard.json manifest (docs/SHARDING.md)")
    build.add_argument("--workers", type=int, default=1, metavar="W",
                       help="build shards with W processes (with "
                            "--shards; output is identical at any W)")
    build.set_defaults(func=_cmd_build)

    query = commands.add_parser("query", help="run a twig query")
    query.add_argument("index", help="index file or shard directory")
    query.add_argument("xpath", help="XPath-subset twig query")
    query.add_argument("--ordered", action="store_true",
                       help="match the twig's branch order only")
    query.add_argument("--variant", choices=["rp", "ep"],
                       help="force an index variant")
    query.add_argument("--no-maxgap", action="store_true",
                       help="disable Theorem 4 pruning")
    query.add_argument("--cold", action="store_true",
                       help="flush the buffer pool first")
    query.add_argument("--limit", type=int, default=20,
                       help="max matches to print")
    query.add_argument("--explain", action="store_true",
                       help="print execution statistics")
    query.add_argument("--budget-range-queries", type=int, default=None,
                       metavar="N",
                       help="cap trie range queries (exceeding during "
                            "filtering is an error)")
    query.add_argument("--budget-reads", type=int, default=None,
                       metavar="N", help="cap physical page reads")
    query.add_argument("--budget-candidates", type=int, default=None,
                       metavar="N",
                       help="cap refinement candidates; exceeding "
                            "returns the filter superset as an "
                            "approximate result")
    query.add_argument("--budget-ms", type=float, default=None,
                       metavar="MS", help="wall-clock deadline in ms")
    query.add_argument("--backend", choices=["file", "mmap", "arena"],
                       default="file",
                       help="storage backend to open the index with: "
                            "'file' (writable pager), 'mmap' (read-only "
                            "shared pages) or 'arena' (warm in-memory "
                            "snapshot, no disk I/O after open)")
    query.set_defaults(func=_cmd_query)

    insert = commands.add_parser(
        "insert", help="insert one XML document into a saved index "
                       "(requires an index built with --labeler dynamic)")
    insert.add_argument("index", help="index file")
    insert.add_argument("file", help="XML file (one document)")
    insert.add_argument("--doc-id", type=int, default=None,
                        help="document id (default: next free)")
    insert.set_defaults(func=_cmd_insert)

    delete = commands.add_parser(
        "delete", help="remove one document from a saved index")
    delete.add_argument("index", help="index file")
    delete.add_argument("doc_id", type=int, help="document id")
    delete.set_defaults(func=_cmd_delete)

    explain_cmd = commands.add_parser(
        "explain", help="show the execution plan for a query")
    explain_cmd.add_argument("index", help="index file")
    explain_cmd.add_argument("xpath", help="XPath-subset twig query")
    explain_cmd.add_argument("--variant", choices=["rp", "ep"])
    explain_cmd.set_defaults(func=_cmd_explain)

    stats = commands.add_parser(
        "stats", help="summarize a saved index or shard directory")
    stats.add_argument("index", help="index file or shard directory")
    stats.add_argument("--backend", choices=["file", "mmap", "arena"],
                       default="file",
                       help="storage backend to open the index with")
    stats.add_argument("--json", action="store_true",
                       help="emit a machine-readable summary (mirrors "
                            "'prix scrub --json')")
    stats.set_defaults(func=_cmd_stats)

    rebalance_cmd = commands.add_parser(
        "rebalance", help="re-cut a shard directory into near-equal "
                          "doc-id ranges, publishing a new manifest "
                          "generation (docs/SHARDING.md)")
    rebalance_cmd.add_argument("index", help="shard directory")
    rebalance_cmd.add_argument("--shards", type=int, default=None,
                               metavar="N",
                               help="target shard count (default: keep)")
    rebalance_cmd.add_argument("--workers", type=int, default=1,
                               metavar="W",
                               help="rebuild processes")
    rebalance_cmd.add_argument("--compact", action="store_true",
                               help="rebuild every shard from its live "
                                    "documents, dropping deleted-doc "
                                    "residue")
    rebalance_cmd.set_defaults(func=_cmd_rebalance)

    # Function-local import (like lint's below): importing repro.cli as
    # a library never drags the serving tier in.
    serve = commands.add_parser(
        "serve", help="serve twig queries over HTTP from one or more "
                      "saved indexes (see docs/SERVING.md)")
    from repro.serve.server import add_serve_arguments
    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    client_cmd = commands.add_parser(
        "client", help="query a running 'prix serve' over HTTP with "
                       "retry/backoff and typed errors (see "
                       "docs/ROBUSTNESS.md)")
    client_cmd.add_argument("url",
                            help="server base URL, e.g. "
                                 "http://127.0.0.1:8399")
    client_cmd.add_argument("xpath", help="XPath-subset twig query")
    client_cmd.add_argument("--index", default="default",
                            help="mount name to query (default: default)")
    client_cmd.add_argument("--ordered", action="store_true",
                            help="match the twig's branch order only")
    client_cmd.add_argument("--variant", choices=["rp", "ep"],
                            help="force an index variant")
    client_cmd.add_argument("--no-maxgap", action="store_true",
                            help="disable Theorem 4 pruning")
    client_cmd.add_argument("--limit", type=int, default=None,
                            help="max matches in the response")
    client_cmd.add_argument("--retries", type=int, default=5,
                            help="max retries for retryable failures "
                                 "(transport errors, 408/429/500/503)")
    client_cmd.add_argument("--retry-seed", type=int, default=0,
                            help="seed for the backoff jitter RNG "
                                 "(deterministic, replayable)")
    client_cmd.add_argument("--timeout", type=float, default=30.0,
                            help="per-request socket timeout in seconds")
    client_cmd.add_argument("--deadline-ms", type=float, default=None,
                            metavar="MS",
                            help="propagate this deadline to the server "
                                 "via the X-Prix-Deadline-Ms header")
    client_cmd.set_defaults(func=_cmd_client)

    recover = commands.add_parser(
        "recover", help="replay the committed write-ahead-log tail into "
                        "a crashed index, then checkpoint it")
    recover.add_argument("index", help="index file")
    recover.add_argument("--wal", default=None,
                         help="log file (default: INDEX.wal)")
    recover.add_argument("--no-checkpoint", action="store_true",
                         help="replay only; keep the log as-is")
    recover.set_defaults(func=_cmd_recover)

    checkpoint = commands.add_parser(
        "checkpoint", help="flush a durable index and truncate its log")
    checkpoint.add_argument("index", help="index file")
    checkpoint.add_argument("--wal", default=None,
                            help="log file (default: INDEX.wal)")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    scrub = commands.add_parser(
        "scrub", help="sweep every page and the catalog of an index, "
                      "verifying checksums and repairing from the WAL "
                      "where possible; a directory argument scrubs "
                      "every index found under it")
    scrub.add_argument("index", help="index file or directory")
    scrub.add_argument("--wal", default=None,
                       help="log file to repair from (default: INDEX.wal)")
    scrub.add_argument("--stamp", action="store_true",
                       help="adopt unstamped pages: checksum their "
                            "current content so later reads are verified")
    scrub.add_argument("--json", action="store_true",
                       help="emit the report as JSON (the same "
                            "serialization the serve tier's /healthz "
                            "endpoint returns)")
    scrub.set_defaults(func=_cmd_scrub)

    from repro.analysis.runner import add_lint_arguments
    lint = commands.add_parser(
        "lint", help="run prixlint static invariant checks "
                     "(I/O accounting, determinism, resource safety)")
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None):
    """CLI entry point; returns a process exit code.

    Failures surface as one-line typed errors, never tracebacks, with
    the code telling scripts *what kind* of failure: ``EXIT_USAGE`` (2)
    for a missing input file, ``EXIT_CORRUPTION`` (3) for checksum,
    superblock, or write-ahead-log corruption (including recovery
    failures), ``EXIT_ERROR`` (1) for everything else.
    """
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except CorruptionError as error:
        print(f"error [{type(error).__name__}]: {error}", file=sys.stderr)
        return EXIT_CORRUPTION
    except FileNotFoundError as error:
        name = error.filename if error.filename else error
        print(f"error [missing file]: {name}", file=sys.stderr)
        return EXIT_USAGE
    except BudgetExceededError as error:
        print(f"error [budget]: {error}", file=sys.stderr)
        return EXIT_ERROR
    except StorageError as error:
        # WAL corruption and protocol failures during recover/open.
        code = EXIT_CORRUPTION if isinstance(error, WalError) else EXIT_ERROR
        print(f"error [{type(error).__name__}]: {error}", file=sys.stderr)
        return code
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
