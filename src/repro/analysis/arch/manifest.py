"""The architecture manifest: ``.prixarch.toml``.

The manifest names the repository's layers and the dependencies each
layer may take (``docs/ARCHITECTURE.md``)::

    [prixarch]
    version = 1

    [layers]
    foundation = ["repro.xmlkit", "repro.prufer"]
    logical = ["repro.trie", "repro.prix", "repro.query"]

    [allowed]
    foundation = []
    logical = ["foundation", "storage-api"]

Layer membership is by *longest dotted-prefix match*: a module belongs
to the layer whose listed prefix matches the most leading components of
its dotted name (``repro.storage.pager`` is storage-impl even though
``repro.storage`` is storage-api).  Modules matching no prefix are
unlayered: they carry no import constraints themselves, but the
layering rule traverses *through* them when hunting indirect
violations.  An ``allowed`` value of ``"*"`` makes a layer
unconstrained.

Parsing prefers :mod:`tomllib` (Python 3.11+) and falls back to a
small built-in parser covering exactly the subset the manifest uses --
tables, string values, integers, and (multi-line) string arrays -- so
the analysis tier has no dependency footprint on 3.10.
"""

from __future__ import annotations

import re

try:
    import tomllib as _toml
except ImportError:          # Python 3.10: stdlib tomllib absent
    _toml = None

MANIFEST_NAME = ".prixarch.toml"


class ManifestError(ValueError):
    """The architecture manifest is missing, malformed, or inconsistent."""


class Manifest:
    """Parsed layer map: membership lookup plus allowed-dependency sets."""

    def __init__(self, layers, allowed, path=MANIFEST_NAME):
        self.path = str(path)
        #: layer name -> tuple of dotted module prefixes
        self.layers = {name: tuple(prefixes)
                       for name, prefixes in layers.items()}
        #: layer name -> frozenset of allowed layer names, or "*"
        self.allowed = {}
        for name, value in allowed.items():
            if name not in self.layers:
                raise ManifestError(
                    f"{self.path}: [allowed] names unknown layer {name!r}")
            if value == "*":
                self.allowed[name] = "*"
                continue
            unknown = [dep for dep in value if dep not in self.layers]
            if unknown:
                raise ManifestError(
                    f"{self.path}: layer {name!r} allows unknown "
                    f"layer(s) {unknown}")
            self.allowed[name] = frozenset(value)
        for name in self.layers:
            self.allowed.setdefault(name, frozenset())
        self._prefix_to_layer = {}
        for name, prefixes in self.layers.items():
            for prefix in prefixes:
                other = self._prefix_to_layer.get(prefix)
                if other is not None and other != name:
                    raise ManifestError(
                        f"{self.path}: prefix {prefix!r} is claimed by "
                        f"both {other!r} and {name!r}")
                self._prefix_to_layer[prefix] = name

    def layer_of(self, module):
        """Layer name for a dotted module, or None when unlayered."""
        parts = module.split(".")
        for width in range(len(parts), 0, -1):
            layer = self._prefix_to_layer.get(".".join(parts[:width]))
            if layer is not None:
                return layer
        return None

    def allowed_for(self, layer):
        """Allowed dependency layers of ``layer`` (or ``"*"``)."""
        return self.allowed[layer]


def parse_manifest(text, path=MANIFEST_NAME):
    """Parse manifest text into a :class:`Manifest`."""
    if _toml is not None:
        try:
            document = _toml.loads(text)
        except _toml.TOMLDecodeError as error:
            raise ManifestError(f"{path}: {error}") from None
    else:
        document = _parse_toml_subset(text, path)
    layers = document.get("layers")
    if not isinstance(layers, dict) or not layers:
        raise ManifestError(f"{path}: missing [layers] table")
    for name, prefixes in layers.items():
        if (not isinstance(prefixes, list)
                or not all(isinstance(p, str) for p in prefixes)):
            raise ManifestError(
                f"{path}: layer {name!r} must list module prefixes")
    allowed = document.get("allowed", {})
    if not isinstance(allowed, dict):
        raise ManifestError(f"{path}: [allowed] must be a table")
    return Manifest(layers, allowed, path=path)


def load_manifest(path):
    """Read and parse the manifest file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_manifest(handle.read(), path=path)


def find_manifest(start_dirs):
    """Locate ``.prixarch.toml`` upward from the given directories.

    Each start directory and its ancestors are probed in order; the
    first manifest found wins.  Returns the path or None -- a missing
    manifest is not an error (the layering rule simply has no layers to
    enforce on unmapped trees).
    """
    from pathlib import Path
    seen = set()
    for raw in start_dirs:
        base = Path(raw).resolve()
        if base.is_file():
            base = base.parent
        for directory in (base, *base.parents):
            if directory in seen:
                break
            seen.add(directory)
            candidate = directory / MANIFEST_NAME
            if candidate.is_file():
                return candidate
    return None


# ----------------------------------------------------------------------
# Fallback parser (Python 3.10: no stdlib tomllib)
# ----------------------------------------------------------------------

_SECTION = re.compile(r"^\[([A-Za-z0-9_.\-]+)\]$")
_KEY = re.compile(r"^([A-Za-z0-9_\-]+)\s*=\s*(.*)$")


def _strip_comment(line):
    """Drop a ``#`` comment, respecting double-quoted strings."""
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out).strip()


def _parse_value(text, path):
    text = text.strip()
    if text.startswith("["):
        inner = text[1:-1]
        items = [item.strip() for item in inner.split(",") if item.strip()]
        values = []
        for item in items:
            if not (item.startswith('"') and item.endswith('"')):
                raise ManifestError(
                    f"{path}: only string arrays are supported, got "
                    f"{item!r}")
            values.append(item[1:-1])
        return values
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        raise ManifestError(
            f"{path}: unsupported value {text!r} (the fallback parser "
            "handles strings, integers and string arrays)") from None


def _parse_toml_subset(text, path):
    """Parse the manifest's TOML subset without :mod:`tomllib`."""
    document = {}
    table = document
    lines = iter(text.splitlines())
    for raw in lines:
        line = _strip_comment(raw)
        if not line:
            continue
        match = _SECTION.match(line)
        if match:
            table = document.setdefault(match.group(1), {})
            if not isinstance(table, dict):
                raise ManifestError(f"{path}: duplicate key "
                                    f"{match.group(1)!r}")
            continue
        match = _KEY.match(line)
        if match is None:
            raise ManifestError(f"{path}: cannot parse line {raw!r}")
        key, value = match.groups()
        # A multi-line array continues until brackets balance.
        while value.count("[") > value.count("]"):
            try:
                value += " " + _strip_comment(next(lines))
            except StopIteration:
                raise ManifestError(
                    f"{path}: unterminated array for key {key!r}") from None
        table[key] = _parse_value(value, path)
    return document
