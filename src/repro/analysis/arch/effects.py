"""Whole-project model and effect inference.

The effect vocabulary (``docs/ARCHITECTURE.md``) names the six side
effects a storage function can have on the paper's reproduced numbers
and on concurrency state:

``raw-io``
    Unmediated file traffic: ``open()``, ``os.*``/``io.*`` file calls,
    ``mmap.mmap``, or direct file-handle operations.  Seeded only in
    the sanctioned gateways (``pager.py``, ``wal.py``, ``guard.py``,
    ``mmapio.py``) plus anything that transitively calls them.
``pager-io``
    Page traffic through a pager substrate -- the calls that move the
    "Disk IO pages" columns of Tables 4-9.
``wal-io``
    Write-ahead-log traffic (``wal_appends``/``wal_bytes`` counters).
``latch-acquire``
    Takes a latch (``with self._latch`` / ``latch.acquire()``).
``stats-mutate``
    Mutates :class:`~repro.storage.stats.IOStats` counters.
``alloc-page``
    Grows the page file (``allocate()`` / ``new_page()``).

Direct effects are seeded syntactically (gateway file-handle calls,
receiver-name heuristics for pager/WAL/stats/latch traffic), then
propagated to a fixpoint over every call the resolver can bind:
same-module functions, ``self.``/``cls.``/``super().`` methods through
the project class table, imported project functions and classes, and
locally constructed instances.  Calls that cannot be resolved simply
contribute nothing -- the inference is deliberately a *lower bound* on
real behaviour, which is why ``# prixeffect: declares=`` contracts are
checked as upper bounds: everything inferred must be declared, while
declaring more than is inferred is legal (a substrate may promise less
than its interface allows).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath

from repro.analysis.arch.imports import (collect_imports, module_name_for)

#: The closed effect vocabulary.
EFFECTS = frozenset({
    "raw-io", "pager-io", "wal-io", "latch-acquire", "stats-mutate",
    "alloc-page",
})

#: ``# prixeffect: declares=pager-io,latch-acquire`` on a def line.
_EFFECT_DECL = re.compile(r"#\s*prixeffect:\s*declares=([A-Za-z\-,\s]*)")

#: ``# priximpl: StorageBackend`` on a class def line.
_IMPL_MARK = re.compile(r"#\s*priximpl:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Sanctioned raw-I/O gateway files (mirrors NoRawIoRule.GATEWAY_FILES).
GATEWAY_FILES = ("pager.py", "wal.py", "guard.py", "mmapio.py")

#: Receiver names that look like a raw file handle (gateway files only).
_FILE_RECV = re.compile(r"(^|_)(file|fileobj|handle|fh)\d*$")
_FILE_OPS = frozenset({"read", "write", "seek", "truncate", "flush",
                       "readinto", "tell", "fileno"})

#: ``os``/``io`` members that constitute raw file traffic (kept in sync
#: with rules_io.OS_FILE_FUNCS / IO_FILE_FUNCS by the self-check tests).
_OS_FILE_FUNCS = frozenset({
    "open", "fdopen", "read", "write", "pread", "pwrite", "sendfile",
    "remove", "unlink", "rename", "replace", "truncate", "ftruncate",
    "mkstemp", "mkdir", "makedirs", "fsync",
})
_IO_FILE_FUNCS = frozenset({"open", "FileIO"})

_PAGER_RECV = re.compile(r"pager", re.IGNORECASE)
_PAGER_OPS = frozenset({"read", "read_raw", "write", "repair_write",
                        "sync", "allocate", "close"})
_WAL_RECV = re.compile(r"(^|_)wal\d*$|^wal_", re.IGNORECASE)
_WAL_OPS = frozenset({"log_page", "commit", "checkpoint", "replay",
                      "require_durable", "sync", "close", "open"})
_LATCH_RECV = re.compile(r"latch|lock", re.IGNORECASE)
_STATS_RECV = re.compile(r"stats", re.IGNORECASE)
_ALLOC_OPS = frozenset({"allocate", "new_page"})


def parse_effect_decl(line):
    """Declared effect set from a def-line comment, or None.

    Returns a frozenset (possibly empty: ``declares=`` alone promises a
    pure function).  Unknown effect names are preserved so the contract
    rule can flag them.
    """
    match = _EFFECT_DECL.search(line)
    if match is None:
        return None
    names = [part.strip() for part in match.group(1).split(",")]
    return frozenset(name for name in names if name)


def parse_impl_mark(line):
    """Protocol name from a ``# priximpl:`` class-line comment, or None."""
    match = _IMPL_MARK.search(line)
    return None if match is None else match.group(1)


def _terminal_name(node):
    """Rightmost bare identifier of a Name/Attribute chain, or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class FunctionInfo:
    """One function or method: location, contracts, effects, callees."""

    def __init__(self, module, qualname, node, cls=None):
        self.module = module
        self.qualname = qualname        # "repro.storage.pager:Pager.read"
        self.node = node
        self.cls = cls                  # owning ClassInfo, or None
        self.name = node.name
        self.lineno = node.lineno
        self.declared = None            # frozenset from # prixeffect:
        self.direct = set()             # syntactically seeded effects
        self.calls = set()              # resolved callee qualnames
        self.effects = set()            # fixpoint result

    def __repr__(self):                 # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname!r})"


class ClassInfo:
    """One class: methods, base names, priximpl marker, attributes."""

    def __init__(self, module, name, node):
        self.module = module
        self.name = name
        self.node = node
        self.lineno = node.lineno
        self.bases = [b for b in (_terminal_name(base)
                                  for base in node.bases) if b]
        self.methods = {}               # name -> FunctionInfo
        self.class_attrs = set()        # names assigned at class level
        self.instance_attrs = set()     # self.<name> assigned in methods
        self.implements = None          # protocol name from # priximpl:
        self.is_protocol = "Protocol" in self.bases

    @property
    def qualname(self):
        return f"{self.module}:{self.name}"


class ModuleInfo:
    """One source file: imports, top-level functions, classes."""

    def __init__(self, source, name):
        self.source = source
        self.name = name
        is_package = PurePath(source.path).name == "__init__.py"
        self.imports = collect_imports(source.tree, name, is_package)
        self.functions = {}             # bare name -> FunctionInfo
        self.classes = {}               # bare name -> ClassInfo
        self.is_gateway = PurePath(source.path).name in GATEWAY_FILES
        #: local binding -> project target, filled by ProjectModel:
        #:   ("module", dotted)  for `import X` / `from pkg import mod`
        #:   ("member", dotted, name) for `from mod import name`
        self.bindings = {}


class ProjectModel:
    """Cross-file function/class tables plus inferred effects."""

    def __init__(self, sources):
        self.modules = {}               # dotted name -> ModuleInfo
        self.functions = {}             # qualname -> FunctionInfo
        for source in sources:
            name = module_name_for(source.path)
            module = ModuleInfo(source, name)
            self.modules[name] = module
            self._index_module(module)
        for module in self.modules.values():
            self._bind_imports(module)
        for function in self.functions.values():
            _CallCollector(self, function).collect()
        self._infer_fixpoint()

    # ---------------------------------------------------------------- build

    def _index_module(self, module):
        source = module.source
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(module, node, None)
                module.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(module.name, node.name, node)
                cls.implements = parse_impl_mark(
                    source.lines[node.lineno - 1]
                    if node.lineno <= len(source.lines) else "")
                module.classes[node.name] = cls
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info = self._make_function(module, item, cls)
                        cls.methods[item.name] = info
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if isinstance(target, ast.Name):
                                cls.class_attrs.add(target.id)
                    elif (isinstance(item, ast.AnnAssign)
                            and isinstance(item.target, ast.Name)):
                        cls.class_attrs.add(item.target.id)
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Attribute)
                            and isinstance(sub.ctx, ast.Store)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"):
                        cls.instance_attrs.add(sub.attr)

    def _make_function(self, module, node, cls):
        suffix = node.name if cls is None else f"{cls.name}.{node.name}"
        info = FunctionInfo(module.name, f"{module.name}:{suffix}",
                            node, cls)
        lines = module.source.lines
        if node.lineno <= len(lines):
            info.declared = parse_effect_decl(lines[node.lineno - 1])
        info.direct = _direct_effects(node, module)
        self.functions[info.qualname] = info
        return info

    def _bind_imports(self, module):
        for edge in module.imports:
            if edge.member is not None:
                submodule = f"{edge.target}.{edge.member}"
                if submodule in self.modules:
                    module.bindings[edge.member] = ("module", submodule)
                elif edge.target in self.modules:
                    module.bindings[edge.member] = ("member", edge.target,
                                                    edge.member)
            else:
                if edge.target in self.modules:
                    local = edge.target.split(".")[0]
                    module.bindings.setdefault(local,
                                               ("module", edge.target))

    # ------------------------------------------------------------- resolve

    def resolve_class(self, module, name):
        """ClassInfo visible as ``name`` from ``module``, or None."""
        cls = module.classes.get(name)
        if cls is not None:
            return cls
        binding = module.bindings.get(name)
        if binding is not None and binding[0] == "member":
            target = self.modules.get(binding[1])
            if target is not None:
                return target.classes.get(binding[2])
        return None

    def mro(self, cls):
        """Left-to-right DFS linearization over project-known bases."""
        order, stack, seen = [], [cls], set()
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            order.append(current)
            module = self.modules[current.module]
            bases = [self.resolve_class(module, base)
                     for base in current.bases]
            stack = [b for b in bases if b is not None] + stack
        return order

    def lookup_method(self, cls, name):
        """FunctionInfo for ``name`` along the MRO, or None."""
        for ancestor in self.mro(cls):
            info = ancestor.methods.get(name)
            if info is not None:
                return info
        return None

    def has_attribute(self, cls, name):
        """Whether ``cls`` (or a base) defines/assigns ``name``."""
        for ancestor in self.mro(cls):
            if (name in ancestor.methods
                    or name in ancestor.class_attrs
                    or name in ancestor.instance_attrs):
                return True
        return False

    # --------------------------------------------------------------- infer

    def _infer_fixpoint(self):
        for info in self.functions.values():
            info.effects = set(info.direct)
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                for callee in info.calls:
                    target = self.functions.get(callee)
                    if target is None:
                        continue
                    if not target.effects <= info.effects:
                        info.effects |= target.effects
                        changed = True

    def effect_report(self):
        """JSON-ready mapping of every function's contract and effects."""
        report = {}
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            entry = {"effects": sorted(info.effects)}
            if info.declared is not None:
                entry["declares"] = sorted(info.declared)
            report[qualname] = entry
        return report


def _body_walk(node):
    """Walk a function body without descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _direct_effects(node, module):
    """Syntactically seeded effects of one function body."""
    effects = set()
    for sub in _body_walk(node):
        if isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                name = _terminal_name(item.context_expr)
                if name and _LATCH_RECV.search(name):
                    effects.add("latch-acquire")
        elif isinstance(sub, ast.Call):
            effects |= _call_effects(sub, module)
    return effects


def _call_effects(call, module):
    func = call.func
    effects = set()
    if isinstance(func, ast.Name):
        if func.id == "open":
            effects.add("raw-io")
        return effects
    if not isinstance(func, ast.Attribute):
        return effects
    attr = func.attr
    receiver = _terminal_name(func.value)
    if isinstance(func.value, ast.Name):
        base = func.value.id
        if base == "os" and attr in _OS_FILE_FUNCS:
            effects.add("raw-io")
        elif base == "io" and attr in _IO_FILE_FUNCS:
            effects.add("raw-io")
        elif base == "mmap" and attr == "mmap":
            effects.add("raw-io")
    if receiver is None:
        return effects
    if (module.is_gateway and attr in _FILE_OPS
            and _FILE_RECV.search(receiver)):
        effects.add("raw-io")
    if _PAGER_RECV.search(receiver) and attr in _PAGER_OPS:
        effects.add("pager-io")
    if _WAL_RECV.search(receiver) and attr in _WAL_OPS:
        effects.add("wal-io")
    if attr in _ALLOC_OPS:
        effects.add("alloc-page")
    if attr == "add" and _STATS_RECV.search(receiver):
        effects.add("stats-mutate")
    if attr == "acquire" and _LATCH_RECV.search(receiver):
        effects.add("latch-acquire")
    return effects


class _CallCollector:
    """Resolve the calls of one function against the project model."""

    _CTOR_CLASSMETHODS = frozenset({"open", "in_memory", "from_file",
                                    "build", "attach"})

    def __init__(self, project, function):
        self.project = project
        self.function = function
        self.module = project.modules[function.module]
        self.local_types = {}           # var name -> ClassInfo

    def collect(self):
        # First pass: constructor-ish assignments give local var types.
        for sub in _body_walk(self.function.node):
            if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)):
                cls = self._constructed_class(sub.value)
                if cls is not None:
                    self.local_types[sub.targets[0].id] = cls
        for sub in _body_walk(self.function.node):
            if isinstance(sub, ast.Call):
                target = self._resolve_call(sub)
                if target is not None:
                    self.function.calls.add(target.qualname)

    def _constructed_class(self, value):
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            return self.project.resolve_class(self.module, func.id)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in self._CTOR_CLASSMETHODS):
            return self.project.resolve_class(self.module, func.value.id)
        return None

    def _resolve_call(self, call):
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        value = func.value
        # super().method(...)
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"
                and self.function.cls is not None):
            mro = self.project.mro(self.function.cls)
            for ancestor in mro[1:]:
                if attr in ancestor.methods:
                    return ancestor.methods[attr]
            return None
        if not isinstance(value, ast.Name):
            return None
        base = value.id
        if base in ("self", "cls") and self.function.cls is not None:
            return self.project.lookup_method(self.function.cls, attr)
        binding = self.module.bindings.get(base)
        if binding is not None and binding[0] == "module":
            target = self.project.modules.get(binding[1])
            if target is not None:
                if attr in target.functions:
                    return target.functions[attr]
                cls = target.classes.get(attr)
                if cls is not None:
                    return self.project.lookup_method(cls, "__init__")
            return None
        cls = self.project.resolve_class(self.module, base)
        if cls is not None:
            return self.project.lookup_method(cls, attr)
        cls = self.local_types.get(base)
        if cls is not None:
            return self.project.lookup_method(cls, attr)
        return None

    def _resolve_name(self, name):
        info = self.module.functions.get(name)
        if info is not None:
            return info
        cls = self.project.resolve_class(self.module, name)
        if cls is not None:
            return self.project.lookup_method(cls, "__init__")
        binding = self.module.bindings.get(name)
        if binding is not None and binding[0] == "member":
            target = self.project.modules.get(binding[1])
            if target is not None:
                return target.functions.get(binding[2])
        return None
