"""Import-graph extraction and the layering check.

:func:`module_name_for` maps a source path to a dotted module name (the
``repro`` package root anchors the name; files outside it are known by
their bare stem).  :func:`collect_imports` pulls every ``import`` /
``from ... import`` out of a parsed tree, including function-local
imports -- a lazy import is still an architectural dependency, and the
ones that are deliberate escape hatches carry an inline
``# prixlint: disable=layering`` where reviewers can see them.

:func:`layering_violations` walks the project import graph from every
layered module.  An edge into the module's own layer or into a layer it
is allowed to depend on is sanctioned and traversal *stops* there (the
doorway's own dependencies are the doorway's business); an edge into an
unlayered module keeps the search going, because an indirect dependency
laundered through helper modules is still a violation.  Reaching any
other layered module reports the BFS-shortest witness chain, so the
finding shows exactly how the forbidden layer is reached.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import PurePath


def module_name_for(path):
    """Dotted module name for a file path.

    ``src/repro/storage/pager.py`` -> ``repro.storage.pager``;
    ``__init__.py`` names the package itself.  Files outside a
    ``repro`` package root fall back to their bare stem, which keeps
    test fixtures addressable by test-local manifests.
    """
    parts = list(PurePath(path).parts)
    stem = PurePath(parts[-1]).stem
    try:
        root = parts.index("repro")
    except ValueError:
        return stem
    dotted = parts[root:-1] + ([] if stem == "__init__" else [stem])
    return ".".join(dotted)


class ImportEdge:
    """One import statement: target module, location, resolution hints."""

    __slots__ = ("target", "lineno", "col", "member")

    def __init__(self, target, lineno, col, member=None):
        self.target = target        # dotted module named by the import
        self.lineno = lineno
        self.col = col
        self.member = member        # from X import <member>, else None

    def __repr__(self):             # pragma: no cover - debugging aid
        return f"ImportEdge({self.target!r}, line {self.lineno})"


def _resolve_relative(module, level, current_module, is_package):
    """Absolute module for a ``from ...X import Y`` with ``level`` dots."""
    parts = current_module.split(".")
    # A package's first dot refers to itself; a module's to its parent.
    keep = len(parts) - level + (1 if is_package else 0)
    if keep < 0:
        return module or ""
    base = parts[:keep]
    if module:
        base.append(module)
    return ".".join(base)


def collect_imports(tree, current_module, is_package=False):
    """All import edges in ``tree``, including nested/function-local ones."""
    edges = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(ImportEdge(alias.name, node.lineno,
                                        node.col_offset))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(node.module, node.level,
                                           current_module, is_package)
            else:
                target = node.module or ""
            if not target:
                continue
            for alias in node.names:
                edges.append(ImportEdge(target, node.lineno,
                                        node.col_offset, member=alias.name))
    return edges


def resolve_edge_target(edge, known_modules):
    """The project module an edge lands on, or None for external imports.

    ``from repro.storage import pager`` names the submodule when it is
    part of the project; otherwise the import binds an attribute of the
    package and the dependency is on the package itself.  Plain
    ``import a.b.c`` depends on the full dotted path, but when only a
    prefix of it is a project module (namespace tricks) the longest
    known prefix wins.
    """
    if edge.member is not None:
        submodule = f"{edge.target}.{edge.member}"
        if submodule in known_modules:
            return submodule
    parts = edge.target.split(".")
    for width in range(len(parts), 0, -1):
        candidate = ".".join(parts[:width])
        if candidate in known_modules:
            return candidate
    return None


def build_import_graph(modules):
    """Project-internal adjacency: module -> {target: first ImportEdge}.

    ``modules`` maps dotted names to lists of :class:`ImportEdge`.
    External (stdlib/third-party) targets are dropped; parallel edges
    keep only the earliest import site for stable witness reporting.
    """
    known = set(modules)
    graph = {}
    for name, edges in modules.items():
        adjacency = {}
        for edge in sorted(edges, key=lambda e: (e.lineno, e.col)):
            target = resolve_edge_target(edge, known)
            if target is None or target == name:
                continue
            adjacency.setdefault(target, edge)
        graph[name] = adjacency
    return graph


def layering_violations(graph, manifest):
    """Shortest forbidden-dependency chains under ``manifest``.

    Yields ``(module, chain, edge)`` where ``chain`` is the module list
    from the violating module to the forbidden one (inclusive) and
    ``edge`` is the import statement in ``module`` that starts the
    chain -- the line the finding anchors to.
    """
    violations = []
    for module in sorted(graph):
        layer = manifest.layer_of(module)
        if layer is None:
            continue
        allowed = manifest.allowed_for(layer)
        if allowed == "*":
            continue
        # BFS over edges; stop at sanctioned layered modules, pass
        # through unlayered ones, report the first hit per target.
        queue = deque([(module, (module,))])
        seen = {module}
        reported = set()
        while queue:
            current, chain = queue.popleft()
            for target in sorted(graph.get(current, ())):
                if target in seen:
                    continue
                seen.add(target)
                target_layer = manifest.layer_of(target)
                next_chain = chain + (target,)
                if target_layer is None:
                    queue.append((target, next_chain))
                    continue
                if target_layer == layer or target_layer in allowed:
                    continue
                if target_layer not in reported:
                    reported.add(target_layer)
                    first_edge = graph[module][next_chain[1]]
                    violations.append((module, next_chain, first_edge))
    return violations
