"""Structural conformance of ``# priximpl:`` classes to their Protocol.

A class carrying ``# priximpl: StorageBackend`` on its ``class`` line
promises to be a drop-in implementation of that Protocol.  The check is
structural and static -- no instantiation, no ``isinstance`` -- and
covers four obligations:

* **presence**: every public Protocol method and attribute exists on
  the class or along its project-known MRO;
* **signature**: the positional parameter names of each method match
  the Protocol's exactly (extra defaulted parameters are allowed);
* **effects**: the implementation's *inferred* effects for each method
  are a subset of the effects the Protocol method declares with
  ``# prixeffect: declares=`` -- an implementation may do less than
  the interface allows, never more;
* **exceptions**: every ``raise Name(...)`` in a defining method body
  names either a project-defined ``*Error`` class (the typed storage
  vocabulary of ``repro.storage.errors``) or one of a small builtin
  allowlist -- ad-hoc ``RuntimeError`` escapes the typed-error
  contract callers rely on.
"""

from __future__ import annotations

import ast

#: Builtin exceptions an implementation may raise without a typed wrapper.
ALLOWED_BUILTIN_RAISES = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError",
    "NotImplementedError", "StopIteration",
})


class ConformanceIssue:
    """One conformance defect, anchored to a module:line of the impl."""

    def __init__(self, cls, lineno, message, module=None):
        self.cls = cls
        self.module = cls.module if module is None else module
        self.lineno = lineno
        self.message = message


def _positional_names(node):
    args = node.args
    return tuple(a.arg for a in args.posonlyargs + args.args)


def _is_property(node):
    return any(isinstance(d, ast.Name) and d.id == "property"
               for d in node.decorator_list)


def _protocol_members(protocol):
    """(methods, attributes) required by a Protocol class."""
    methods, attributes = {}, set(protocol.class_attrs)
    for name, info in protocol.methods.items():
        if name.startswith("_"):
            continue
        if _is_property(info.node):
            attributes.add(name)
        else:
            methods[name] = info
    return methods, attributes


def find_protocol(project, name):
    """The unique Protocol class called ``name`` in the project, or None."""
    for module in project.modules.values():
        cls = module.classes.get(name)
        if cls is not None and cls.is_protocol:
            return cls
    return None


def _raise_issues(project, impl_cls, method, required_effects):
    """Exception-vocabulary defects in one defining method body."""
    from repro.analysis.arch.effects import _body_walk
    issues = []
    module = project.modules[method.module]
    for node in _body_walk(method.node):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name is None:
            continue
        if name in ALLOWED_BUILTIN_RAISES:
            continue
        resolved = project.resolve_class(module, name)
        if resolved is not None and name.endswith("Error"):
            continue
        # Name the *defining* method, so the same inherited body checked
        # through several implementations dedupes to one finding.
        owner = method.qualname.split(":", 1)[1]
        issues.append(ConformanceIssue(
            impl_cls, node.lineno,
            f"{owner} raises {name}, which is outside the typed error "
            f"vocabulary (project *Error classes or "
            f"{'/'.join(sorted(ALLOWED_BUILTIN_RAISES))})",
            module=method.module))
    return issues


def check_implementation(project, cls):
    """All conformance issues for one ``# priximpl:`` class."""
    issues = []
    protocol = find_protocol(project, cls.implements)
    if protocol is None:
        issues.append(ConformanceIssue(
            cls, cls.lineno,
            f"{cls.name} declares `# priximpl: {cls.implements}` but no "
            f"Protocol class named {cls.implements!r} is among the "
            f"analyzed files"))
        return issues
    methods, attributes = _protocol_members(protocol)
    for attr in sorted(attributes):
        if not project.has_attribute(cls, attr):
            issues.append(ConformanceIssue(
                cls, cls.lineno,
                f"{cls.name} is missing attribute {attr!r} required by "
                f"{protocol.name}"))
    checked_bodies = set()
    for name in sorted(methods):
        proto_method = methods[name]
        impl_method = project.lookup_method(cls, name)
        if impl_method is None:
            issues.append(ConformanceIssue(
                cls, cls.lineno,
                f"{cls.name} is missing method {name!r} required by "
                f"{protocol.name}"))
            continue
        expected = _positional_names(proto_method.node)
        actual = _positional_names(impl_method.node)
        # Extra trailing defaulted parameters are compatible.
        if actual[:len(expected)] != expected:
            issues.append(ConformanceIssue(
                cls, impl_method.lineno
                if impl_method.module == cls.module else cls.lineno,
                f"{cls.name}.{name} signature ({', '.join(actual)}) does "
                f"not match {protocol.name}.{name} "
                f"({', '.join(expected)})"))
        if proto_method.declared is not None:
            excess = impl_method.effects - proto_method.declared
            if excess:
                issues.append(ConformanceIssue(
                    cls, impl_method.lineno
                    if impl_method.module == cls.module else cls.lineno,
                    f"{cls.name}.{name} has inferred effect(s) "
                    f"{', '.join(sorted(excess))} not permitted by "
                    f"{protocol.name}.{name} "
                    f"(declares={','.join(sorted(proto_method.declared))})"))
        if impl_method.qualname not in checked_bodies:
            checked_bodies.add(impl_method.qualname)
            issues.extend(_raise_issues(project, cls, impl_method,
                                        proto_method.declared))
    return issues
