"""The three prixarch rules and the whole-project driver.

Unlike the per-file prixlint/prixflow rules, these rules need every
analyzed file at once: the import graph, the transitive effect
fixpoint and MRO-based conformance all span modules.  They subclass
:class:`~repro.analysis.core.Rule` so they share the registry, the
``--rules`` selector, baselines and suppression comments, but they run
through :func:`arch_check` in the parent process after the per-file
pass (never inside a ``--jobs`` worker).
"""

from __future__ import annotations

from repro.analysis.arch.conformance import check_implementation
from repro.analysis.arch.effects import EFFECTS, ProjectModel
from repro.analysis.arch.imports import (build_import_graph,
                                         layering_violations)
from repro.analysis.core import Finding, Rule


class ArchRule(Rule):
    """Base for project-scoped rules; drives them via check_project."""

    #: Marks the rule as whole-project: the runner routes it to
    #: :func:`arch_check` instead of the per-file visitor pass.
    project = True

    def applies_to(self, source):
        return False        # never run per-file

    def check_project(self, project, manifest):
        raise NotImplementedError

    def project_report(self, project, module, lineno, col, message):
        """Finding anchored in ``module`` at ``lineno``."""
        source = project.modules[module].source
        self.findings.append(Finding(
            rule=self.name, path=source.path, line=lineno, col=col,
            message=message, snippet=source.snippet(lineno)))


class LayeringRule(ArchRule):
    """Enforce the ``.prixarch.toml`` layer map over the import graph.

    A module in a layer may import its own layer and the layers listed
    for it under ``[allowed]`` -- reaching any other layer, directly or
    laundered through unlayered helper modules, is a violation.  The
    finding shows the BFS-shortest witness import chain and anchors at
    the import statement that starts it.  Deliberate exceptions carry
    ``# prixlint: disable=layering`` on the import line.  Without a
    manifest the rule has nothing to enforce and stays silent.
    """

    name = "layering"
    description = ("imports must respect the .prixarch.toml layer map "
                   "(logical code reaches storage only via storage-api)")

    def check_project(self, project, manifest):
        self.findings = []
        if manifest is None:
            return self.findings
        graph = build_import_graph(
            {name: info.imports for name, info in project.modules.items()})
        for module, chain, edge in layering_violations(graph, manifest):
            layer = manifest.layer_of(module)
            target = chain[-1]
            target_layer = manifest.layer_of(target)
            allowed = manifest.allowed_for(layer)
            allowed_text = (", ".join(sorted(allowed))
                            if allowed else "nothing")
            witness = " -> ".join(chain)
            self.project_report(
                project, module, edge.lineno, edge.col,
                f"layer '{layer}' module reaches layer '{target_layer}' "
                f"({witness}); '{layer}' may only import: {allowed_text}")
        return self.findings


class EffectContractRule(ArchRule):
    """Check ``# prixeffect: declares=`` contracts against inference.

    The declaration is an *upper bound*: every inferred effect of the
    function must be declared, while declaring an effect the inference
    cannot see is legal (interfaces promise capabilities, substrates
    may use fewer).  Unknown effect names are rejected so the
    vocabulary stays closed.  Effects: raw-io, pager-io, wal-io,
    latch-acquire, stats-mutate, alloc-page (docs/ARCHITECTURE.md).
    """

    name = "effect-contract"
    description = ("inferred effects must be covered by the function's "
                   "# prixeffect: declares= contract")

    def check_project(self, project, manifest):
        self.findings = []
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if info.declared is None:
                continue
            unknown = info.declared - EFFECTS
            if unknown:
                self.project_report(
                    project, info.module, info.lineno,
                    info.node.col_offset,
                    f"{qualname} declares unknown effect(s) "
                    f"{', '.join(sorted(unknown))}; the vocabulary is "
                    f"{', '.join(sorted(EFFECTS))}")
            undeclared = info.effects - info.declared
            if undeclared:
                self.project_report(
                    project, info.module, info.lineno,
                    info.node.col_offset,
                    f"{qualname} has inferred effect(s) "
                    f"{', '.join(sorted(undeclared))} not covered by its "
                    f"declares= contract "
                    f"({','.join(sorted(info.declared)) or 'pure'})")
        return self.findings


class BackendConformanceRule(ArchRule):
    """Check ``# priximpl:`` classes against their Protocol.

    Presence, signatures, effect bounds and the typed-exception
    vocabulary -- see :mod:`repro.analysis.arch.conformance`.  A class
    that inherits its obligations (e.g. through BufferPool) is checked
    through the project MRO, and a shared defining body yields one
    finding, not one per implementation.
    """

    name = "backend-conformance"
    description = ("# priximpl: classes must structurally satisfy their "
                   "Protocol: methods, signatures, effects, typed errors")

    def check_project(self, project, manifest):
        self.findings = []
        seen = set()
        for module_name in sorted(project.modules):
            module = project.modules[module_name]
            for class_name in sorted(module.classes):
                cls = module.classes[class_name]
                if cls.implements is None:
                    continue
                for issue in check_implementation(project, cls):
                    key = (issue.module, issue.lineno, issue.message)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.project_report(project, issue.module,
                                        issue.lineno, 0, issue.message)
        return self.findings


#: The prixarch tier, in reporting order.
ARCH_RULES = (LayeringRule, EffectContractRule, BackendConformanceRule)

#: Rule names, seeded as zero counts into JSON reports.
ARCH_RULE_NAMES = tuple(rule.name for rule in ARCH_RULES)


def arch_check(sources, manifest, rule_classes=ARCH_RULES):
    """Run the project-scoped rules over parsed sources.

    Returns sorted findings with the same suppression semantics as the
    per-file pass: an inline ``# prixlint: disable=<rule>`` on the
    anchored line (or a file-level directive) silences the finding.
    """
    project = ProjectModel(sources)
    by_path = {source.path: source for source in sources}
    findings = []
    for rule_class in rule_classes:
        rule = rule_class()
        for finding in rule.check_project(project, manifest):
            source = by_path.get(finding.path)
            if source is not None and source.is_suppressed(finding):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key)
