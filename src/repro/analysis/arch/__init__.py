"""prixarch: architecture analysis -- layering, effects, conformance.

The third static-analysis tier (after the per-file ``prixlint`` AST
rules and the flow-sensitive ``prixflow``/``prixrace`` rules).  It is
whole-project: a :class:`ProjectModel` indexes every analyzed file's
imports, functions and classes; effect inference runs a transitive
fixpoint over the resolvable call graph; and three rules check the
result (``docs/ARCHITECTURE.md``):

``layering``
    Imports must respect the ``.prixarch.toml`` layer map -- the
    logical index layers reach storage only through the storage-api
    seam, with BFS-shortest witness chains on violations.
``effect-contract``
    ``# prixeffect: declares=`` def-line contracts are upper bounds on
    the function's inferred effect set.
``backend-conformance``
    ``# priximpl: StorageBackend`` classes structurally satisfy the
    Protocol: methods, signatures, effect bounds, typed errors.
"""

from repro.analysis.arch.conformance import (ALLOWED_BUILTIN_RAISES,
                                             check_implementation,
                                             find_protocol)
from repro.analysis.arch.effects import (EFFECTS, ProjectModel,
                                         parse_effect_decl, parse_impl_mark)
from repro.analysis.arch.imports import (build_import_graph, collect_imports,
                                         layering_violations,
                                         module_name_for)
from repro.analysis.arch.manifest import (MANIFEST_NAME, Manifest,
                                          ManifestError, find_manifest,
                                          load_manifest, parse_manifest)
from repro.analysis.arch.rules import (ARCH_RULES, ARCH_RULE_NAMES,
                                       ArchRule, BackendConformanceRule,
                                       EffectContractRule, LayeringRule,
                                       arch_check)

__all__ = [
    "ALLOWED_BUILTIN_RAISES",
    "ARCH_RULES",
    "ARCH_RULE_NAMES",
    "ArchRule",
    "BackendConformanceRule",
    "EFFECTS",
    "EffectContractRule",
    "LayeringRule",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestError",
    "ProjectModel",
    "arch_check",
    "build_import_graph",
    "check_implementation",
    "collect_imports",
    "find_manifest",
    "find_protocol",
    "layering_violations",
    "load_manifest",
    "module_name_for",
    "parse_effect_decl",
    "parse_impl_mark",
    "parse_manifest",
]
