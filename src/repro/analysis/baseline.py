"""Baseline files: grandfather existing findings without silencing new ones.

A baseline is a JSON document listing findings that predate the linter's
adoption.  Matching is by ``(rule, path, snippet)`` with multiplicity, so
line numbers may drift freely but a *new* occurrence of a grandfathered
pattern -- even in the same file -- still fails the build.
"""

from __future__ import annotations

import json
from collections import Counter

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed or has an unknown version."""


def baseline_from_findings(findings):
    """Build the multiset of baseline keys from current findings."""
    return Counter(finding.baseline_key for finding in findings)


def write_baseline(path, findings):
    """Serialize ``findings`` as a baseline file at ``path``."""
    counts = baseline_from_findings(findings)
    entries = [{"rule": rule, "path": file_path, "snippet": snippet,
                "count": count}
               for (rule, file_path, snippet), count in sorted(counts.items())]
    document = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def load_baseline(path):
    """Read a baseline file back into a key multiset."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise BaselineError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise BaselineError(f"{path}: baseline must be a JSON object")
    if document.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: unsupported baseline version "
            f"{document.get('version')!r} (expected {BASELINE_VERSION})")
    counts = Counter()
    for entry in document.get("findings", []):
        try:
            key = (entry["rule"], entry["path"], entry["snippet"])
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"{path}: malformed baseline entry {entry!r}") from error
        counts[key] += count
    return counts


def _path_parts(path):
    return tuple(str(path).replace("\\", "/").split("/"))


def _paths_match(stored, actual):
    """True when one path is a trailing subpath of the other.

    Baselines store paths as written at ``--write-baseline`` time
    (usually repository-relative); later runs may lint via absolute
    paths or from a different working directory.  Suffix matching keeps
    the key stable across invocation styles without a config knob.
    """
    shorter, longer = sorted((_path_parts(stored), _path_parts(actual)),
                             key=len)
    return longer[len(longer) - len(shorter):] == shorter


def apply_baseline(findings, baseline):
    """Split findings into (new, grandfathered) against the baseline.

    Each baseline entry absorbs at most ``count`` matching findings;
    extras surface as new.
    """
    # (rule, snippet) -> list of [stored_path, remaining_count]
    remaining = {}
    for (rule, path, snippet), count in Counter(baseline).items():
        remaining.setdefault((rule, snippet), []).append([path, count])
    new, grandfathered = [], []
    for finding in findings:
        entries = remaining.get((finding.rule, finding.snippet), ())
        for entry in entries:
            if entry[1] > 0 and _paths_match(entry[0], finding.path):
                entry[1] -= 1
                grandfathered.append(finding)
                break
        else:
            new.append(finding)
    return new, grandfathered
