"""Forward worklist fixpoint engines over a :class:`~.cfg.CFG`.

:func:`run_forward` runs a *may* analysis: the abstract state is a
frozenset of rule-defined tokens, states merge by union, and a rule's
transfer function must be monotone (gen/kill sets per node).
:func:`run_forward_must` is its dual -- states merge by intersection, so
a token survives a join only when it holds on **every** incoming path;
the lockset rules use it because "the latch is held here" is only true
if no path reaches the statement latch-free.  In both, exception edges
propagate the node's **pre**-state -- when a statement raises, its own
effects may not have happened -- while normal edges carry the
post-state.  Which exception edges are followed is the rule's choice via
``live_reasons`` (see the ``EXC_*`` constants in :mod:`~.cfg`).
"""

from __future__ import annotations

from collections import deque


class FlowState:
    """The fixpoint: the set of tokens flowing *into* every reached node.

    Nodes never reached from the entry under the chosen ``live_reasons``
    have no entry; :meth:`before` returns an empty set for them.
    """

    def __init__(self, in_states):
        self._in_states = in_states

    def before(self, node):
        """Tokens live immediately before ``node`` executes."""
        return self._in_states.get(node, frozenset())

    def reached(self, node):
        """Whether any path under the chosen edge policy reaches ``node``."""
        return node in self._in_states


def run_forward(cfg, transfer, live_reasons, initial=frozenset(),
                transfer_exc=None):
    """Run ``transfer`` to fixpoint over ``cfg``; return a
    :class:`FlowState`.

    ``transfer(node, state)`` returns the post-state of executing ``node``
    with ``state`` flowing in.  ``live_reasons`` selects which exception
    edges are considered feasible.  ``transfer_exc(node, state)``, when
    given, computes what flows along the node's exception edge instead of
    the raw pre-state -- rules use it to apply a statement's *kills* but
    not its *gens* (a ``pool.unpin(p)`` that raises is still assumed to
    have released the pin, while a ``pool.pin(p)`` that raises never
    acquired one).
    """
    in_states = {cfg.entry: frozenset(initial)}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}

    def propagate(target, tokens):
        known = in_states.get(target)
        if known is None:
            in_states[target] = frozenset(tokens)
        elif tokens <= known:
            return
        else:
            in_states[target] = known | tokens
        if target not in queued:
            queued.add(target)
            worklist.append(target)

    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        state = in_states[node]
        out = transfer(node, state)
        for succ in node.succ:
            propagate(succ, out)
        if node.exc is not None and node.exc[1] in live_reasons:
            flowing = (state if transfer_exc is None
                       else transfer_exc(node, state))
            propagate(node.exc[0], flowing)

    return FlowState(in_states)


def run_forward_must(cfg, transfer, live_reasons, initial=frozenset(),
                     transfer_exc=None):
    """Intersection-merge dual of :func:`run_forward`.

    A token is in :meth:`FlowState.before` for a node only when every
    path reaching the node carries it.  The first edge into a node seeds
    its state; later edges intersect, and the node is requeued whenever
    the set shrinks.  Terminates because states only shrink and the
    token universe per function is finite.
    """
    in_states = {cfg.entry: frozenset(initial)}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}

    def propagate(target, tokens):
        known = in_states.get(target)
        if known is None:
            in_states[target] = frozenset(tokens)
        else:
            merged = known & tokens
            if merged == known:
                return
            in_states[target] = merged
        if target not in queued:
            queued.add(target)
            worklist.append(target)

    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        state = in_states[node]
        out = transfer(node, state)
        for succ in node.succ:
            propagate(succ, out)
        if node.exc is not None and node.exc[1] in live_reasons:
            flowing = (state if transfer_exc is None
                       else transfer_exc(node, state))
            propagate(node.exc[0], flowing)

    return FlowState(in_states)
