"""Module-level call graph with storage-handle return summaries.

The flow rules treat ``pool = make_pool()`` as an acquisition when
``make_pool`` is a function *in the same module* that returns a tracked
handle.  This module computes that summary: a function "returns a handle"
when some ``return`` statement returns a tracked-constructor expression,
a name locally bound to one, or a call to another function already known
to return one (closed under a fixpoint, so chains of factory helpers
resolve).

Resolution is by simple name -- good enough for one module, where helper
factories are plain functions.  Attribute calls (methods on objects) are
out of scope; classmethod constructors like ``Pager.open`` are matched
directly by the protocol model instead.
"""

from __future__ import annotations

import ast


class CallGraph:
    """Functions of one module, who they call, and handle summaries.

    ``handle_constructor`` is a predicate mapping an expression AST to a
    truthy value when it directly constructs a tracked handle (the flow
    rules pass :func:`repro.analysis.rules_io._tracked_constructor`).
    """

    def __init__(self, module, handle_constructor=None):
        self._handle_constructor = handle_constructor or (lambda expr: None)
        self._functions = {}
        for node in ast.walk(module):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Last definition wins, mirroring runtime rebinding.
                self._functions[node.name] = node
        self._calls = {name: self._called_names(func)
                       for name, func in self._functions.items()}
        self._returning = self._summarize()

    @property
    def function_names(self):
        """Names of every function and method defined in the module."""
        return frozenset(self._functions)

    def calls(self, name):
        """Simple-name calls made anywhere inside function ``name``."""
        return self._calls.get(name, frozenset())

    def returns_handle(self, name):
        """Whether calling ``name()`` can hand the caller a tracked
        handle."""
        return name in self._returning

    @staticmethod
    def _called_names(func):
        names = set()
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                names.add(sub.func.id)
        return frozenset(names)

    def _summarize(self):
        returning = set()
        changed = True
        while changed:
            changed = False
            for name, func in self._functions.items():
                if name in returning:
                    continue
                if self._function_returns_handle(func, returning):
                    returning.add(name)
                    changed = True
        return returning

    def _is_handle_expr(self, expr, returning):
        if expr is None:
            return False
        if self._handle_constructor(expr):
            return True
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in returning)

    def _function_returns_handle(self, func, returning):
        # Names locally bound to handle expressions.  The walk descends
        # into nested functions too; that over-approximates, which for a
        # may-summary only costs precision, never soundness.
        bound = set()
        for sub in ast.walk(func):
            if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and self._is_handle_expr(sub.value, returning)):
                bound.add(sub.targets[0].id)
        for sub in ast.walk(func):
            if isinstance(sub, ast.Return) and sub.value is not None:
                if self._is_handle_expr(sub.value, returning):
                    return True
                if (isinstance(sub.value, ast.Name)
                        and sub.value.id in bound):
                    return True
        return False
