"""Intraprocedural control-flow graphs for Python functions.

:func:`build_cfg` turns one ``ast.FunctionDef`` body into a graph of
:class:`CFGNode` objects with two kinds of edges:

- **normal** edges (``node.succ``): sequential flow, branch arms, loop
  back-edges,
- an optional **exception** edge (``node.exc``): where control goes when
  the statement raises, tagged with *why* the statement can raise
  (``EXC_RAISE`` for an explicit ``raise``, ``EXC_ASSERT`` for an
  ``assert``, ``EXC_CALL`` for any statement containing a call).
  Analyses choose which reasons they consider live, so a strict rule can
  treat every call as throwing while a lenient one follows only explicit
  ``raise`` statements.

``try/except/else/finally`` and ``with`` are modelled precisely by
*inlining* the cleanup body once per way of leaving the protected region
(normal completion, exception, ``return``, ``break``, ``continue``), so a
``return`` inside ``try`` still flows through the ``finally`` copy before
reaching the function exit.  The same AST statement may therefore back
several CFG nodes; findings anchored at AST nodes deduplicate naturally.

Functions have three distinguished synthetic nodes: ``entry``, ``exit``
(every normal return and the fall-off-the-end path reach it) and
``raise_exit`` (exceptions that escape the function).
"""

from __future__ import annotations

import ast

#: Exception-edge reasons, from most to least explicit.
EXC_RAISE = "raise"    # an explicit `raise` statement
EXC_ASSERT = "assert"  # an `assert` that can fail
EXC_CALL = "call"      # the statement contains at least one call

#: Statement types never descended into (their bodies are separate scopes).
_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class CFGNode:
    """One node of the graph: a statement, or a synthetic control point."""

    __slots__ = ("index", "kind", "stmt", "item", "succ", "exc")

    def __init__(self, index, kind, stmt=None, item=None):
        self.index = index
        self.kind = kind      # "stmt", "entry", "exit", "raise-exit", ...
        self.stmt = stmt      # backing AST node (None for entry/exit/nop)
        self.item = item      # ast.withitem for "with-exit" release nodes
        self.succ = []        # normal successors
        self.exc = None       # (CFGNode, reason) or None

    @property
    def line(self):
        return getattr(self.stmt, "lineno", 0)

    def successors(self, live_reasons):
        """Normal successors plus the exception edge when its reason is
        in ``live_reasons``."""
        if self.exc is not None and self.exc[1] in live_reasons:
            return self.succ + [self.exc[0]]
        return self.succ

    def __repr__(self):
        where = f" line {self.line}" if self.stmt is not None else ""
        return f"<CFGNode {self.index} {self.kind}{where}>"


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func):
        self.func = func
        self.nodes = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise-exit")

    def _new(self, kind, stmt=None, item=None):
        node = CFGNode(len(self.nodes), kind, stmt=stmt, item=item)
        self.nodes.append(node)
        return node

    @property
    def exit_nodes(self):
        """The two terminal nodes: (normal exit, exception escape)."""
        return (self.exit, self.raise_exit)


class _Ctx:
    """Where `raise`, `return`, `break` and `continue` go from here.

    Each slot is a zero-argument callable returning the target node;
    lazily invoked so cleanup copies are only built for exits that occur.
    """

    __slots__ = ("exc", "ret", "brk", "cont")

    def __init__(self, exc, ret, brk=None, cont=None):
        self.exc = exc
        self.ret = ret
        self.brk = brk
        self.cont = cont

    def replaced(self, **slots):
        return _Ctx(slots.get("exc", self.exc), slots.get("ret", self.ret),
                    slots.get("brk", self.brk), slots.get("cont", self.cont))


class _CleanupFrame:
    """Routes every way of leaving a region through a cleanup body.

    ``build`` is called once per leave-kind actually used and must return
    ``(entry, ends)`` for a *fresh* copy of the cleanup; the frame
    connects the copy's ends to the outer continuation of that kind.
    """

    def __init__(self, cfg, build, outer):
        self._cfg = cfg
        self._build = build
        self._outer = outer
        self._memo = {}

    def _target(self, kind):
        if kind not in self._memo:
            outer_fn = getattr(self._outer, kind)
            entry, ends = self._build()
            for end in ends:
                end.succ.append(outer_fn())
            self._memo[kind] = entry if entry is not None else outer_fn()
        return self._memo[kind]

    def wrap(self, ctx):
        """The context seen by statements inside the protected region."""
        return _Ctx(
            exc=lambda: self._target("exc"),
            ret=lambda: self._target("ret"),
            brk=(lambda: self._target("brk")) if ctx.brk else None,
            cont=(lambda: self._target("cont")) if ctx.cont else None,
        )

    def normal_copy(self):
        """A cleanup copy for normal completion; returns (entry, ends)."""
        return self._build()


def _raise_reason(stmt):
    """Why this statement can raise, or None when it cannot."""
    if isinstance(stmt, ast.Raise):
        return EXC_RAISE
    if isinstance(stmt, ast.Assert):
        return EXC_ASSERT
    for sub in ast.walk(stmt):
        if isinstance(sub, _SCOPE_STMTS + (ast.Lambda,)):
            continue
        if isinstance(sub, ast.Call):
            return EXC_CALL
    return None


def _expr_reason(expr):
    """Exception reason for evaluating one expression (tests, iterables)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            return EXC_CALL
    return None


_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _handlers_are_exhaustive(handlers):
    """True when the handler list catches everything that matters."""
    for handler in handlers:
        if handler.type is None:
            return True
        names = [handler.type]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        for name in names:
            if isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTIONS:
                return True
    return False


class _Builder:
    def __init__(self, func):
        self.cfg = CFG(func)

    def build(self):
        cfg = self.cfg
        ctx = _Ctx(exc=lambda: cfg.raise_exit, ret=lambda: cfg.exit)
        entry, ends = self._seq(self.cfg.func.body, ctx)
        cfg.entry.succ.append(entry if entry is not None else cfg.exit)
        for end in ends:
            end.succ.append(cfg.exit)
        return cfg

    # ------------------------------------------------------------------
    # Sequencing
    # ------------------------------------------------------------------

    def _seq(self, stmts, ctx):
        """Build a statement list; returns (entry | None, open ends).

        ``entry is None`` means the list was empty (pure pass-through).
        An empty ends list after a non-empty build means every path left
        through return/raise/break/continue.
        """
        entry = None
        pending = None
        for stmt in stmts:
            first, outs = self._stmt(stmt, ctx)
            if entry is None:
                entry = first
            if pending is not None:
                for end in pending:
                    end.succ.append(first)
            pending = outs
            if not outs:
                # Terminator: the remaining statements are unreachable.
                return entry, []
        return entry, (pending if pending is not None else [])

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt, ctx):
        """Build one statement; returns (entry node, open ends)."""
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, stmt.items, ctx)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar")
                                         and isinstance(stmt, ast.TryStar)):
            return self._try(stmt, ctx)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, ctx)
        if isinstance(stmt, ast.Return):
            node = self.cfg._new("return", stmt)
            node.succ.append(ctx.ret())
            return node, []
        if isinstance(stmt, ast.Raise):
            node = self.cfg._new("raise", stmt)
            node.exc = (ctx.exc(), EXC_RAISE)
            return node, []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new("break", stmt)
            node.succ.append(ctx.brk() if ctx.brk else ctx.ret())
            return node, []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new("continue", stmt)
            node.succ.append(ctx.cont() if ctx.cont else ctx.ret())
            return node, []
        # Simple statement (including nested def/class, not descended).
        node = self.cfg._new("stmt", stmt)
        reason = None if isinstance(stmt, _SCOPE_STMTS) else \
            _raise_reason(stmt)
        if reason is not None:
            node.exc = (ctx.exc(), reason)
        return node, [node]

    def _if(self, stmt, ctx):
        branch = self.cfg._new("branch", stmt)
        reason = _expr_reason(stmt.test)
        if reason is not None:
            branch.exc = (ctx.exc(), reason)
        ends = []
        body_entry, body_ends = self._seq(stmt.body, ctx)
        branch.succ.append(body_entry if body_entry is not None else branch)
        if body_entry is None:
            ends.append(branch)
        ends.extend(body_ends)
        if stmt.orelse:
            else_entry, else_ends = self._seq(stmt.orelse, ctx)
            if else_entry is not None:
                branch.succ.append(else_entry)
                ends.extend(else_ends)
            else:
                ends.append(branch)
        else:
            ends.append(branch)
        return branch, ends

    def _loop(self, stmt, ctx):
        head = self.cfg._new("loop-head", stmt)
        test = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        reason = _expr_reason(test)
        if reason is not None:
            head.exc = (ctx.exc(), reason)
        after = self.cfg._new("loop-exit", stmt)
        body_ctx = ctx.replaced(brk=lambda: after, cont=lambda: head)
        body_entry, body_ends = self._seq(stmt.body, body_ctx)
        head.succ.append(body_entry if body_entry is not None else head)
        for end in body_ends:
            end.succ.append(head)
        if stmt.orelse:
            else_entry, else_ends = self._seq(stmt.orelse, ctx)
            head.succ.append(else_entry if else_entry is not None else after)
            for end in else_ends:
                end.succ.append(after)
        else:
            head.succ.append(after)
        return head, [after]

    def _with(self, stmt, items, ctx):
        """One ``with`` item: enter node + release-on-every-exit frame."""
        item = items[0]
        enter = self.cfg._new("with-enter", stmt, item=item)
        reason = _expr_reason(item.context_expr)
        if reason is not None:
            enter.exc = (ctx.exc(), reason)

        def build_release():
            node = self.cfg._new("with-exit", stmt, item=item)
            return node, [node]

        frame = _CleanupFrame(self.cfg, build_release, ctx)
        inner_ctx = frame.wrap(ctx)
        if len(items) > 1:
            body_entry, body_ends = self._with(stmt, items[1:], inner_ctx)
        else:
            body_entry, body_ends = self._seq(stmt.body, inner_ctx)
        release_entry, release_ends = frame.normal_copy()
        if body_entry is None:
            enter.succ.append(release_entry)
        else:
            enter.succ.append(body_entry)
            for end in body_ends:
                end.succ.append(release_entry)
        return enter, release_ends

    def _try(self, stmt, ctx):
        if stmt.finalbody:
            frame = _CleanupFrame(
                self.cfg, lambda: self._seq(stmt.finalbody, ctx), ctx)
            inner_ctx = frame.wrap(ctx)
        else:
            frame = None
            inner_ctx = ctx

        handler_ends = []
        if stmt.handlers:
            dispatch = self.cfg._new("except-dispatch", stmt)
            for handler in stmt.handlers:
                h_node = self.cfg._new("except", handler)
                dispatch.succ.append(h_node)
                h_entry, h_ends = self._seq(handler.body, inner_ctx)
                if h_entry is not None:
                    h_node.succ.append(h_entry)
                    handler_ends.extend(h_ends)
                else:
                    handler_ends.append(h_node)
            if not _handlers_are_exhaustive(stmt.handlers):
                dispatch.succ.append(inner_ctx.exc())
            body_ctx = inner_ctx.replaced(exc=lambda: dispatch)
        else:
            body_ctx = inner_ctx

        body_entry, body_ends = self._seq(stmt.body, body_ctx)
        if stmt.orelse:
            else_entry, else_ends = self._seq(stmt.orelse, inner_ctx)
            if else_entry is not None:
                for end in body_ends:
                    end.succ.append(else_entry)
                body_ends = else_ends

        pre_ends = body_ends + handler_ends
        if frame is not None:
            normal_entry, normal_ends = frame.normal_copy()
            if normal_entry is None:
                ends = pre_ends
            else:
                for end in pre_ends:
                    end.succ.append(normal_entry)
                ends = normal_ends
        else:
            ends = pre_ends

        # Python grammar guarantees a non-empty try body, so body_entry is
        # always a real node.
        return body_entry, ends

    def _match(self, stmt, ctx):
        branch = self.cfg._new("branch", stmt)
        reason = _expr_reason(stmt.subject)
        if reason is not None:
            branch.exc = (ctx.exc(), reason)
        ends = [branch]  # no case may match: fall through
        for case in stmt.cases:
            case_entry, case_ends = self._seq(case.body, ctx)
            if case_entry is not None:
                branch.succ.append(case_entry)
                ends.extend(case_ends)
        return branch, ends


def build_cfg(func):
    """Build the :class:`CFG` of one ``ast.FunctionDef`` /
    ``AsyncFunctionDef``."""
    return _Builder(func).build()
