"""Flow-sensitive analyses for prixlint (``prixflow``).

The AST rules of :mod:`repro.analysis` check one statement at a time; the
modules here add the path dimension:

- :mod:`repro.analysis.flow.cfg` -- an intraprocedural control-flow graph
  builder for Python functions (``try/except/finally``, ``with``, loops,
  ``break``/``continue``, early ``return``/``raise``, exception edges),
- :mod:`repro.analysis.flow.callgraph` -- a module-level call graph with
  "returns a storage handle" summaries,
- :mod:`repro.analysis.flow.engine` -- a worklist fixpoint engine over a
  CFG,
- :mod:`repro.analysis.flow.protocols` -- the resource-protocol model
  (what acquires, dirties, releases and reads),
- :mod:`repro.analysis.flow.rules` -- the resource-protocol flow rules:
  ``pin-unpin-balance``, ``dirty-page-escape``,
  ``stats-read-before-flush`` and ``close-on-all-paths``,
- :mod:`repro.analysis.flow.locks` -- the ``prixrace`` lockset rules:
  ``guarded-field-access``, ``lock-order``,
  ``no-blocking-io-under-latch`` and ``release-on-all-paths``.
"""

from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.engine import (FlowState, run_forward,
                                        run_forward_must)
from repro.analysis.flow.locks import (GuardedFieldAccessRule,
                                       LockOrderRule,
                                       NoBlockingIoUnderLatchRule,
                                       ReleaseOnAllPathsRule)
from repro.analysis.flow.rules import (CloseOnAllPathsRule,
                                       DirtyPageEscapeRule,
                                       PinUnpinBalanceRule,
                                       StatsReadBeforeFlushRule)

FLOW_RULES = (
    PinUnpinBalanceRule,
    DirtyPageEscapeRule,
    StatsReadBeforeFlushRule,
    CloseOnAllPathsRule,
    GuardedFieldAccessRule,
    LockOrderRule,
    NoBlockingIoUnderLatchRule,
    ReleaseOnAllPathsRule,
)

#: The prixrace rule names, in reporting order (used by the JSON report).
PRIXRACE_RULES = (
    "guarded-field-access",
    "lock-order",
    "no-blocking-io-under-latch",
    "release-on-all-paths",
)

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "CloseOnAllPathsRule",
    "DirtyPageEscapeRule",
    "FLOW_RULES",
    "FlowState",
    "GuardedFieldAccessRule",
    "LockOrderRule",
    "NoBlockingIoUnderLatchRule",
    "PRIXRACE_RULES",
    "PinUnpinBalanceRule",
    "ReleaseOnAllPathsRule",
    "StatsReadBeforeFlushRule",
    "build_cfg",
    "run_forward",
    "run_forward_must",
]
