"""The resource-protocol model: what acquires, dirties, releases, reads.

This module translates CFG nodes into abstract :class:`Event` streams the
flow rules consume, so all four rules agree on what
"``pool.flush()`` means".  The protocol mirrors the storage layer:

- **acquire**: binding a local name to a tracked handle
  (``Pager``/``BufferPool``/``PrixIndex`` constructors, their classmethod
  constructors such as ``Pager.open``, or a same-module factory the call
  graph says returns a handle),
- **dirty**: operations that leave unflushed pages behind
  (``put``/``mark_dirty``/``new_page`` on a pool,
  ``insert_document``/``delete_document`` on an index),
- **clean**: operations that force pages to disk (``flush``, ``save``,
  ``flush_cache``; ``close``/``flush_and_clear`` both clean and release),
- **release**: ``close()``/``flush_and_clear()`` on the handle, or the
  ``with``-exit of a context-managed handle,
- **escape**: the handle leaves local scope (returned/yielded, passed as
  a call argument, stored into an attribute or container, aliased,
  rebound, deleted) -- ownership moves where the intraprocedural rules
  cannot follow, so tracking stops,
- **pin** / **unpin**: ``X.pin(page)`` / ``X.unpin(page)`` keyed on the
  *source text* of receiver and argument, so ``self._pool.pin(pid)`` is
  balanced by ``self._pool.unpin(pid)`` regardless of where either lives,
- **stats-read** / **stats-alias**: reading an ``IOStats`` counter
  (``h.stats.physical_reads``, ``h.stats.snapshot()``) or binding
  ``s = h.stats`` for later reads.

Only the *header* expression of a compound statement is examined for its
CFG node (the test of an ``if``, the iterable of a ``for``); body
statements have their own nodes, so nothing is double-counted.
"""

from __future__ import annotations

import ast

from repro.analysis.rules_io import TRACKED_HANDLES, _tracked_constructor

#: Methods that both flush and end the handle's lifetime.
RELEASE_METHODS = frozenset({"close", "flush_and_clear"})

#: Methods that force dirty pages to disk without ending the lifetime.
#: ``sync``/``checkpoint`` are the WriteAheadLog's cleaners: after either,
#: every appended record is on the platter.
CLEAN_METHODS = frozenset({"flush", "save", "flush_cache", "sync",
                           "checkpoint"})

#: Methods that leave unflushed pages (or unflushed log records) behind.
DIRTY_METHODS = frozenset({"put", "mark_dirty", "new_page",
                           "insert_document", "delete_document",
                           "append", "log_page"})

#: IOStats counter attributes (plus the derived ``hit_ratio`` property).
STAT_FIELDS = frozenset({"physical_reads", "physical_writes",
                         "logical_reads", "evictions", "allocations",
                         "hit_ratio", "wal_appends", "wal_fsyncs",
                         "wal_bytes", "guard_verifications",
                         "guard_repairs", "guard_quarantines"})

#: Log-side durability fields, exempt from ``stats-read-before-flush``.
#: A WAL append or fsync is counted at the instant it happens, and
#: ``wal.flushed_lsn`` *is* the current disk state -- reading any of
#: these while data pages are still dirty is exactly what recovery and
#: the WAL-before-data check must do, not the stale-counter bug the
#: rule hunts.  The checksum guard's counters are side-channel in the
#: same way: a verification or repair is counted at the instant the
#: guard performs it, independent of dirty-page state.
WAL_SIDE_FIELDS = frozenset({"wal_appends", "wal_fsyncs", "wal_bytes",
                             "flushed_lsn", "guard_verifications",
                             "guard_repairs", "guard_quarantines"})

#: IOStats methods whose result captures the counters.
STAT_READ_METHODS = frozenset({"snapshot", "delta"})

#: Statement types that open a new scope; never descended into.
_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Event:
    """One abstract protocol action extracted from a CFG node."""

    __slots__ = ("kind", "name", "key", "line", "col")

    def __init__(self, kind, name=None, key=None, line=0, col=0):
        self.kind = kind
        self.name = name
        self.key = key
        self.line = line
        self.col = col

    def __repr__(self):
        return (f"<Event {self.kind} name={self.name!r} key={self.key!r} "
                f"line {self.line}>")


def _names_within(node):
    if node is None:
        return
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def _src(expr):
    """Normalized source text of an expression, for pin/unpin keying."""
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return repr(expr)


class ProtocolExtractor:
    """Maps CFG nodes of one module to protocol events.

    ``callgraph`` (a :class:`~.callgraph.CallGraph` or None) upgrades
    calls to same-module handle factories into acquisitions.
    """

    def __init__(self, callgraph=None):
        self._callgraph = callgraph

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    def events_for(self, node):
        """Events performed by one CFG node, in program order."""
        kind, stmt = node.kind, node.stmt
        if kind == "stmt":
            if isinstance(stmt, _SCOPE_STMTS):
                return []
            return self._simple_stmt(stmt)
        if kind == "branch":
            header = (stmt.subject if hasattr(ast, "Match")
                      and isinstance(stmt, ast.Match) else stmt.test)
            return self._expr_events(header)
        if kind == "loop-head":
            if isinstance(stmt, ast.While):
                return self._expr_events(stmt.test)
            events = self._expr_events(stmt.iter)
            # The loop target is rebound each iteration.
            events.extend(self._rebind(name, stmt)
                          for name in _names_within(stmt.target))
            return events
        if kind == "return":
            events = self._expr_events(stmt.value)
            events.extend(Event("escape", name=name, line=stmt.lineno)
                          for name in _names_within(stmt.value))
            return events
        if kind == "raise":
            events = self._expr_events(stmt.exc)
            events.extend(self._expr_events(stmt.cause))
            return events
        if kind == "with-enter":
            return self._with_enter(stmt, node.item)
        if kind == "with-exit":
            return self._with_exit(node.item)
        # entry/exit/raise-exit/loop-exit/except/except-dispatch: silent.
        return []

    # ------------------------------------------------------------------
    # Statement forms
    # ------------------------------------------------------------------

    def _simple_stmt(self, stmt):
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt.targets, stmt.value, stmt)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return []
            return self._assign([stmt.target], stmt.value, stmt)
        if isinstance(stmt, ast.AugAssign):
            return self._expr_events(stmt.value)
        if isinstance(stmt, ast.Delete):
            return [Event("escape", name=name, line=stmt.lineno)
                    for target in stmt.targets
                    for name in _names_within(target)
                    if isinstance(target, ast.Name)]
        if isinstance(stmt, ast.Expr):
            return self._expr_events(stmt.value)
        if isinstance(stmt, ast.Assert):
            events = self._expr_events(stmt.test)
            events.extend(self._expr_events(stmt.msg))
            return events
        # Import/Pass/Global/Nonlocal/Break/Continue carry no events.
        return []

    def _assign(self, targets, value, stmt):
        events = self._expr_events(value)
        single_name = (len(targets) == 1
                       and isinstance(targets[0], ast.Name))
        if single_name:
            target = targets[0].id
            cls = _tracked_constructor(value)
            factory = (self._callgraph is not None
                       and isinstance(value, ast.Call)
                       and isinstance(value.func, ast.Name)
                       and self._callgraph.returns_handle(value.func.id))
            if cls is not None or factory:
                # Rebinding drops whatever the name held before.
                events.append(self._rebind(target, stmt))
                events.append(Event("acquire", name=target, key=cls,
                                    line=stmt.lineno,
                                    col=stmt.col_offset))
            elif isinstance(value, ast.Name):
                # Aliasing: both names now reach the object; stop
                # tracking the source, rebind the target.
                events.append(Event("escape", name=value.id,
                                    line=stmt.lineno))
                events.append(self._rebind(target, stmt))
            elif (isinstance(value, ast.Attribute) and value.attr == "stats"
                    and isinstance(value.value, ast.Name)):
                events.append(self._rebind(target, stmt))
                events.append(Event("stats-alias", name=target,
                                    key=value.value.id,
                                    line=stmt.lineno))
            else:
                events.append(self._rebind(target, stmt))
        else:
            # Tuple unpacking rebinds each plain name; storing into an
            # attribute or container hands the value off.
            stored = False
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    stored = True
                for sub in ast.walk(target):
                    if (isinstance(sub, ast.Name)
                            and isinstance(sub.ctx, ast.Store)):
                        events.append(self._rebind(sub.id, stmt))
            if stored:
                events.extend(Event("escape", name=name, line=stmt.lineno)
                              for name in _names_within(value))
        return events

    @staticmethod
    def _rebind(name, stmt):
        return Event("escape", name=name, line=stmt.lineno)

    def _with_enter(self, stmt, item):
        events = self._expr_events(item.context_expr)
        cls = _tracked_constructor(item.context_expr)
        if cls is not None and isinstance(item.optional_vars, ast.Name):
            name = item.optional_vars.id
            events.append(self._rebind(name, stmt))
            events.append(Event("acquire", name=name, key=cls,
                                line=stmt.lineno, col=stmt.col_offset))
        elif item.optional_vars is not None:
            events.extend(self._rebind(name, stmt)
                          for name in _names_within(item.optional_vars))
        return events

    @staticmethod
    def _with_exit(item):
        if (item is not None
                and isinstance(item.optional_vars, ast.Name)
                and _tracked_constructor(item.context_expr) is not None):
            name = item.optional_vars.id
            line = item.context_expr.lineno
            return [Event("clean", name=name, line=line),
                    Event("release", name=name, line=line)]
        return []

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expr_events(self, expr):
        if expr is None:
            return []
        events = []
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                events.extend(self._call_events(sub))
            elif isinstance(sub, ast.Attribute):
                events.extend(self._attr_read_events(sub))
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
                events.extend(Event("escape", name=name,
                                    line=sub.lineno)
                              for name in _names_within(sub.value))
        return events

    def _call_events(self, call):
        events = []
        func = call.func
        line = call.lineno
        col = call.col_offset
        if isinstance(func, ast.Attribute):
            receiver = func.value
            attr = func.attr
            if attr == "pin":
                events.append(Event("pin", key=self._pin_key(call),
                                    line=line, col=col))
            elif attr == "unpin":
                events.append(Event("unpin", key=self._pin_key(call),
                                    line=line, col=col))
            elif isinstance(receiver, ast.Name):
                name = receiver.id
                if attr in RELEASE_METHODS:
                    events.append(Event("clean", name=name, line=line))
                    events.append(Event("release", name=name, line=line))
                elif attr in CLEAN_METHODS:
                    events.append(Event("clean", name=name, line=line))
                elif attr in DIRTY_METHODS:
                    events.append(Event("dirty", name=name, line=line,
                                        col=col))
            if attr in STAT_READ_METHODS:
                events.extend(self._stats_receiver(receiver, line, col))
        # Any handle passed as an argument escapes local tracking.
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            events.extend(Event("escape", name=name, line=line)
                          for name in _names_within(arg))
        return events

    def _attr_read_events(self, attribute):
        if attribute.attr in WAL_SIDE_FIELDS:
            return []
        if attribute.attr not in STAT_FIELDS:
            return []
        return self._stats_receiver(attribute.value, attribute.lineno,
                                    attribute.col_offset)

    @staticmethod
    def _stats_receiver(receiver, line, col):
        """Stats-read events for ``<receiver>.counter`` /
        ``<receiver>.snapshot()``."""
        if (isinstance(receiver, ast.Attribute) and receiver.attr == "stats"
                and isinstance(receiver.value, ast.Name)):
            return [Event("stats-read", name=receiver.value.id,
                          key="direct", line=line, col=col)]
        if isinstance(receiver, ast.Name):
            # Possibly an ``s = pool.stats`` alias; the rule resolves it
            # against the flow state and ignores unrelated names.
            return [Event("stats-read", name=receiver.id, key="alias",
                          line=line, col=col)]
        return []

    @staticmethod
    def _pin_key(call):
        """(receiver source, first-argument source) identifying a pin."""
        receiver = _src(call.func.value)
        arg = _src(call.args[0]) if call.args else ""
        return (receiver, arg)


def tracked_classes():
    """The handle classes the protocol tracks (re-exported for rules)."""
    return TRACKED_HANDLES
