"""Eraser-style lockset analysis and the four ``prixrace`` rules.

The storage layer declares its latch discipline in source annotations::

    self._frames = OrderedDict()        # prixrace: guarded-by=_latch
    self._latch = Latch("buffer-pool")  # prixrace: no-blocking-io

    def _note_dirty(self, page_id):     # prixrace: requires=_latch
        ...

and this module proves it.  A **must** dataflow analysis
(:func:`~.engine.run_forward_must`) tracks the set of latches held at
every statement -- through ``with lock:`` blocks (the CFG's cleanup
inlining already routes every exit, exceptional included, through the
``with``-exit), bare ``acquire()``/``release()`` pairs, try/finally
shapes and re-entrant re-acquisition (tokens carry a nesting level) --
and four rules consume the fixpoint:

- ``guarded-field-access``: inside the declaring class, every read or
  write of a ``guarded-by`` field must hold the named latch on **every**
  path into the statement.  ``__init__`` is exempt (the object is not
  shared yet); helpers annotated ``requires=<latch>`` are analysed with
  the latch pre-held, and their call sites must hold it.
- ``lock-order``: all acquisition orders in a module form one directed
  graph (acquiring ``b`` while holding ``a`` adds ``a -> b``); a cycle
  is a deadlock waiting for the right interleaving.  Re-entrant
  self-edges are skipped -- the latches are RLocks.
- ``no-blocking-io-under-latch``: while a latch marked
  ``no-blocking-io`` is held, no pager/WAL/file I/O call may run; one
  thread's disk wait must never serialize everyone else's cache hits.
- ``release-on-all-paths``: a bare ``acquire()`` must reach a
  ``release()`` on every path out of the function, exception paths
  included (``with`` is immune by construction and is the fix the
  message suggests).

Lock expressions are recognised by their terminal identifier
(``lock``/``latch``/``mutex``, optionally prefixed, e.g.
``self._io_latch``); names are compared by normalized source text, so
``self._latch`` in two methods of one class is one lock role.  The
analysis is intraprocedural plus annotations -- what escapes it (a latch
handed to another object, cross-module acquisition orders) is the
runtime sanitizer's half of the contract (``docs/CONCURRENCY.md``).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.flow.engine import run_forward, run_forward_must
from repro.analysis.flow.rules import (STRICT_REASONS, FlowRule,
                                       _module_model)

#: Terminal identifiers that denote a mutual-exclusion object.
_LOCK_NAME = re.compile(r"(?:^|_)(?:r?lock|latch|mutex)\d*$", re.IGNORECASE)

#: ``# prixrace: guarded-by=<latch>`` on a field-defining line.
_GUARDED_BY = re.compile(r"#\s*prixrace:\s*guarded-by=([A-Za-z_]\w*)")
#: ``# prixrace: requires=<latch>`` on a ``def`` line.
_REQUIRES = re.compile(r"#\s*prixrace:\s*requires=([A-Za-z_]\w*)")
#: ``# prixrace: no-blocking-io`` on a latch-defining line.
_NO_BLOCKING = re.compile(r"#\s*prixrace:\s*no-blocking-io\b")

#: Methods that reach the platter when called on an I/O object.
_BLOCKING_ATTRS = frozenset({
    "read", "read_raw", "write", "repair_write", "allocate", "sync",
    "fsync", "log_page", "append", "commit", "checkpoint",
    "require_durable", "flush",
})
#: Receiver terminal names that denote an I/O object.
_IO_RECEIVER = re.compile(r"^(?:pager|wal|file|fileobj|log|disk)\w*$",
                          re.IGNORECASE)
#: ``self.<method>()`` calls that (transitively) block on disk I/O.
_SELF_BLOCKING = frozenset({"commit", "flush", "checkpoint", "_write_back",
                            "_load"})

#: Functions exempt from ``release-on-all-paths``: lock-wrapper methods
#: whose whole point is a dangling acquire or release (``Latch.acquire``
#: holds by design; ``__exit__`` releases what ``__enter__`` took).
_WRAPPER_NAMES = frozenset({"acquire", "release", "__enter__", "__exit__",
                            "locked", "owned"})

_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _src(expr):
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse covers all exprs
        return repr(expr)


def _lock_name(expr):
    """Normalized lock name for an expression, or None if not a lock."""
    if isinstance(expr, ast.Attribute):
        terminal = expr.attr
    elif isinstance(expr, ast.Name):
        terminal = expr.id
    else:
        return None
    if _LOCK_NAME.search(terminal):
        return _src(expr)
    return None


# ----------------------------------------------------------------------
# Per-node lock events
# ----------------------------------------------------------------------

def _expr_lock_calls(expr, events):
    """Collect ``L.acquire()`` / ``L.release()`` calls inside ``expr``."""
    if expr is None:
        return
    for sub in ast.walk(expr):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("acquire", "release"):
            continue
        name = _lock_name(func.value)
        if name is not None:
            events.append((func.attr, name, sub.lineno, sub.col_offset))


def _node_lock_events(node):
    """Lock events performed by one CFG node, in program order.

    Mirrors the header-only discipline of the protocol extractor: a
    compound statement's node carries only its header expression, so
    body statements (their own nodes) are not double-counted.
    """
    kind, stmt = node.kind, node.stmt
    events = []
    if kind == "with-enter":
        name = _lock_name(node.item.context_expr)
        if name is not None:
            events.append(("acquire", name, stmt.lineno, stmt.col_offset))
        return events
    if kind == "with-exit":
        name = _lock_name(node.item.context_expr)
        if name is not None:
            events.append(("release", name, stmt.lineno, stmt.col_offset))
        return events
    if kind == "stmt":
        if not isinstance(stmt, _SCOPE_STMTS):
            _expr_lock_calls(stmt, events)
        return events
    if kind == "branch":
        header = (stmt.subject if hasattr(ast, "Match")
                  and isinstance(stmt, ast.Match) else stmt.test)
        _expr_lock_calls(header, events)
        return events
    if kind == "loop-head":
        _expr_lock_calls(stmt.test if isinstance(stmt, ast.While)
                         else stmt.iter, events)
        return events
    if kind in ("return", "raise"):
        _expr_lock_calls(getattr(stmt, "value", None)
                         or getattr(stmt, "exc", None), events)
        return events
    return events


def _node_own_exprs(node):
    """The expressions one CFG node is responsible for (header-only)."""
    kind, stmt = node.kind, node.stmt
    if kind == "stmt":
        if stmt is None or isinstance(stmt, _SCOPE_STMTS):
            return []
        return [stmt]
    if kind == "branch":
        return [stmt.subject if hasattr(ast, "Match")
                and isinstance(stmt, ast.Match) else stmt.test]
    if kind == "loop-head":
        return [stmt.test if isinstance(stmt, ast.While) else stmt.iter]
    if kind == "return":
        return [stmt.value] if stmt.value is not None else []
    if kind == "raise":
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if kind == "with-enter":
        return [node.item.context_expr]
    return []


# ----------------------------------------------------------------------
# Annotation harvesting and the cached per-file lock model
# ----------------------------------------------------------------------

class _ClassSpec:
    """One class's prixrace declarations."""

    __slots__ = ("node", "guarded", "requires", "no_blocking")

    def __init__(self, node):
        self.node = node
        self.guarded = {}      # field -> latch attribute name
        self.requires = {}     # method name -> latch attribute name
        self.no_blocking = set()  # normalized lock names ("self._latch")


def _harvest(source):
    """Parse prixrace annotations; returns ``{class name: _ClassSpec}``."""
    lines = source.lines
    specs = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        spec = _ClassSpec(node)
        for stmt in node.body:
            # Class-level counter declarations (dataclass style).
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                              ast.Name):
                match = _GUARDED_BY.search(lines[stmt.lineno - 1])
                if match:
                    spec.guarded[stmt.target.id] = match.group(1)
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            match = _REQUIRES.search(lines[stmt.lineno - 1])
            if match:
                spec.requires[stmt.name] = match.group(1)
            if stmt.name != "__init__":
                continue
            for sub in ast.walk(stmt):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                line = lines[sub.lineno - 1]
                match = _GUARDED_BY.search(line)
                if match:
                    spec.guarded[target.attr] = match.group(1)
                if _NO_BLOCKING.search(line):
                    spec.no_blocking.add(f"self.{target.attr}")
        if spec.guarded or spec.requires or spec.no_blocking:
            specs[node.name] = spec
    return specs


class _LockModel:
    """Per-file lockset fixpoints plus the annotation specs."""

    def __init__(self, source):
        self.specs = _harvest(source)
        flow_model = _module_model(source)
        self.functions = flow_model.functions
        self._solved = {}
        self._requires_of = {}
        for spec in self.specs.values():
            for stmt in spec.node.body:
                if (isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name in spec.requires):
                    latch = spec.requires[stmt.name]
                    self._requires_of[id(stmt)] = f"self.{latch}"

    def initial_locks(self, func):
        """The entry lockset annotations grant this function."""
        latch = self._requires_of.get(id(func))
        if latch is None:
            return frozenset()
        return frozenset({(latch, 1)})

    def solve(self, model):
        """Must-lockset fixpoint for one function (cached)."""
        key = id(model.func)
        if key not in self._solved:
            events = {node: _node_lock_events(node)
                      for node in model.cfg.nodes}

            def apply(node_events, state, gen):
                for kind, name, _line, _col in node_events:
                    if kind == "acquire":
                        if gen:
                            level = max((lvl for n, lvl in state
                                         if n == name), default=0)
                            state = state | {(name, level + 1)}
                    else:
                        levels = [lvl for n, lvl in state if n == name]
                        if levels:
                            state = state - {(name, max(levels))}
                return state

            flow = run_forward_must(
                model.cfg,
                lambda node, state: apply(events[node], state, True),
                STRICT_REASONS,
                initial=self.initial_locks(model.func),
                transfer_exc=lambda node, state: apply(events[node], state,
                                                       False))
            self._solved[key] = (flow, events)
        return self._solved[key]

    @staticmethod
    def held_names(state):
        return {name for name, _level in state}


def _lock_model(source):
    """Build (once per file) the lock model shared by the four rules."""
    cached = getattr(source, "_prixrace_model", None)
    if cached is None:
        cached = _LockModel(source)
        source._prixrace_model = cached
    return cached


class LockRule(FlowRule):
    """Base for the prixrace rules: per-class iteration helpers."""

    def run(self, source):
        self.source = source
        self.findings = []
        self._reported = set()
        model = _lock_model(source)
        by_func = {id(fm.func): fm for fm in model.functions}
        self._check_module(model, by_func)
        return self.findings

    def _methods_of(self, spec, by_func):
        """(method AST, function model) pairs for one class's methods."""
        for stmt in spec.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fm = by_func.get(id(stmt))
            if fm is not None:
                yield stmt, fm

    def _check_module(self, model, by_func):  # pragma: no cover - abstract
        raise NotImplementedError


class GuardedFieldAccessRule(LockRule):
    """Annotated fields may only be touched with their latch held."""

    name = "guarded-field-access"
    description = ("read/write of a '# prixrace: guarded-by=<latch>' "
                   "field without that latch held on every path")

    def _check_module(self, model, by_func):
        for spec in model.specs.values():
            if not spec.guarded:
                continue
            for method, fm in self._methods_of(spec, by_func):
                if method.name == "__init__":
                    continue
                self._check_method(model, spec, fm)

    def _check_method(self, model, spec, fm):
        flow, events = model.solve(fm)
        for node in fm.cfg.nodes:
            if not flow.reached(node):
                continue
            held = model.held_names(flow.before(node))
            for expr in _node_own_exprs(node):
                self._check_accesses(spec, expr, held)
                self._check_helper_calls(spec, expr, held)

    def _check_accesses(self, spec, expr, held):
        for sub in ast.walk(expr):
            if not (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"):
                continue
            latch = spec.guarded.get(sub.attr)
            if latch is None or f"self.{latch}" in held:
                continue
            self.report_at(sub.lineno, sub.col_offset, (
                f"access to {spec.node.name}.{sub.attr} without holding "
                f"self.{latch} on every path (declared '# prixrace: "
                f"guarded-by={latch}'); wrap the access in "
                f"'with self.{latch}:'"))

    def _check_helper_calls(self, spec, expr, held):
        for sub in ast.walk(expr):
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "self"):
                continue
            latch = spec.requires.get(sub.func.attr)
            if latch is None or f"self.{latch}" in held:
                continue
            self.report_at(sub.lineno, sub.col_offset, (
                f"call to self.{sub.func.attr}() without holding "
                f"self.{latch} (declared '# prixrace: requires={latch}' "
                "on its def line)"))


class LockOrderRule(LockRule):
    """The module's latch acquisition orders must form a DAG."""

    name = "lock-order"
    description = ("cyclic latch acquisition order across the module "
                   "(deadlock waiting for the right interleaving)")

    def _check_module(self, model, by_func):
        edges = {}   # (held, acquired) -> (line, col)
        for fm in model.functions:
            flow, events = model.solve(fm)
            for node in fm.cfg.nodes:
                if not flow.reached(node) or not events[node]:
                    continue
                state = flow.before(node)
                for kind, name, line, col in events[node]:
                    if kind == "acquire":
                        for held in model.held_names(state):
                            if held != name:
                                edges.setdefault((held, name), (line, col))
                    # Track within-node sequences too (with a, b: makes
                    # separate nodes, but a.acquire(); b.acquire() in one
                    # statement would not).
                    level = max((lvl for n, lvl in state if n == name),
                                default=0)
                    if kind == "acquire":
                        state = state | {(name, level + 1)}
                    elif level:
                        state = state - {(name, level)}
        self._report_cycles(edges)

    def _report_cycles(self, edges):
        graph = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
        seen_cycles = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None or frozenset(cycle) in seen_cycles:
                continue
            seen_cycles.add(frozenset(cycle))
            witness = min(
                edges[(cycle[i], cycle[i + 1])]
                for i in range(len(cycle) - 1))
            path = " -> ".join(cycle)
            self.report_at(witness[0], witness[1], (
                f"latch acquisition order cycle {path}: two threads "
                "taking these latches in opposite orders deadlock; pick "
                "one global order (docs/CONCURRENCY.md) and stick to it"))

    @staticmethod
    def _find_cycle(graph, start):
        """A path start -> ... -> start, or None."""
        stack = [(start, [start])]
        visited = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    return path + [start]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None


class NoBlockingIoUnderLatchRule(LockRule):
    """No disk I/O while holding a latch marked ``no-blocking-io``."""

    name = "no-blocking-io-under-latch"
    description = ("pager/WAL/file I/O call while holding a latch "
                   "marked '# prixrace: no-blocking-io'")

    def _check_module(self, model, by_func):
        for spec in model.specs.values():
            if not spec.no_blocking:
                continue
            for method, fm in self._methods_of(spec, by_func):
                self._check_method(model, spec, fm)

    def _check_method(self, model, spec, fm):
        flow, _events = model.solve(fm)
        for node in fm.cfg.nodes:
            if node.kind in ("with-enter", "with-exit"):
                continue
            if not flow.reached(node):
                continue
            held = model.held_names(flow.before(node)) & spec.no_blocking
            if not held:
                continue
            for expr in _node_own_exprs(node):
                for sub in ast.walk(expr):
                    if not isinstance(sub, ast.Call):
                        continue
                    what = self._blocking_call(sub)
                    if what is None:
                        continue
                    latch = sorted(held)[0]
                    self.report_at(sub.lineno, sub.col_offset, (
                        f"{what} while holding {latch} (marked "
                        "'# prixrace: no-blocking-io'): a disk wait "
                        "under the frame-map latch serializes every "
                        "other thread's cache hits; stage the I/O "
                        "outside the latched section"))

    @staticmethod
    def _blocking_call(call):
        func = call.func
        if isinstance(func, ast.Name):
            return f"{func.id}()" if func.id == "fsync_file" else None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _src(func.value)
        if receiver == "self":
            if func.attr in _SELF_BLOCKING:
                return f"self.{func.attr}()"
            return None
        terminal = receiver.rsplit(".", 1)[-1].lstrip("_")
        if func.attr in _BLOCKING_ATTRS and _IO_RECEIVER.match(terminal):
            return f"{receiver}.{func.attr}()"
        return None


class ReleaseOnAllPathsRule(LockRule):
    """A bare ``acquire()`` must reach ``release()`` on every path."""

    name = "release-on-all-paths"
    description = ("lock.acquire() not matched by release() on every "
                   "path out of the function (exception paths count); "
                   "prefer 'with lock:'")
    live_reasons = STRICT_REASONS

    def _check_module(self, model, by_func):
        for fm in model.functions:
            if fm.func.name in _WRAPPER_NAMES:
                continue
            self._check_function_locks(model, fm)

    def _check_function_locks(self, model, fm):
        events = {node: [event for event in _node_lock_events(node)
                         if node.kind not in ("with-enter", "with-exit")]
                  for node in fm.cfg.nodes}
        if not any(kind == "acquire"
                   for node_events in events.values()
                   for kind, *_rest in node_events):
            return

        def apply(node_events, state, gen):
            for kind, name, line, col in node_events:
                if kind == "acquire" and gen:
                    state = state | {(name, line, col)}
                elif kind == "release":
                    state = frozenset(t for t in state if t[0] != name)
            return state

        flow = run_forward(
            fm.cfg,
            lambda node, state: apply(events[node], state, True),
            self.live_reasons,
            transfer_exc=lambda node, state: apply(events[node], state,
                                                   False))
        normal_exit, raise_exit = fm.cfg.exit_nodes
        leaks = flow.before(normal_exit) | flow.before(raise_exit)
        for name, line, col in sorted(leaks, key=lambda t: (t[1], t[2])):
            self.report_at(line, col, (
                f"{name}.acquire() here is not released on every path "
                "out of the function (exception paths count); use "
                f"'with {name}:' so the release is structural"))
