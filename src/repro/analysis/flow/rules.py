"""The four flow-sensitive prixlint rules (``prixflow``).

All four share one per-file model -- a CFG plus protocol events per
function, built lazily and cached on the :class:`SourceFile` -- and run
the worklist engine with rule-specific transfer functions:

- ``pin-unpin-balance``: a ``pool.pin(page)`` must be matched by
  ``pool.unpin(page)`` on **every** outgoing path, exception paths
  included (strict: any call can raise).  Unbalanced pins permanently
  shrink the evictable pool and eventually raise
  ``BufferPoolExhaustedError``.
- ``dirty-page-escape``: a locally acquired handle that is dirtied
  (``put``/``mark_dirty``/``new_page``/``insert_document``/...) must not
  reach a ``return`` still dirty on some path when other paths do flush;
  the benchmark would measure a file that was never written.
- ``stats-read-before-flush``: reading ``IOStats`` counters
  (``pool.stats.physical_reads``, ``stats.snapshot()``) while a locally
  acquired handle has unflushed dirty pages reports I/O that has not
  happened yet.
- ``close-on-all-paths``: a handle that is ``close()``d on some path
  must be closed on all normal paths -- closing only in the happy branch
  is the classic early-return leak.

The last three follow only explicit ``raise`` exception edges (lenient);
cleanup obligations on arbitrary call-raises are the sanitizer's job.
``close-on-all-paths`` and ``dirty-page-escape`` deliberately stay quiet
when the function never releases/flushes at all -- that is the
flow-insensitive ``resource-safety`` rule's finding, not a path bug.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace

from repro.analysis.core import Rule
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.cfg import (EXC_ASSERT, EXC_CALL, EXC_RAISE,
                                     build_cfg)
from repro.analysis.flow.engine import run_forward
from repro.analysis.flow.protocols import ProtocolExtractor
from repro.analysis.rules_io import _tracked_constructor

#: Exception-edge policies (see cfg.EXC_*).
STRICT_REASONS = frozenset({EXC_RAISE, EXC_ASSERT, EXC_CALL})
LENIENT_REASONS = frozenset({EXC_RAISE})


class _FunctionModel:
    """One function's CFG plus the protocol events of every node."""

    __slots__ = ("func", "cfg", "events")

    def __init__(self, func, cfg, events):
        self.func = func
        self.cfg = cfg
        self.events = events


def _module_model(source):
    """Build (once per file) the flow model shared by all four rules."""
    cached = getattr(source, "_prixflow_model", None)
    if cached is not None:
        return cached
    callgraph = CallGraph(source.tree, _tracked_constructor)
    extractor = ProtocolExtractor(callgraph)
    functions = []
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cfg = build_cfg(node)
            events = {cfg_node: extractor.events_for(cfg_node)
                      for cfg_node in cfg.nodes}
            functions.append(_FunctionModel(node, cfg, events))
    model = SimpleNamespace(callgraph=callgraph, functions=functions)
    source._prixflow_model = model
    return model


class FlowRule(Rule):
    """Base for rules that analyse one function's CFG at a time."""

    live_reasons = LENIENT_REASONS

    def run(self, source):
        self.source = source
        self.findings = []
        # Cleanup inlining copies AST statements into several CFG nodes;
        # identical findings from the copies collapse here.
        self._reported = set()
        for model in _module_model(source).functions:
            self._check_function(model)
        return self.findings

    def report_at(self, line, col, message):
        key = (line, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(SimpleNamespace(lineno=line, col_offset=col), message)

    def _check_function(self, model):  # pragma: no cover - abstract
        raise NotImplementedError

    def _apply(self, events, state, gen):  # pragma: no cover - abstract
        raise NotImplementedError

    def _solve(self, model):
        """Run this rule's transfer to fixpoint over one function.

        Normal edges see the full gen/kill transfer; exception edges see
        kills only -- a release that raises is still assumed to have
        released, while an acquire that raises never acquired.
        """
        events = model.events

        def transfer(node, state):
            return self._apply(events[node], state, gen=True)

        def transfer_exc(node, state):
            return self._apply(events[node], state, gen=False)

        return run_forward(model.cfg, transfer, self.live_reasons,
                           transfer_exc=transfer_exc)

    @staticmethod
    def _events_with(model, *kinds):
        for node_events in model.events.values():
            for event in node_events:
                if event.kind in kinds:
                    yield event


class PinUnpinBalanceRule(FlowRule):
    """Every ``pin`` must reach a matching ``unpin`` on every path."""

    name = "pin-unpin-balance"
    description = ("BufferPool.pin() not matched by unpin() on every "
                   "path (exception paths included) shrinks the "
                   "evictable pool for good")
    live_reasons = STRICT_REASONS

    def _apply(self, events, state, gen):
        for event in events:
            if event.kind == "pin" and gen:
                state = state | {(event.key, event.line, event.col)}
            elif event.kind == "unpin":
                state = frozenset(token for token in state
                                  if token[0] != event.key)
        return state

    def _check_function(self, model):
        if not any(True for _ in self._events_with(model, "pin")):
            return
        flow = self._solve(model)
        normal_exit, raise_exit = model.cfg.exit_nodes
        leaks = flow.before(normal_exit) | flow.before(raise_exit)
        for key, line, col in sorted(leaks, key=lambda t: (t[1], t[2])):
            receiver, page = key
            self.report_at(line, col, (
                f"pin of {page or 'page'} on {receiver} is not released "
                "by unpin() on every path out of the function "
                "(exception paths count); use the pinned() context "
                "manager"))


class DirtyPageEscapeRule(FlowRule):
    """No path may return with pages dirtied here still unflushed."""

    name = "dirty-page-escape"
    description = ("a locally acquired handle is dirtied and can reach "
                   "a return without flush()/close() on some path")

    def _apply(self, events, state, gen):
        for event in events:
            if event.kind == "acquire" and gen:
                state = frozenset(t for t in state if t[1] != event.name)
                state = state | {("h", event.name)}
            elif event.kind == "dirty" and gen:
                if ("h", event.name) in state:
                    state = state | {("d", event.name, event.line,
                                      event.col)}
            elif event.kind == "clean":
                state = frozenset(t for t in state
                                  if not (t[0] == "d"
                                          and t[1] == event.name))
            elif event.kind in ("release", "escape"):
                state = frozenset(t for t in state if t[1] != event.name)
        return state

    def _check_function(self, model):
        cleaned_names = {event.name for event in
                         self._events_with(model, "clean")}
        if not cleaned_names:
            return
        flow = self._solve(model)
        exit_state = flow.before(model.cfg.exit)
        dirty = sorted((t for t in exit_state if t[0] == "d"),
                       key=lambda t: (t[2], t[3]))
        for _, name, line, col in dirty:
            if name in cleaned_names:
                self.report_at(line, col, (
                    f"pages dirtied via {name!r} here can reach a "
                    "return without flush()/close() on some path; "
                    "route every exit through the flush"))


class StatsReadBeforeFlushRule(FlowRule):
    """IOStats must not be read while dirty pages are unflushed."""

    name = "stats-read-before-flush"
    description = ("IOStats counters read while a locally acquired "
                   "handle still has unflushed dirty pages")

    def _apply(self, events, state, gen):
        for event in events:
            if event.kind == "acquire" and gen:
                state = frozenset(t for t in state if t[1] != event.name)
                state = state | {("h", event.name)}
            elif event.kind == "dirty" and gen:
                if ("h", event.name) in state:
                    state = state | {("d", event.name)}
            elif event.kind == "clean":
                state = frozenset(t for t in state
                                  if not (t[0] == "d"
                                          and t[1] == event.name))
            elif event.kind in ("release", "escape"):
                state = frozenset(t for t in state if t[1] != event.name)
            elif event.kind == "stats-alias" and gen:
                state = frozenset(t for t in state
                                  if not (t[0] == "a"
                                          and t[1] == event.name))
                if ("h", event.key) in state:
                    state = state | {("a", event.name, event.key)}
        return state

    def _check_function(self, model):
        if not any(True for _ in self._events_with(model, "stats-read")):
            return
        flow = self._solve(model)
        for node, node_events in model.events.items():
            if not flow.reached(node):
                continue
            before = flow.before(node)
            for event in node_events:
                if event.kind != "stats-read":
                    continue
                handle = self._resolve(event, before)
                if handle is None:
                    continue
                if ("d", handle) in before:
                    self.report_at(event.line, event.col, (
                        f"IOStats read while {handle!r} has unflushed "
                        "dirty pages; flush() first so the counters "
                        "match what is on disk"))

    @staticmethod
    def _resolve(event, state):
        """The tracked handle behind a stats-read, or None."""
        if event.key == "direct":
            return event.name if ("h", event.name) in state else None
        for token in state:
            if token[0] == "a" and token[1] == event.name:
                return token[2]
        return None


class CloseOnAllPathsRule(FlowRule):
    """A handle closed on some path must be closed on all of them."""

    name = "close-on-all-paths"
    description = ("Pager/BufferPool/PrixIndex closed on some paths "
                   "but able to reach a return unclosed on others")

    def _apply(self, events, state, gen):
        for event in events:
            if event.kind == "acquire" and gen:
                state = frozenset(t for t in state if t[0] != event.name)
                state = state | {(event.name, event.key, event.line,
                                  event.col)}
            elif event.kind in ("release", "escape"):
                state = frozenset(t for t in state if t[0] != event.name)
        return state

    def _check_function(self, model):
        released_names = {event.name for event in
                          self._events_with(model, "release")}
        if not released_names:
            return
        flow = self._solve(model)
        exit_state = sorted(flow.before(model.cfg.exit),
                            key=lambda t: (t[2], t[3]))
        for name, cls, line, col in exit_state:
            if name in released_names:
                self.report_at(line, col, (
                    f"{cls or 'handle'} bound to {name!r} is closed on "
                    "some paths but can reach a return unclosed; close "
                    "it in a finally block or use a with statement"))
