"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.arch.rules import ARCH_RULE_NAMES
from repro.analysis.flow import PRIXRACE_RULES


def render_text(result, show_grandfathered=False):
    """Human-readable report, one line per finding plus a summary."""
    lines = []
    for finding in result.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.rule}: {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if show_grandfathered:
        for finding in result.grandfathered:
            lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                         f"{finding.rule}: [baseline] {finding.message}")
    for path, message in result.errors:
        lines.append(f"{path}: error: {message}")
    summary = (f"{len(result.findings)} finding(s) in "
               f"{result.files_checked} file(s)")
    if result.grandfathered:
        summary += f", {len(result.grandfathered)} grandfathered by baseline"
    if result.errors:
        summary += f", {len(result.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(result):
    """Machine-readable report mirroring the text reporter's content.

    ``rule_counts`` tallies every rule that fired (new and
    grandfathered findings both count -- the number answers "how much
    of this pattern exists", not "how much is new").  The prixrace and
    prixarch rules are always present, zero included, so the CI lint
    artifact shows the concurrency and architecture checks ran even on
    a clean tree.
    """
    counts = Counter(f.rule for f in result.findings)
    counts.update(f.rule for f in result.grandfathered)
    for rule in PRIXRACE_RULES + ARCH_RULE_NAMES:
        counts.setdefault(rule, 0)
    document = {
        "files_checked": result.files_checked,
        "findings": [finding.as_dict() for finding in result.findings],
        "grandfathered": [finding.as_dict()
                          for finding in result.grandfathered],
        "errors": [{"path": path, "message": message}
                   for path, message in result.errors],
        "rule_counts": dict(counts),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
