"""Generic hygiene rules applied across the whole tree.

Neither rule is PRIX-specific, but both failure modes have bitten
storage engines before: a mutable default argument turns a per-call
cache into cross-index shared state, and a bare ``except:`` swallows
``KeyboardInterrupt`` mid-flush and leaves a torn page file behind.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule

#: Builtin constructors whose zero-arg call in a default is just as
#: shared as a literal.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "OrderedDict", "defaultdict", "Counter", "deque",
})


class NoMutableDefaultArgRule(Rule):
    """Default argument values must not be mutable objects."""

    name = "no-mutable-default-arg"
    description = ("mutable default arguments are shared across calls; "
                   "default to None and construct inside the function")

    def visit_FunctionDef(self, node):
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            problem = self._mutable_kind(default)
            if problem is not None:
                self.report(default, f"mutable default argument "
                                     f"({problem}) in {node.name}(); one "
                                     "instance is shared by every call")
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node):
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            problem = self._mutable_kind(default)
            if problem is not None:
                self.report(default, f"mutable default argument "
                                     f"({problem}) in lambda; one "
                                     "instance is shared by every call")
        self.generic_visit(node)

    @staticmethod
    def _mutable_kind(node):
        if isinstance(node, ast.List):
            return "list literal"
        if isinstance(node, ast.Dict):
            return "dict literal"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.ListComp):
            return "list comprehension"
        if isinstance(node, ast.DictComp):
            return "dict comprehension"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS):
            return f"{node.func.id}() call"
        return None


class NoBareExceptRule(Rule):
    """``except:`` must name the exceptions it intends to swallow."""

    name = "no-bare-except"
    description = ("bare except: catches SystemExit/KeyboardInterrupt and "
                   "can hide a torn flush; name the exception types")

    def visit_ExceptHandler(self, node):
        if node.type is None:
            self.report(node, "bare except: catches everything including "
                              "KeyboardInterrupt during a flush; name the "
                              "exception types")
        self.generic_visit(node)
