"""Determinism rule: every random number must come from a seeded stream.

The reproduction's corpora (DBLP/SWISSPROT/Treebank generators) and
sampled workloads must be byte-identical across runs, or the paper's
tables stop being comparable between commits.  That holds only when all
randomness flows through explicitly seeded ``random.Random(seed)``
instances -- never the process-global module functions, and never an
unseeded ``Random()`` (which seeds from the OS).
"""

from __future__ import annotations

import ast

from repro.analysis.core import ImportTracker, Rule

#: Constructors on the ``random`` module that are fine *when seeded*.
_CONSTRUCTORS = frozenset({"Random"})
#: Never acceptable: explicitly non-deterministic by design.
_FORBIDDEN_CLASSES = frozenset({"SystemRandom"})


class SeededRngRule(ImportTracker, Rule):
    """Forbid module-level ``random.*`` calls and unseeded ``Random()``."""

    name = "seeded-rng"
    description = ("random.Random(...) must receive an explicit seed and "
                   "module-level random.* functions are forbidden")
    watched_modules = ("random",)

    def visit_ImportFrom(self, node):
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _CONSTRUCTORS:
                    self.report(node, f"from random import {alias.name}: "
                                      "module-level RNG functions bypass "
                                      "seeding; construct a seeded "
                                      "random.Random instead")
        super().visit_ImportFrom(node)

    def visit_Call(self, node):
        resolved = self.resolve_call(node)
        if resolved is not None and resolved[0] == "random":
            _, func = resolved
            if func in _FORBIDDEN_CLASSES:
                self.report(node, f"random.{func} is non-deterministic by "
                                  "design; use a seeded random.Random")
            elif func in _CONSTRUCTORS:
                self._check_seeded(node, func)
            else:
                self.report(node, f"module-level random.{func}() uses the "
                                  "shared unseeded RNG; corpora and "
                                  "workloads must come from a seeded "
                                  "random.Random instance")
        self.generic_visit(node)

    def _check_seeded(self, node, func):
        """``Random()`` with no argument seeds from the OS -- flag it."""
        has_seed = bool(node.args) or any(kw.arg is None
                                          for kw in node.keywords)
        explicit_none = (len(node.args) == 1
                         and isinstance(node.args[0], ast.Constant)
                         and node.args[0].value is None)
        if not has_seed or explicit_none:
            self.report(node, f"random.{func}() without an explicit seed "
                              "is non-reproducible; pass a seed argument")
