"""I/O accounting and resource-lifetime rules.

These two rules defend the paper's "Disk IO pages" columns (Tables 4-9):
the numbers are only meaningful if every page that reaches disk flows
through :class:`~repro.storage.pager.Pager` (where it is counted) and
every storage handle is flushed before a benchmark reads the file back.
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from repro.analysis.core import ImportTracker, Rule, path_in_packages

#: Packages whose page traffic must be pager-mediated.
PAGED_PACKAGES = (("repro", "storage"), ("repro", "prix"), ("repro", "trie"))

#: ``os`` functions that touch file contents or the directory tree.
OS_FILE_FUNCS = frozenset({
    "open", "fdopen", "read", "write", "pread", "pwrite", "sendfile",
    "remove", "unlink", "rename", "replace", "truncate", "ftruncate",
    "mkstemp", "mkdir", "makedirs",
})

#: ``io`` entry points that open real files (``io.BytesIO`` is memory-only
#: and allowed -- the in-memory pager depends on it).
IO_FILE_FUNCS = frozenset({"open", "FileIO"})


class NoRawIoRule(ImportTracker, Rule):
    """Forbid raw file I/O in the paged packages.

    Any ``open()`` / ``os.*`` / ``io.open`` call in ``repro.storage``,
    ``repro.prix`` or ``repro.trie`` bypasses the pager and silently
    corrupts the physical-read accounting.  Four gateways are
    sanctioned and exempt: ``pager.py`` and ``mmapio.py`` (page
    traffic, counted in ``physical_reads``/``physical_writes``),
    ``wal.py`` (log traffic, counted in ``wal_appends``/``wal_bytes``;
    deliberately *not* page traffic, see ``docs/DURABILITY.md``) and
    ``guard.py`` (checksum-sidecar traffic, counted in ``guard_*``;
    see ``docs/ROBUSTNESS.md``).  Any other legitimate exception (e.g.
    the superblock sniff in ``prix/index.py``) must carry an explicit
    ``# prixlint: disable=no-raw-io`` so reviewers see it.  These same
    gateways seed the ``raw-io`` effect in the prixarch effect
    inference (``docs/ARCHITECTURE.md``).
    """

    name = "no-raw-io"
    description = ("open()/os.* file calls in repro.storage/prix/trie "
                   "bypass the Pager and corrupt I/O accounting")
    watched_modules = ("os", "io")

    #: The sanctioned raw-I/O gateway modules of ``repro.storage``.
    GATEWAY_FILES = ("pager.py", "wal.py", "guard.py", "mmapio.py")

    def applies_to(self, source):
        if PurePath(source.path).name in self.GATEWAY_FILES:
            return False
        return path_in_packages(source, PAGED_PACKAGES)

    def visit_Call(self, node):
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self.report(node, "raw open() call; page traffic must go "
                              "through the Pager so IOStats stays truthful")
        else:
            resolved = self.resolve_call(node)
            if resolved is not None:
                module, func = resolved
                flagged = (OS_FILE_FUNCS if module == "os"
                           else IO_FILE_FUNCS)
                if func in flagged:
                    self.report(node, f"raw {module}.{func}() call; page "
                                      "traffic must go through the Pager "
                                      "so IOStats stays truthful")
        self.generic_visit(node)


#: Classes whose instances own a file handle or dirty pages.
TRACKED_HANDLES = frozenset({"Pager", "ArenaPager", "MmapPager",
                             "BufferPool", "FilePagerBackend",
                             "InMemoryArenaBackend", "MmapBackend",
                             "PrixIndex", "WriteAheadLog", "PageGuard"})


def _tracked_constructor(node):
    """Class name when ``node`` constructs a tracked handle, else None.

    Matches direct construction (``Pager(f)``, ``BufferPool(pager)``)
    and alternate-constructor classmethods (``Pager.open(path)``,
    ``PrixIndex.build(docs)``).
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in TRACKED_HANDLES:
        return func.id
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in TRACKED_HANDLES):
        return func.value.id
    return None


class ResourceSafetyRule(Rule):
    """A locally constructed storage handle must not leak.

    For every ``name = Pager/BufferPool/PrixIndex(...)`` binding inside a
    function, the name must subsequently be closed, context-managed,
    returned/yielded, re-bound elsewhere (attribute, container, alias) or
    passed to another call -- otherwise dirty pages can be dropped on the
    floor and benchmarks measure a file that was never flushed.

    The check is intentionally flow-insensitive: a discharge anywhere in
    the function counts for all paths.  That misses a leak on an early
    branch but never cries wolf on correct ``try/finally`` code, which is
    the right trade-off for a gating linter.
    """

    name = "resource-safety"
    description = ("Pager/BufferPool/PrixIndex constructed in a function "
                   "must be closed, returned, or handed off")

    def visit_FunctionDef(self, node):
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _check_function(self, func):
        acquisitions = []  # (local name, class name, assign node)
        for stmt in ast.walk(func):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                cls = _tracked_constructor(stmt.value)
                if cls is not None:
                    acquisitions.append((stmt.targets[0].id, cls, stmt))
        if not acquisitions:
            return
        discharged = set()
        for sub in ast.walk(func):
            discharged |= self._discharges(sub)
        for name, cls, stmt in acquisitions:
            if name not in discharged:
                self.report(stmt, f"{cls} bound to {name!r} is never "
                                  "closed, returned, context-managed, or "
                                  "handed off; dirty pages may be lost")

    @staticmethod
    def _names_within(node):
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                yield sub.id

    def _discharges(self, node):
        """Local names this single statement/expression discharges."""
        names = set()
        if isinstance(node, ast.Call):
            # x.close() / x.flush_and_clear() style finalizers.
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in ("close", "flush_and_clear")):
                names.add(func.value.id)
            # Handle passed to any call: ownership escapes (for example
            # ``BufferPool(pager)`` assumes responsibility for ``pager``).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                names.update(self._names_within(arg))
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            names.update(self._names_within(node.value))
        elif isinstance(node, ast.withitem):
            names.update(self._names_within(node.context_expr))
        elif isinstance(node, ast.Assign):
            # Storing into an attribute/container, or aliasing to another
            # name, hands the handle to an owner this rule cannot track.
            if not (len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                names.update(self._names_within(node.value))
            elif isinstance(node.value, ast.Name):
                names.add(node.value.id)
        return names
