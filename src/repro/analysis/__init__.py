"""prixlint: AST-based invariant checks for the PRIX reproduction.

The paper's headline numbers rest on invariants Python cannot express in
types: page traffic must flow through the :class:`Pager` so the
"Disk IO pages" columns stay truthful, every RNG must be explicitly
seeded so corpora are reproducible, and storage handles must be flushed
so benchmarks measure real pages.  This package enforces them
statically; see ``docs/ANALYSIS.md`` for the rule catalogue.

Programmatic use::

    from repro.analysis import ALL_RULES, lint_paths
    result = lint_paths(["src/repro"])
    assert not result.findings

Command line: ``prix lint [paths]`` or ``python -m repro.analysis``.
"""

from repro.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from repro.analysis.core import (Finding, Rule, SourceFile, check_source)
from repro.analysis.runner import (ALL_RULES, LintResult, lint_paths, main,
                                   rules_by_name)

__all__ = [
    "ALL_RULES", "Finding", "LintResult", "Rule", "SourceFile",
    "apply_baseline", "check_source", "lint_paths", "load_baseline",
    "main", "rules_by_name", "write_baseline",
]
