"""Core machinery of ``prixlint``: findings, rules, suppressions.

The linter is a thin framework over :mod:`ast`.  A :class:`SourceFile`
parses one module and collects its suppression comments; a :class:`Rule`
is an ``ast.NodeVisitor`` that emits :class:`Finding` objects while it
walks the tree; :func:`check_source` runs every applicable rule over one
file and filters out suppressed findings.

Suppression syntax (checked against the physical line a finding is
reported on)::

    handle = open(path)        # prixlint: disable=no-raw-io
    rng = random.Random()      # prixlint: disable=seeded-rng,no-raw-io
    frame = open(path).read()  # prixlint: disable=all

A whole file can opt out of a rule with a comment anywhere in it::

    # prixlint: disable-file=resource-safety
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePath

#: Matches ``# prixlint: disable=rule-a,rule-b`` on a single line.
_LINE_SUPPRESS = re.compile(r"#\s*prixlint:\s*disable=([A-Za-z0-9_,\- ]+)")
#: Matches ``# prixlint: disable-file=rule-a`` anywhere in the file.
_FILE_SUPPRESS = re.compile(r"#\s*prixlint:\s*disable-file=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    @property
    def baseline_key(self):
        """Line-number-independent identity used by the baseline file.

        Keyed on (rule, path, snippet) so a grandfathered finding stays
        matched when unrelated edits shift it to a different line.
        """
        return (self.rule, self.path, self.snippet)

    def as_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "snippet": self.snippet}


def _split_rules(text):
    return {name.strip() for name in text.split(",") if name.strip()}


class SourceFile:
    """A parsed module plus its suppression directives."""

    def __init__(self, path, text):
        self.path = str(path)
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=self.path)
        self.file_suppressions = set()
        self.line_suppressions = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _FILE_SUPPRESS.search(line)
            if match:
                self.file_suppressions |= _split_rules(match.group(1))
                continue
            match = _LINE_SUPPRESS.search(line)
            if match:
                self.line_suppressions[lineno] = _split_rules(match.group(1))

    def snippet(self, lineno):
        """The stripped physical line a finding points at."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, finding):
        """True when a directive silences this finding."""
        for scope in (self.file_suppressions,
                      self.line_suppressions.get(finding.line, ())):
            if "all" in scope or finding.rule in scope:
                return True
        return False

    @property
    def parts(self):
        """Path components, used by rules that scope themselves by package."""
        return PurePath(self.path).parts


class Rule(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set :attr:`name` / :attr:`description`, override
    ``visit_*`` methods, and call :meth:`report` for each violation.  A
    fresh instance is created per file, so visitors may keep per-file
    state in ``__init__`` without cross-file leakage.
    """

    name = ""
    description = ""

    def __init__(self):
        self.source = None
        self.findings = []

    def applies_to(self, source):
        """Whether this rule should run over ``source`` at all."""
        return True

    def run(self, source):
        """Visit the file's AST and return the findings."""
        self.source = source
        self.findings = []
        self.visit(source.tree)
        return self.findings

    def report(self, node, message):
        """Record a violation anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=self.name, path=self.source.path, line=line, col=col,
            message=message, snippet=self.source.snippet(line)))


def path_in_packages(source, packages):
    """True when the file lives under one of the dotted package paths.

    ``packages`` is an iterable of part-tuples such as
    ``(("repro", "storage"), ("repro", "trie"))``; matching is by
    consecutive path components so both repository-relative and absolute
    paths resolve the same way.
    """
    parts = source.parts
    for package in packages:
        width = len(package)
        for start in range(len(parts) - width + 1):
            if parts[start:start + width] == package:
                return True
    return False


class ImportTracker:
    """Resolves which local names refer to a watched stdlib module.

    Rules that care about ``os``/``io``/``random`` mix this in to map
    aliases (``import random as rnd``) and from-imports
    (``from os import remove as rm``) back to canonical
    ``module.function`` pairs.
    """

    watched_modules = ()

    def __init__(self):
        super().__init__()
        #: local alias -> module name (``rnd`` -> ``random``)
        self.module_aliases = {}
        #: local name -> (module, original function name)
        self.imported_members = {}

    def visit_Import(self, node):
        for alias in node.names:
            if alias.name in self.watched_modules:
                self.module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module in self.watched_modules:
            for alias in node.names:
                self.imported_members[alias.asname or alias.name] = (
                    node.module, alias.name)
        self.generic_visit(node)

    def resolve_call(self, node):
        """Map a ``Call`` node to ``(module, function)`` or ``None``."""
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module = self.module_aliases.get(func.value.id)
            if module is not None:
                return module, func.attr
        if isinstance(func, ast.Name):
            member = self.imported_members.get(func.id)
            if member is not None:
                return member
        return None


def check_source(source, rule_classes):
    """Run every applicable rule over one file; returns sorted findings."""
    findings = []
    for rule_class in rule_classes:
        rule = rule_class()
        if not rule.applies_to(source):
            continue
        findings.extend(finding for finding in rule.run(source)
                        if not source.is_suppressed(finding))
    return sorted(findings, key=lambda finding: finding.sort_key)
