"""File discovery, orchestration and the ``prix lint`` command line.

Exit codes: 0 = clean, 1 = findings, 2 = usage error or a file that
could not be parsed.  ``prix lint`` in ``repro.cli`` and
``python -m repro.analysis`` both route through :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import (BaselineError, apply_baseline,
                                     load_baseline, write_baseline)
from repro.analysis.core import SourceFile, check_source
from repro.analysis.flow import FLOW_RULES
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules_determinism import SeededRngRule
from repro.analysis.rules_hygiene import (NoBareExceptRule,
                                          NoMutableDefaultArgRule)
from repro.analysis.rules_io import NoRawIoRule, ResourceSafetyRule
from repro.analysis.rules_stats import StatsIntDisciplineRule

#: Every shipped rule, in reporting order: the AST rules first, then the
#: flow-sensitive prixflow rules.
ALL_RULES = (
    NoRawIoRule,
    SeededRngRule,
    StatsIntDisciplineRule,
    ResourceSafetyRule,
    NoMutableDefaultArgRule,
    NoBareExceptRule,
) + FLOW_RULES

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list = field(default_factory=list)
    grandfathered: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # (path, message)
    files_checked: int = 0

    @property
    def exit_code(self):
        if self.errors:
            return 2
        return 1 if self.findings else 0


def rules_by_name():
    """Mapping of rule name to rule class."""
    return {rule.name: rule for rule in ALL_RULES}


def iter_python_files(paths):
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py" or path.is_file():
            yield path


def _display_path(path):
    """Stable path used in reports and baseline keys.

    Paths inside the working tree are reported relative to the current
    directory so the same finding keys identically whether the linter
    was invoked with relative or absolute arguments.
    """
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths, rules=None, baseline=None):
    """Lint files/directories and return a :class:`LintResult`.

    ``baseline`` is a key multiset from
    :func:`repro.analysis.baseline.load_baseline`; matching findings are
    reported separately and do not affect the exit code.
    """
    rules = ALL_RULES if rules is None else tuple(rules)
    result = LintResult()
    findings = []
    for raw in paths:
        # A typo'd path must not produce a green "0 findings in 0 files".
        if not Path(raw).exists():
            result.errors.append((str(raw), "path does not exist"))
    for path in iter_python_files(paths):
        display = _display_path(path)
        try:
            text = path.read_text(encoding="utf-8")
            source = SourceFile(display, text)
        except (OSError, SyntaxError, UnicodeDecodeError, ValueError) as err:
            result.errors.append((display, str(err)))
            continue
        result.files_checked += 1
        findings.extend(check_source(source, rules))
    findings.sort(key=lambda finding: finding.sort_key)
    if baseline:
        result.findings, result.grandfathered = apply_baseline(findings,
                                                               baseline)
    else:
        result.findings = findings
    return result


def add_lint_arguments(parser):
    """Attach the lint options to an argparse parser (shared with the
    ``prix lint`` subcommand)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", dest="format",
                        help="report format")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of grandfathered findings")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--rules", metavar="NAME[,NAME...]",
                        help="run only these rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    return parser


def run_lint(args, out=None, err=None):
    """Execute a parsed lint invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    registry = rules_by_name()
    if args.list_rules:
        for name in sorted(registry):
            print(f"{name}: {registry[name].description}", file=out)
        return 0

    rules = ALL_RULES
    if args.rules:
        names = [name.strip() for name in args.rules.split(",")
                 if name.strip()]
        unknown = [name for name in names if name not in registry]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)} "
                  f"(try --list-rules)", file=err)
            return 2
        rules = tuple(registry[name] for name in names)

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, BaselineError) as error:
            print(f"error: {error}", file=err)
            return 2

    result = lint_paths(args.paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        all_findings = result.findings + result.grandfathered
        count = write_baseline(args.write_baseline, all_findings)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {args.write_baseline}",
              file=out)
        return 0 if not result.errors else 2

    if args.format == "json":
        out.write(render_json(result))
    else:
        out.write(render_text(result))
    return result.exit_code


def main(argv=None):
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="prixlint: static invariant checks for the PRIX "
                    "reproduction (I/O accounting, determinism, resource "
                    "safety)")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
