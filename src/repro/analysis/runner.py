"""File discovery, orchestration and the ``prix lint`` command line.

Exit codes: 0 = clean, 1 = findings, 2 = usage error or a file that
could not be parsed.  ``prix lint`` in ``repro.cli`` and
``python -m repro.analysis`` both route through :func:`main`.
"""

from __future__ import annotations

import argparse
import inspect
import json
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.arch import (ARCH_RULES, ManifestError, ProjectModel,
                                 arch_check, find_manifest, load_manifest)
from repro.analysis.baseline import (BaselineError, apply_baseline,
                                     load_baseline, write_baseline)
from repro.analysis.core import SourceFile, check_source
from repro.analysis.flow import FLOW_RULES
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules_determinism import SeededRngRule
from repro.analysis.rules_hygiene import (NoBareExceptRule,
                                          NoMutableDefaultArgRule)
from repro.analysis.rules_io import NoRawIoRule, ResourceSafetyRule
from repro.analysis.rules_stats import StatsIntDisciplineRule

#: Every shipped rule, in reporting order: the AST rules first, the
#: flow-sensitive prixflow rules, then the project-scoped prixarch
#: rules.
ALL_RULES = (
    NoRawIoRule,
    SeededRngRule,
    StatsIntDisciplineRule,
    ResourceSafetyRule,
    NoMutableDefaultArgRule,
    NoBareExceptRule,
) + FLOW_RULES + ARCH_RULES

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list = field(default_factory=list)
    grandfathered: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # (path, message)
    files_checked: int = 0

    @property
    def exit_code(self):
        if self.errors:
            return 2
        return 1 if self.findings else 0


def rules_by_name():
    """Mapping of rule name to rule class."""
    return {rule.name: rule for rule in ALL_RULES}


def iter_python_files(paths):
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py" or path.is_file():
            yield path


def _display_path(path):
    """Stable path used in reports and baseline keys.

    Paths inside the working tree are reported relative to the current
    directory so the same finding keys identically whether the linter
    was invoked with relative or absolute arguments.
    """
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def default_jobs():
    """Default worker count for the per-file pass."""
    return min(8, os.cpu_count() or 1)


def _lint_worker(task):
    """Lint one file in a worker process (per-file rules only)."""
    display, raw_path, rules = task
    try:
        text = Path(raw_path).read_text(encoding="utf-8")
        source = SourceFile(display, text)
    except (OSError, SyntaxError, UnicodeDecodeError, ValueError) as err:
        return display, None, str(err)
    return display, check_source(source, rules), None


def _load_manifest_for(paths, result):
    """Locate and parse ``.prixarch.toml`` for the linted tree, if any."""
    roots = [str(raw) for raw in paths if Path(raw).exists()]
    manifest_path = find_manifest(roots or ["."])
    if manifest_path is None:
        return None
    try:
        return load_manifest(manifest_path)
    except (OSError, ManifestError) as error:
        result.errors.append((str(manifest_path), str(error)))
        return None


def lint_paths(paths, rules=None, baseline=None, jobs=None):
    """Lint files/directories and return a :class:`LintResult`.

    ``baseline`` is a key multiset from
    :func:`repro.analysis.baseline.load_baseline`; matching findings are
    reported separately and do not affect the exit code.  ``jobs``
    fans the per-file pass out over a process pool (default
    ``min(8, cpu_count)``); output is deterministic regardless of the
    worker count, and the project-scoped prixarch rules always run in
    the parent process because they need every file at once.
    """
    rules = ALL_RULES if rules is None else tuple(rules)
    file_rules = tuple(r for r in rules if not getattr(r, "project", False))
    arch_rules = tuple(r for r in rules if getattr(r, "project", False))
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    result = LintResult()
    findings = []
    sources = []
    for raw in paths:
        # A typo'd path must not produce a green "0 findings in 0 files".
        if not Path(raw).exists():
            result.errors.append((str(raw), "path does not exist"))
    files = [(_display_path(path), str(path))
             for path in iter_python_files(paths)]
    if jobs > 1 and len(files) > 1:
        # The per-file pass parallelizes embarrassingly; map() keeps
        # input order, so reports are identical to a serial run.  The
        # arch pass re-parses in the parent below -- SourceFile objects
        # stay in the workers.
        tasks = [(display, raw, file_rules) for display, raw in files]
        with multiprocessing.Pool(min(jobs, len(files))) as pool:
            for display, file_findings, error in pool.map(_lint_worker,
                                                          tasks):
                if error is not None:
                    result.errors.append((display, error))
                    continue
                result.files_checked += 1
                findings.extend(file_findings)
        if arch_rules:
            for display, raw in files:
                try:
                    sources.append(SourceFile(
                        display, Path(raw).read_text(encoding="utf-8")))
                except (OSError, SyntaxError, UnicodeDecodeError,
                        ValueError):
                    continue        # already reported by the worker
    else:
        # Serial: parse once and share the SourceFile objects between
        # the per-file rules and the arch pass.
        for display, raw in files:
            try:
                text = Path(raw).read_text(encoding="utf-8")
                source = SourceFile(display, text)
            except (OSError, SyntaxError, UnicodeDecodeError,
                    ValueError) as err:
                result.errors.append((display, str(err)))
                continue
            result.files_checked += 1
            sources.append(source)
            findings.extend(check_source(source, file_rules))
    if arch_rules and sources:
        manifest = _load_manifest_for(paths, result)
        findings.extend(arch_check(sources, manifest, arch_rules))
    findings.sort(key=lambda finding: finding.sort_key)
    if baseline:
        result.findings, result.grandfathered = apply_baseline(findings,
                                                               baseline)
    else:
        result.findings = findings
    return result


def add_lint_arguments(parser):
    """Attach the lint options to an argparse parser (shared with the
    ``prix lint`` subcommand)."""
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", dest="format",
                        help="report format")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of grandfathered findings")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--rules", metavar="NAME[,NAME...]",
                        help="run only these rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    parser.add_argument("--jobs", type=int, metavar="N", default=None,
                        help="worker processes for the per-file pass "
                             "(default: min(8, cpu_count))")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite --baseline FILE keeping only "
                             "entries that still match a finding")
    parser.add_argument("--explain", metavar="RULE",
                        help="print a rule's rationale and annotation "
                             "vocabulary, then exit")
    parser.add_argument("--effect-report", metavar="FILE",
                        dest="effect_report",
                        help="write the prixarch per-function effect "
                             "inference as JSON")
    return parser


def explain_rule(rule_class, out):
    """Print one rule's rationale: description plus class docstring.

    Every rule's docstring is its design rationale -- why the invariant
    matters for the reproduction -- and, for the annotation-driven
    rules, documents the comment vocabulary (``# prixlint: disable=``,
    ``# prixrace: guarded-by=``, ``# prixeffect: declares=``,
    ``# priximpl:``).
    """
    print(f"{rule_class.name}: {rule_class.description}", file=out)
    doc = inspect.getdoc(rule_class)
    if doc:
        print("", file=out)
        print(doc, file=out)


def write_effect_report(paths, report_path):
    """Write the per-function effect inference for ``paths`` as JSON."""
    sources = []
    for path in iter_python_files(paths):
        try:
            sources.append(SourceFile(_display_path(path),
                                      path.read_text(encoding="utf-8")))
        except (OSError, SyntaxError, UnicodeDecodeError, ValueError):
            continue
    project = ProjectModel(sources)
    document = {"version": 1, "functions": project.effect_report()}
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(document["functions"])


def run_lint(args, out=None, err=None):
    """Execute a parsed lint invocation; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    registry = rules_by_name()
    if args.list_rules:
        for name in sorted(registry):
            print(f"{name}: {registry[name].description}", file=out)
        return 0
    if args.explain:
        rule_class = registry.get(args.explain)
        if rule_class is None:
            print(f"error: unknown rule {args.explain!r} "
                  f"(try --list-rules)", file=err)
            return 2
        explain_rule(rule_class, out)
        return 0

    rules = ALL_RULES
    if args.rules:
        names = [name.strip() for name in args.rules.split(",")
                 if name.strip()]
        unknown = [name for name in names if name not in registry]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)} "
                  f"(try --list-rules)", file=err)
            return 2
        rules = tuple(registry[name] for name in names)

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, BaselineError) as error:
            print(f"error: {error}", file=err)
            return 2

    if args.prune_baseline and not args.baseline:
        print("error: --prune-baseline requires --baseline FILE",
              file=err)
        return 2

    result = lint_paths(args.paths, rules=rules, baseline=baseline,
                        jobs=args.jobs)

    if args.effect_report:
        count = write_effect_report(args.paths, args.effect_report)
        print(f"wrote effect report for {count} function(s) to "
              f"{args.effect_report}", file=out)

    if args.prune_baseline:
        old_total = sum(baseline.values()) if baseline else 0
        write_baseline(args.baseline, result.grandfathered)
        kept = len(result.grandfathered)
        pruned = old_total - kept
        print(f"pruned {pruned} stale baseline entr"
              f"{'y' if pruned == 1 else 'ies'} from {args.baseline} "
              f"({kept} kept)", file=out)
        return 0 if not result.errors else 2

    if args.write_baseline:
        all_findings = result.findings + result.grandfathered
        count = write_baseline(args.write_baseline, all_findings)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {args.write_baseline}",
              file=out)
        return 0 if not result.errors else 2

    if args.format == "json":
        out.write(render_json(result))
    else:
        out.write(render_text(result))
    return result.exit_code


def main(argv=None):
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="prixlint: static invariant checks for the PRIX "
                    "reproduction (I/O accounting, determinism, resource "
                    "safety)")
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
