"""Integer discipline for I/O counters.

Every page-count column in the paper's tables is an exact integer; once a
float sneaks into an :class:`~repro.storage.stats.IOStats` counter, page
deltas stop round-tripping exactly (``0.1 + 0.2`` style drift) and
"pages read" silently becomes an estimate.  This rule refuses float
literals and true division anywhere in an expression assigned into a
counter attribute.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule

#: Attribute names of the IOStats counters (see repro/storage/stats.py).
COUNTER_ATTRS = frozenset({
    "physical_reads", "physical_writes", "logical_reads",
    "evictions", "allocations",
})


class StatsIntDisciplineRule(Rule):
    """Counter attributes may only be assigned exact-integer expressions."""

    name = "stats-int-discipline"
    description = ("no float literals or true division assigned into "
                   "IOStats counter attributes")

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._check_target(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        if self._is_counter(node.target):
            if isinstance(node.op, ast.Div):
                self.report(node, self._message(node.target.attr,
                                                "true division (/=)"))
            self._check_value(node.target.attr, node.value)
        self.generic_visit(node)

    def visit_Call(self, node):
        # The sanctioned mutation path, ``stats.add(physical_reads=1)``,
        # must obey the same discipline as a direct ``+=``.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "add":
            for keyword in node.keywords:
                if keyword.arg in COUNTER_ATTRS:
                    self._check_value(keyword.arg, keyword.value)
        self.generic_visit(node)

    @staticmethod
    def _is_counter(target):
        return (isinstance(target, ast.Attribute)
                and target.attr in COUNTER_ATTRS)

    @staticmethod
    def _message(attr, what):
        return (f"{what} assigned into IOStats counter {attr!r}; page "
                "counters must stay exact integers (use // if you must "
                "divide)")

    def _check_target(self, target, value):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, value)
        elif self._is_counter(target):
            self._check_value(target.attr, value)

    def _check_value(self, attr, value):
        for sub in ast.walk(value):
            if isinstance(sub, ast.Constant) and isinstance(sub.value,
                                                            float):
                self.report(sub, self._message(attr,
                                               f"float literal {sub.value}"))
            elif isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                self.report(sub, self._message(attr,
                                               "true division (/)"))
