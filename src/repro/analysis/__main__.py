"""``python -m repro.analysis`` — run prixlint from the command line."""

import sys

from repro.analysis.runner import main

sys.exit(main())
