"""Runtime sanitizer: dynamic twin of the prixflow static rules.

The static rules in :mod:`repro.analysis.flow` prove pin/flush
discipline per function but stop at escapes (a handle stored on ``self``
or passed to a helper leaves their scope).  The sanitizer covers that
remainder at runtime: with it enabled, the storage layer itself asserts
the protocol at the moments the static rules cannot see.

Checks added while enabled:

- **pin balance at close**: ``BufferPool.close()`` with outstanding pins
  raises :class:`~repro.storage.errors.PinProtocolError` -- a pin that
  survives the pool's lifetime was never released anywhere.
  (``unpin`` at count zero and ``flush_and_clear`` with pins raise
  unconditionally; they are protocol violations, not heuristics.)
- **flush before stats**: ``IOStats.snapshot()`` while a pool on that
  stats object still holds dirty pages raises :class:`SanitizeError`.
  A snapshot taken then would report physical I/O that has not happened
  yet, corrupting the paper's "Disk IO (pages)" columns.
- **WAL write ordering**: ``Pager.write()`` on a pager whose pool has a
  write-ahead log attached asserts the durability protocol on *every*
  data-page write, however it was reached: the page must not be dirty
  and uncommitted (no-steal -- redo-only recovery cannot undo it), and
  its logged image record must already be fsynced
  (``wal.flushed_lsn``, the WAL-before-data invariant).  This catches
  code that writes through the pager directly, bypassing the pool's
  ``_write_back`` where the static rules look.
- **guard trust**: when a checksum guard is attached to the pager,
  ``BufferPool.get()`` asserts the image it hands out is *trusted* --
  stamped, checksum-verified, or WAL-repaired by the
  :class:`~repro.storage.guard.PageGuard` (see ``docs/ROBUSTNESS.md``).
  An untrusted image reaching the matcher means some path smuggled
  bytes around the verification gateway, which would let silent
  corruption into query answers.

Enable programmatically::

    from repro.analysis import sanitizer
    sanitizer.enable()          # idempotent
    ...
    sanitizer.disable()         # restores the original methods

or for a block::

    with sanitizer.sanitized():
        run_benchmark()

or for a whole process: set ``PRIX_SANITIZE=1`` in the environment
before importing :mod:`repro` (the package auto-enables on import; see
``repro/__init__.py``).  The intended use is a CI pytest shard running
the whole suite with the sanitizer on.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager

from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import PinProtocolError
from repro.storage.pager import Pager
from repro.storage.stats import IOStats


class SanitizeError(AssertionError):
    """A runtime protocol violation detected by the sanitizer.

    Subclasses ``AssertionError``: these are programming errors in the
    code under test, not recoverable I/O conditions, and test harnesses
    already treat assertion failures as hard failures.
    """


#: Live pools, so a stats object can find the pools it serves.
_pools = weakref.WeakSet()

#: Original (unwrapped) methods; non-empty exactly while enabled.
_saved = {}


def active():
    """Whether the sanitizer is currently enabled."""
    return bool(_saved)


def enable():
    """Install the runtime checks (idempotent)."""
    if _saved:
        return
    _saved["pool_init"] = BufferPool.__init__
    _saved["pool_close"] = BufferPool.close
    _saved["pool_get"] = BufferPool.get
    _saved["stats_snapshot"] = IOStats.snapshot
    _saved["pager_write"] = Pager.write

    original_init = _saved["pool_init"]
    original_close = _saved["pool_close"]
    original_get = _saved["pool_get"]
    original_snapshot = _saved["stats_snapshot"]
    original_write = _saved["pager_write"]

    def init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        _pools.add(self)

    def close(self):
        if self._pins:
            raise PinProtocolError(
                "sanitizer: BufferPool.close() with outstanding pins on "
                f"pages {sorted(self._pins)}; every pin() needs a "
                "matching unpin() before the pool goes away")
        original_close(self)

    def get(self, page_id):
        frame = original_get(self, page_id)
        guard = self._pager.guard
        if guard is not None and not guard.is_trusted(page_id):
            raise SanitizeError(
                f"sanitizer: BufferPool.get({page_id}) is handing out a "
                "page image the checksum guard never verified; every "
                "image the matcher consumes must be stamped, verified, "
                "or WAL-repaired -- some path smuggled bytes around the "
                "guard.admit() gateway")
        return frame

    def snapshot(self):
        for pool in list(_pools):
            if pool.stats is self and pool._dirty:
                raise SanitizeError(
                    "sanitizer: IOStats.snapshot() while a BufferPool "
                    f"on these stats holds {len(pool._dirty)} dirty "
                    "page(s); flush() first so the snapshot matches "
                    "what is on disk")
        return original_snapshot(self)

    def write(self, page_id, data):
        for pool in list(_pools):
            if pool._pager is not self or pool._wal is None:
                continue
            if page_id in pool._wal_uncommitted:
                raise SanitizeError(
                    f"sanitizer: Pager.write({page_id}) while the page "
                    "is dirty and uncommitted; the no-steal policy "
                    "forbids putting uncommitted changes in the data "
                    "file (redo-only recovery cannot undo them) -- "
                    "commit() the batch first")
            lsn = pool._page_lsn.get(page_id)
            if lsn is not None and lsn >= pool._wal.flushed_lsn:
                raise SanitizeError(
                    f"sanitizer: Pager.write({page_id}) before the "
                    f"page's image record (LSN {lsn}) is durable in the "
                    f"log (flushed_lsn {pool._wal.flushed_lsn}); "
                    "WAL-before-data requires the log fsync to happen "
                    "first -- go through the pool, or sync the log")
        return original_write(self, page_id, data)

    BufferPool.__init__ = init
    BufferPool.close = close
    BufferPool.get = get
    IOStats.snapshot = snapshot
    Pager.write = write


def disable():
    """Remove the runtime checks and restore the original methods."""
    if not _saved:
        return
    BufferPool.__init__ = _saved.pop("pool_init")
    BufferPool.close = _saved.pop("pool_close")
    BufferPool.get = _saved.pop("pool_get")
    IOStats.snapshot = _saved.pop("stats_snapshot")
    Pager.write = _saved.pop("pager_write")
    _saved.clear()


@contextmanager
def sanitized():
    """Enable the sanitizer for a block, restoring the prior state after.

    Nested use is safe: if the sanitizer was already active, leaving the
    block keeps it active.
    """
    was_active = active()
    enable()
    try:
        yield
    finally:
        if not was_active:
            disable()
