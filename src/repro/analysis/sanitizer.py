"""Runtime sanitizer: dynamic twin of the prixflow/prixrace static rules.

The static rules in :mod:`repro.analysis.flow` prove pin/flush and latch
discipline per function but stop at escapes (a handle stored on ``self``
or passed to a helper leaves their scope) and at interleavings (a data
race needs two threads the CFG cannot see).  The sanitizer covers that
remainder at runtime: with it enabled, the storage layer itself asserts
the protocol at the moments the static rules cannot see.

Checks added while enabled:

- **pin balance at close**: ``BufferPool.close()`` with outstanding pins
  raises :class:`~repro.storage.errors.PinProtocolError` -- a pin that
  survives the pool's lifetime was never released anywhere.
  (``unpin`` at count zero and ``flush_and_clear`` with pins raise
  unconditionally; they are protocol violations, not heuristics.)
- **flush before stats**: ``IOStats.snapshot()`` while a pool on that
  stats object still holds dirty pages raises :class:`SanitizeError`.
  A snapshot taken then would report physical I/O that has not happened
  yet, corrupting the paper's "Disk IO (pages)" columns.
- **WAL write ordering**: ``Pager.write()`` on a pager whose pool has a
  write-ahead log attached asserts the durability protocol on *every*
  data-page write, however it was reached: the page must not be dirty
  and uncommitted (no-steal -- redo-only recovery cannot undo it), and
  its logged image record must already be fsynced
  (``wal.flushed_lsn``, the WAL-before-data invariant).  This catches
  code that writes through the pager directly, bypassing the pool's
  ``_write_back`` where the static rules look.
- **guard trust**: when a checksum guard is attached to the pager,
  ``BufferPool.get()`` asserts the image it hands out is *trusted* --
  stamped, checksum-verified, or WAL-repaired by the
  :class:`~repro.storage.guard.PageGuard` (see ``docs/ROBUSTNESS.md``).
- **guarded-field accesses** (dynamic twin of ``guarded-field-access``):
  every field declared ``# prixrace: guarded-by=<latch>`` (the
  machine-readable ``_GUARDED`` maps on BufferPool, Pager and IOStats)
  is shadowed by a data descriptor.  Once an object has been touched by
  two or more distinct threads -- the Eraser refinement, so
  thread-confined use stays silent -- any read or write without the
  declared latch held raises :class:`SanitizeError` at the racy access
  itself, not at the eventual corrupted result.
- **latch acquisition order** (dynamic twin of ``lock-order``): hooks
  installed via :func:`repro.storage.latch.install_hooks` maintain a
  per-thread held-latch stack and a process-wide order graph over latch
  *role names*.  An acquire that would close a cycle in that graph
  raises **before** blocking on the lock, turning a
  some-interleavings-deadlock into a deterministic error with the cycle
  in the message.

State lives in one :class:`_State` object: per-thread data (the
held-latch stacks) in a ``threading.local``, the process-wide aggregates
(live pools, the order graph, the per-object accessor sets) under a
single meta-lock -- a plain ``threading.Lock``, deliberately not a
:class:`~repro.storage.latch.Latch`, so the sanitizer's own bookkeeping
never re-enters its own hooks.  The sanitizer reads the fields it
inspects via :func:`_peek` (straight from ``obj.__dict__``) so its own
checks never trip the guarded-field descriptors.

Enable programmatically::

    from repro.analysis import sanitizer
    sanitizer.enable()          # idempotent
    ...
    sanitizer.disable()         # restores the original methods

or for a block::

    with sanitizer.sanitized():
        run_benchmark()

or for a whole process: set ``PRIX_SANITIZE=1`` in the environment
before importing :mod:`repro` (the package auto-enables on import; see
``repro/__init__.py``).  The intended use is a CI pytest shard running
the whole suite with the sanitizer on, plus the threaded stress job
(``tests/test_threaded_stress.py``).
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager

from repro.storage import latch as latch_module
from repro.storage.buffer_pool import BufferPool
from repro.storage.errors import PinProtocolError
from repro.storage.faults import ChaosBackend
from repro.storage.pager import Pager
from repro.storage.stats import IOStats


class SanitizeError(AssertionError):
    """A runtime protocol violation detected by the sanitizer.

    Subclasses ``AssertionError``: these are programming errors in the
    code under test, not recoverable I/O conditions, and test harnesses
    already treat assertion failures as hard failures.
    """


#: Classes whose ``_GUARDED`` maps get descriptor enforcement.
_GUARDED_CLASSES = (BufferPool, Pager, IOStats, ChaosBackend)

#: Additional ``_GUARDED`` classes registered at import time by layers
#: the sanitizer must not import itself (the serving tier lives *above*
#: the storage stack; importing it from here would invert the layer
#: map).  See :func:`register_guarded_class`.
_extra_guarded = []


def register_guarded_class(cls):
    """Opt a class's ``_GUARDED`` map into guarded-field enforcement.

    Called at import time by modules outside the storage layer (e.g.
    ``repro.serve.registry``'s mount table, ``repro.serve.metrics``'s
    counters) so their latched fields get the same data-race descriptors
    as BufferPool/Pager/IOStats.  Idempotent; if the sanitizer is
    already enabled the descriptors are installed immediately, otherwise
    they arrive with the next :func:`enable`.
    """
    if cls in _GUARDED_CLASSES or cls in _extra_guarded:
        return
    _extra_guarded.append(cls)
    if _saved:
        _install_class_descriptors(cls)

#: Original (unwrapped) methods; non-empty exactly while enabled.
_saved = {}

#: Original class attributes displaced by guarded-field descriptors,
#: keyed ``(cls, field)``; the sentinel marks "no class attribute".
_MISSING = object()
_saved_attrs = {}


class _ThreadLocal(threading.local):
    """Per-thread sanitizer state (fresh per thread, on first use)."""

    def __init__(self):
        self.held = []  # latch role names, in acquisition order


class _State:
    """Process-wide sanitizer state, rebuilt on every :func:`enable`."""

    def __init__(self):
        #: Guards every aggregate below.  A plain lock, not a Latch:
        #: the sanitizer must never re-enter its own latch hooks.
        self.meta = threading.Lock()
        #: Live pools, so a stats object can find the pools it serves.
        self.pools = weakref.WeakSet()
        #: Latch-order edges over role names: name -> set of names
        #: acquired while holding it.
        self.order = {}
        #: id(obj) -> set of (thread name, thread ident) that touched a
        #: guarded field of obj.  id-keyed because IOStats (a dataclass
        #: with eq=True) is unhashable; a weakref.finalize per object
        #: retires the entry when the object is collected.
        self.accessors = {}
        self.tls = _ThreadLocal()


#: The live state while enabled, else None.
_state = None


def _peek(obj, field):
    """Read an instance attribute without waking its descriptor."""
    return obj.__dict__.get(field)


def active():
    """Whether the sanitizer is currently enabled."""
    return bool(_saved)


# ----------------------------------------------------------------------
# Guarded-field descriptors (dynamic guarded-field-access)
# ----------------------------------------------------------------------

def _note_access(state, obj):
    """Record that the current thread touched ``obj``; return the set
    of distinct threads that ever did."""
    key = id(obj)
    me = (threading.current_thread().name, threading.get_ident())
    with state.meta:
        entry = state.accessors.get(key)
        if entry is None:
            entry = set()
            state.accessors[key] = entry
            weakref.finalize(obj, state.accessors.pop, key, None)
        entry.add(me)
        return len(entry)


class _GuardedField:
    """Data descriptor asserting the declared latch on shared objects.

    Values still live in ``obj.__dict__`` (``__set__`` writes there,
    ``__get__`` reads there); as a *data* descriptor this class wins the
    attribute lookup anyway, so every access funnels through the check.
    """

    __slots__ = ("owner", "name", "latch_attr", "original")

    def __init__(self, owner, name, latch_attr, original):
        self.owner = owner
        self.name = name
        self.latch_attr = latch_attr
        self.original = original

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self if self.original is _MISSING else self.original
        try:
            value = obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None
        self._check(obj, "read")
        return value

    def __set__(self, obj, value):
        self._check(obj, "write")
        obj.__dict__[self.name] = value

    def _check(self, obj, what):
        state = _state
        if state is None:
            return
        latch = _peek(obj, self.latch_attr)
        if latch is None:  # mid-__init__: not shared yet
            return
        if _note_access(state, obj) < 2:
            return  # Eraser refinement: thread-confined so far
        if latch.owned():
            return
        raise SanitizeError(
            f"sanitizer: {what} of {self.owner}.{self.name} by thread "
            f"{threading.current_thread().name!r} without holding "
            f"{latch!r} (declared guarded-by={self.latch_attr}) on an "
            "object already shared between threads; this is a data "
            "race -- take the latch")


def _install_class_descriptors(cls):
    for field, latch_attr in cls._GUARDED.items():
        if (cls, field) in _saved_attrs:
            continue
        original = cls.__dict__.get(field, _MISSING)
        _saved_attrs[(cls, field)] = original
        setattr(cls, field,
                _GuardedField(cls.__name__, field, latch_attr, original))


def _install_descriptors():
    for cls in _GUARDED_CLASSES + tuple(_extra_guarded):
        _install_class_descriptors(cls)


def _remove_descriptors():
    for (cls, field), original in _saved_attrs.items():
        if original is _MISSING:
            delattr(cls, field)
        else:
            setattr(cls, field, original)
    _saved_attrs.clear()


# ----------------------------------------------------------------------
# Latch hooks (dynamic lock-order)
# ----------------------------------------------------------------------

def _order_path(graph, start, target):
    """A path ``start -> ... -> target`` in the order graph, or None."""
    stack = [(start, [start])]
    visited = {start}
    while stack:
        node, path = stack.pop()
        for succ in sorted(graph.get(node, ())):
            if succ == target:
                return path + [target]
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, path + [succ]))
    return None


def _on_acquire(latch):
    state = _state
    if state is None:
        return
    held = state.tls.held
    name = latch.name
    if name not in held:  # re-entrant re-acquire adds no ordering fact
        for prior in dict.fromkeys(held):  # distinct, in order
            with state.meta:
                state.order.setdefault(prior, set()).add(name)
                back = _order_path(state.order, name, prior)
            if back is not None:
                cycle = " -> ".join([prior] + back)
                raise SanitizeError(
                    "sanitizer: latch acquisition order cycle "
                    f"{cycle}: thread {threading.current_thread().name!r} "
                    f"is taking {name!r} while holding {prior!r}, but "
                    "the opposite order has also been observed; two "
                    "such threads deadlock -- follow the global order "
                    "in docs/CONCURRENCY.md")
    held.append(name)


def _on_release(latch):
    state = _state
    if state is None:
        return
    held = state.tls.held
    for index in range(len(held) - 1, -1, -1):
        if held[index] == latch.name:
            del held[index]
            return


# ----------------------------------------------------------------------
# Enable / disable
# ----------------------------------------------------------------------

def enable():
    """Install the runtime checks (idempotent)."""
    global _state
    if _saved:
        return
    _state = _State()
    _saved["pool_init"] = BufferPool.__init__
    _saved["pool_close"] = BufferPool.close
    _saved["pool_get"] = BufferPool.get
    _saved["stats_snapshot"] = IOStats.snapshot
    _saved["pager_write"] = Pager.write

    original_init = _saved["pool_init"]
    original_close = _saved["pool_close"]
    original_get = _saved["pool_get"]
    original_snapshot = _saved["stats_snapshot"]
    original_write = _saved["pager_write"]
    state = _state

    def init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        with state.meta:
            state.pools.add(self)

    def close(self):
        if _peek(self, "_pins"):
            pins = sorted(_peek(self, "_pins"))
            raise PinProtocolError(
                "sanitizer: BufferPool.close() with outstanding pins on "
                f"pages {pins}; every pin() needs a matching unpin() "
                "before the pool goes away")
        original_close(self)

    def get(self, page_id):
        frame = original_get(self, page_id)
        guard = self._pager.guard
        if guard is not None and not guard.is_trusted(page_id):
            raise SanitizeError(
                f"sanitizer: BufferPool.get({page_id}) is handing out a "
                "page image the checksum guard never verified; every "
                "image the matcher consumes must be stamped, verified, "
                "or WAL-repaired -- some path smuggled bytes around the "
                "guard.admit() gateway")
        return frame

    def snapshot(self):
        with state.meta:
            pools = list(state.pools)
        for pool in pools:
            if pool.stats is self and _peek(pool, "_dirty"):
                raise SanitizeError(
                    "sanitizer: IOStats.snapshot() while a BufferPool "
                    f"on these stats holds {len(_peek(pool, '_dirty'))} "
                    "dirty page(s); flush() first so the snapshot "
                    "matches what is on disk")
        return original_snapshot(self)

    def write(self, page_id, data):
        with state.meta:
            pools = list(state.pools)
        for pool in pools:
            if pool._pager is not self or pool._wal is None:
                continue
            if page_id in _peek(pool, "_wal_uncommitted"):
                raise SanitizeError(
                    f"sanitizer: Pager.write({page_id}) while the page "
                    "is dirty and uncommitted; the no-steal policy "
                    "forbids putting uncommitted changes in the data "
                    "file (redo-only recovery cannot undo them) -- "
                    "commit() the batch first")
            lsn = _peek(pool, "_page_lsn").get(page_id)
            if lsn is not None and lsn >= pool._wal.flushed_lsn:
                raise SanitizeError(
                    f"sanitizer: Pager.write({page_id}) before the "
                    f"page's image record (LSN {lsn}) is durable in the "
                    f"log (flushed_lsn {pool._wal.flushed_lsn}); "
                    "WAL-before-data requires the log fsync to happen "
                    "first -- go through the pool, or sync the log")
        return original_write(self, page_id, data)

    BufferPool.__init__ = init
    BufferPool.close = close
    BufferPool.get = get
    IOStats.snapshot = snapshot
    Pager.write = write
    _install_descriptors()
    latch_module.install_hooks(_on_acquire, _on_release)


def disable():
    """Remove the runtime checks and restore the original methods."""
    global _state
    if not _saved:
        return
    latch_module.clear_hooks()
    _remove_descriptors()
    BufferPool.__init__ = _saved.pop("pool_init")
    BufferPool.close = _saved.pop("pool_close")
    BufferPool.get = _saved.pop("pool_get")
    IOStats.snapshot = _saved.pop("stats_snapshot")
    Pager.write = _saved.pop("pager_write")
    _saved.clear()
    _state = None


@contextmanager
def sanitized():
    """Enable the sanitizer for a block, restoring the prior state after.

    Nested use is safe: if the sanitizer was already active, leaving the
    block keeps it active.
    """
    was_active = active()
    enable()
    try:
        yield
    finally:
        if not was_active:
            disable()
