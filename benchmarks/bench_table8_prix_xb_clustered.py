"""Table 8: PRIX vs TwigStackXB where solutions are clustered.

Paper values:

    Query  PRIX            TwigStackXB
    Q1     1.48 s / 185p   1.28 s / 201p
    Q5     0.36 s / 49p    0.33 s / 59p
    Q7     0.42 s / 46p    0.47 s / 51p

Shape: when matches cluster in narrow regions, XB skipping works well
and the two systems are comparable -- neither should be an order of
magnitude worse than the other.
"""

from repro.bench.harness import environment
from repro.bench.reporting import render_table

PAPER = {
    "Q1": (1.48, 185, 1.28, 201),
    "Q5": (0.36, 49, 0.33, 59),
    "Q7": (0.42, 46, 0.47, 51),
}


def test_table8_prix_vs_xb_clustered(benchmark):
    results = {}
    for qid in ("Q1", "Q5", "Q7"):
        spec_corpus = {"Q1": "dblp", "Q5": "swissprot",
                       "Q7": "treebank"}[qid]
        env = environment(spec_corpus)
        results[qid] = (env.run_prix(qid), env.run_twigstack_xb(qid))
    benchmark.pedantic(
        lambda: environment("swissprot").run_prix("Q5"),
        rounds=1, iterations=1)

    rows = []
    for qid, (prix, xb) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{prix.elapsed:.4f}s / {prix.pages}p",
            f"{xb.elapsed:.4f}s / {xb.pages}p",
            f"{paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p",
        ])
    render_table(
        "Table 8: PRIX vs TwigStackXB (clustered solutions)",
        ["Query", "PRIX (measured)", "TwigStackXB (measured)",
         "Paper (PRIX vs XB)"],
        rows)

    for qid, (prix, xb) in results.items():
        assert prix.matches == xb.matches, qid
        # "Comparable performance": within an order of magnitude on I/O.
        assert prix.pages <= max(10 * xb.pages, 50), qid
