"""Table 5: SWISSPROT -- PRIX vs ViST.

Paper values:

    Query  PRIX time  PRIX IO    ViST time    ViST IO
    Q4     0.29 s     23 pages   9.52 s       1757 pages
    Q5     0.36 s     49 pages   131.67 s     128150 pages
    Q6     0.75 s     86 pages   39.12 s      6967 pages

Shape: ViST's top-down transformation explodes on common tags (Ref in
Q5, Org in Q6); PRIX's bottom-up, value-first matching stays cheap.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table

PAPER = {
    "Q4": (0.29, 23, 9.52, 1757),
    "Q5": (0.36, 49, 131.67, 128150),
    "Q6": (0.75, 86, 39.12, 6967),
}


def test_table5_swissprot_prix_vs_vist(benchmark):
    env = environment("swissprot")
    results = {qid: (env.run_prix(qid), env.run_vist(qid))
               for qid in ("Q4", "Q5", "Q6")}
    benchmark.pedantic(lambda: env.run_prix("Q4"), rounds=1, iterations=1)

    rows = []
    for qid, (prix, vist) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{prix.elapsed:.4f}s / {prix.pages}p "
            f"({prix.extra['strategy']})",
            f"{vist.elapsed:.4f}s / {vist.pages}p "
            f"(rq={vist.extra['range_queries']})",
            f"time {ratio(vist.elapsed, prix.elapsed)}",
            f"{paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p",
        ])
    render_table(
        "Table 5: SWISSPROT -- PRIX vs ViST",
        ["Query", "PRIX (measured)", "ViST (measured)", "ViST/PRIX",
         "Paper (PRIX vs ViST)"],
        rows)

    # Q4 and Q5 are clear PRIX wins in the paper; require the win.
    for qid in ("Q4", "Q5"):
        prix, vist = results[qid]
        assert prix.elapsed < vist.elapsed, f"{qid}: PRIX should win"
    # Q6 (three branches, wildcard) must stay within a modest factor of
    # ViST; at paper scale it is a 52x PRIX win.
    prix_q6, vist_q6 = results["Q6"]
    assert prix_q6.elapsed < vist_q6.elapsed * 3
