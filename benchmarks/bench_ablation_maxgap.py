"""Ablation A1: the MaxGap optimization (Section 5.4, Theorem 4).

The trie-traversal strategy is forced so the measurements isolate
Algorithm 1's filtering work (the document-at-a-time fallback has its
own pruning, verified equivalent by the test suite).

MaxGap pruning discards trie descendants whose level gap exceeds the
bound for the adjacent query labels' relationship.  The ablation runs
every Table 3 query with pruning on and off and reports the reduction in
trie nodes visited, verifying (a) identical answers and (b) reduced work.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table
from repro.bench.workloads import QUERIES


def test_ablation_maxgap(benchmark):
    rows = []
    total_off = 0
    total_label = 0
    total_node = 0
    for spec in QUERIES:
        env = environment(spec.corpus)
        off = env.run_prix(spec.qid, use_maxgap=False, strategy="trie")
        label = env.run_prix(spec.qid, use_maxgap=True, strategy="trie")
        node = env.prix.query_with_stats(
            env.pattern(spec.qid), strategy="trie",
            maxgap_granularity="node", cold=True)[1]
        assert off.matches == label.matches == node.matches, (
            f"{spec.qid}: Theorem 4 violated -- answers changed")
        total_off += off.extra["nodes_visited"]
        total_label += label.extra["nodes_visited"]
        total_node += node.filter.nodes_visited
        rows.append([
            spec.qid,
            f"{off.extra['nodes_visited']} nodes / {off.elapsed:.4f}s",
            f"{label.extra['nodes_visited']} nodes "
            f"(pruned {label.extra['pruned']})",
            f"{node.filter.nodes_visited} nodes "
            f"(pruned {node.filter.pruned_by_maxgap})",
            ratio(off.extra["nodes_visited"],
                  max(node.filter.nodes_visited, 1)),
        ])
    benchmark.pedantic(
        lambda: environment("treebank").run_prix(
            "Q9", use_maxgap=True, strategy="trie"),
        rounds=1, iterations=1)

    render_table(
        "Ablation A1: MaxGap pruning (off / per-label / per-trie-node)",
        ["Query", "OFF", "per-label (Thm 4)", "per-node (fine, Sec 5.4)",
         "OFF/node"],
        rows)

    assert total_label <= total_off, "pruning must never increase work"
    assert total_node <= total_label, (
        "finer-grained MaxGap must prune at least as hard")
