"""Ablation A6: ordered vs unordered twig matching (Section 5.7).

Unordered (XPath) semantics is answered by running ordered matching once
per distinct branch arrangement; the paper argues this is affordable
because "the number of twig branches in a query is usually small".  This
ablation measures the arrangement counts and the cost multiplier of
unordered over ordered matching for every branching Table 3 query.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table
from repro.bench.workloads import QUERIES
from repro.query.twig import arrangements


def test_ablation_unordered_vs_ordered(benchmark):
    rows = []
    multipliers = []
    for spec in QUERIES:
        env = environment(spec.corpus)
        pattern = env.pattern(spec.qid)
        n_arrangements = sum(1 for _ in arrangements(pattern))

        unordered, unordered_stats = env.prix.query_with_stats(
            pattern, cold=True)
        ordered, ordered_stats = env.prix.query_with_stats(
            pattern, ordered=True, cold=True)

        assert len(ordered) <= len(unordered)
        assert {m.canonical for m in ordered} <= \
            {m.canonical for m in unordered}

        multiplier = (unordered_stats.elapsed_seconds
                      / max(ordered_stats.elapsed_seconds, 1e-9))
        multipliers.append((n_arrangements, multiplier))
        rows.append([
            spec.qid, n_arrangements,
            f"{len(ordered)} / {len(unordered)}",
            f"{ordered_stats.elapsed_seconds * 1000:.2f} ms",
            f"{unordered_stats.elapsed_seconds * 1000:.2f} ms",
            f"{multiplier:.1f}x",
        ])

    benchmark.pedantic(
        lambda: environment("swissprot").prix.query(
            environment("swissprot").pattern("Q6"), ordered=True),
        rounds=1, iterations=1)

    render_table(
        "Ablation A6: ordered vs unordered matching (Section 5.7)",
        ["Query", "Arrangements", "Matches (ordered/unordered)",
         "Ordered", "Unordered", "Unordered/Ordered"],
        rows)

    # Section 5.7's claim: the multiplier stays near the arrangement
    # count, which stays small for real queries.
    assert max(n for n, _ in multipliers) <= 6
    for n_arrangements, multiplier in multipliers:
        assert multiplier <= max(4 * n_arrangements, 6), (
            n_arrangements, multiplier)
