"""Ablation A4: index-size growth -- PRIX linear vs ViST quadratic.

Section 2 / Section 5.2.2: for a unary (skinny) tree with n nodes, ViST's
structure-encoded sequence totals O(n^2) characters (every node carries
its full root path), while PRIX's Prufer sequence is linear in n.  The
sweep doubles n and reports both footprints, plus the real corpora's
sequence volumes.
"""

from repro.baselines.vist import total_sequence_text
from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.prufer.sequence import regular_sequence
from repro.xmlkit.tree import Document, element

SIZES = (25, 50, 100, 200, 400)


def unary_document(n):
    root = element("t")
    node = root
    for _ in range(n - 1):
        node = node.append(element("t"))
    return Document(root, 1)


def prix_text(document):
    seq = regular_sequence(document)
    return sum(len(label) for label in seq.lps)


def test_ablation_space_growth(benchmark):
    rows = []
    prix_sizes = []
    vist_sizes = []
    for n in SIZES:
        doc = unary_document(n)
        prix_size = prix_text(doc)
        vist_size = total_sequence_text(doc)
        prix_sizes.append(prix_size)
        vist_sizes.append(vist_size)
        rows.append([n, prix_size, vist_size,
                     f"{vist_size / prix_size:.1f}x"])
    benchmark.pedantic(lambda: total_sequence_text(unary_document(200)),
                       rounds=3, iterations=1)

    render_table(
        "Ablation A4: sequence text on a unary n-node tree",
        ["n", "PRIX chars (O(n))", "ViST chars (O(n^2))", "ViST/PRIX"],
        rows)

    # PRIX grows linearly: doubling n doubles the size (within slack).
    for smaller, larger in zip(prix_sizes, prix_sizes[1:]):
        assert larger <= 2.3 * smaller
    # ViST grows quadratically: doubling n roughly quadruples the size.
    for smaller, larger in zip(vist_sizes, vist_sizes[1:]):
        assert larger >= 3.3 * smaller

    # Real corpora: PRIX's trie node count is linear in total tree nodes.
    corpus_rows = []
    for name in ("dblp", "swissprot", "treebank"):
        env = environment(name)
        total_nodes = sum(doc.size for doc in env.corpus.documents)
        stats = env.prix.trie_stats("rp")
        corpus_rows.append([name, total_nodes, stats.node_count,
                            stats.total_sequence_length])
        assert stats.node_count <= total_nodes
    render_table(
        "Ablation A4b: PRIX trie size vs corpus nodes (linear bound)",
        ["Corpus", "Tree nodes", "Trie nodes", "Total LPS length"],
        corpus_rows)
