"""Table 4: DBLP -- PRIX vs ViST (total time and page I/O).

Paper values:

    Query  PRIX time  PRIX IO    ViST time   ViST IO
    Q1     1.48 s     185 pages  15.28 s     3543 pages
    Q2     0.05 s     7 pages    0.15 s      15 pages
    Q3     0.07 s     9 pages    22.07 s     2280 pages

Shape to reproduce: PRIX wins clearly on the value queries Q1 and Q3
(ViST's value-laden prefixes destroy trie sharing and its top-down
matching fans out on common tags); Q2 is comparable.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table

PAPER = {
    "Q1": (1.48, 185, 15.28, 3543),
    "Q2": (0.05, 7, 0.15, 15),
    "Q3": (0.07, 9, 22.07, 2280),
}


def test_table4_dblp_prix_vs_vist(benchmark):
    env = environment("dblp")
    results = {qid: (env.run_prix(qid), env.run_vist(qid))
               for qid in ("Q1", "Q2", "Q3")}
    benchmark.pedantic(lambda: env.run_vist("Q1"), rounds=1, iterations=1)

    rows = []
    for qid, (prix, vist) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{prix.elapsed:.4f}s / {prix.pages}p",
            f"{vist.elapsed:.4f}s / {vist.pages}p",
            f"time {ratio(vist.elapsed, prix.elapsed)}, "
            f"pages {ratio(vist.pages, max(prix.pages, 1))}",
            f"{paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p "
            f"({paper[2] / paper[0]:.0f}x time)",
        ])
    render_table(
        "Table 4: DBLP -- PRIX vs ViST",
        ["Query", "PRIX (measured)", "ViST (measured)",
         "ViST/PRIX factors", "Paper (PRIX vs ViST)"],
        rows)

    # The value queries are PRIX wins, as in the paper.
    for qid in ("Q1", "Q3"):
        prix, vist = results[qid]
        assert prix.elapsed < vist.elapsed, f"{qid}: PRIX should win"
        assert prix.pages < vist.pages, f"{qid}: PRIX reads fewer pages"
    # Q2 is at least comparable (within a small factor either way).
    prix_q2, vist_q2 = results["Q2"]
    assert prix_q2.elapsed < max(vist_q2.elapsed * 5, 0.05)
