"""Ablation A3: alpha-prefix pre-allocation in the dynamic labeler.

Section 5.2.1: ViST's dynamic labeling scheme "suffers from scope
underflows for long sequences and large alphabet sizes, which makes it
difficult to implement"; PRIX mitigates this by pre-allocating number
ranges for the in-memory trie of length-alpha LPS prefixes, sized by
sequence frequency and length.

Two measurements:

- *coverage*: how many trie nodes the dynamic scheme labels before its
  first underflow, as alpha grows (pre-allocation pushes the failure
  deeper; the index build recovers by falling back to bulk DFS labels),
- *shallow corpora*: with the paper's 8-byte ranges, DBLP-like corpora
  (short sequences) label completely with no underflow at all.
"""

from repro.bench.reporting import render_table
from repro.datasets import get_corpus
from repro.prufer.sequence import regular_sequence
from repro.trie.labeling import DynamicLabeler
from repro.trie.trie import SequenceTrie

ALPHAS = (0, 2, 4, 8, 16, 32)


def build_trie(corpus_name):
    corpus = get_corpus(corpus_name, "small")
    trie = SequenceTrie()
    for doc in corpus.documents:
        trie.insert(regular_sequence(doc).lps, doc.doc_id)
    return trie


def test_ablation_alpha_coverage(benchmark):
    total_nodes = build_trie("treebank").node_count
    coverage = {}
    for alpha in ALPHAS:
        labeler = DynamicLabeler(max_range=2 ** 63, alpha=alpha,
                                 fanout_guess=16)
        labeler.label(build_trie("treebank"))
        coverage[alpha] = (labeler.labeled_before_underflow,
                           labeler.underflows)

    benchmark.pedantic(
        lambda: DynamicLabeler(max_range=2 ** 63, alpha=4).label(
            build_trie("treebank")),
        rounds=1, iterations=1)

    render_table(
        f"Ablation A3: dynamic labeling coverage vs alpha "
        f"(TREEBANK trie, {total_nodes} nodes, 8-byte root range)",
        ["alpha", "nodes labeled before underflow", "underflows"],
        [[alpha, coverage[alpha][0], coverage[alpha][1]]
         for alpha in ALPHAS])

    # Pre-allocation monotonically (weakly) deepens coverage.
    values = [coverage[alpha][0] for alpha in ALPHAS]
    assert all(a <= b for a, b in zip(values, values[1:])), values
    assert values[-1] > 2 * values[0], (
        "pre-allocation should push the first underflow much deeper")

    # Shallow sequences (DBLP-like) never underflow with 8-byte ranges:
    # the regime the paper's experiments ran in.
    dblp_labeler = DynamicLabeler(max_range=2 ** 63, alpha=4)
    dblp_labeler.label(build_trie("dblp"))
    assert dblp_labeler.underflows == 0
    render_table(
        "Ablation A3b: shallow corpus (DBLP) under the same scheme",
        ["corpus", "underflows"],
        [["dblp (small)", dblp_labeler.underflows]])
