"""Ablation A5: how the PRIX-vs-ViST gap grows with corpus scale.

The paper's factors (10x-1900x) come from 100 MB corpora; ours are
laptop-scale.  This sweep doubles the corpus repeatedly and shows the
elapsed-time factor on a recursive-wildcard query (the paper's strongest
case) growing with scale -- evidence that the muted factors in Tables
4-9 are a scale effect, not a modeling error.
"""

import time

from repro.baselines.vist import VistIndex
from repro.bench.reporting import render_table
from repro.datasets import treebank
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

SIZES = (100, 200, 400, 800)
QUERY = "//S//NP/SYM"


def measure(n_sentences):
    corpus = treebank(n_sentences=n_sentences)
    docs = corpus.documents
    prix = PrixIndex.build(docs)
    vist_pool = BufferPool(Pager.in_memory())
    vist = VistIndex.build(docs, vist_pool)
    pattern = parse_xpath(QUERY)

    _, prix_stats = prix.query_with_stats(pattern, cold=True)
    vist_pool.flush_and_clear()
    started = time.perf_counter()
    vist.query(pattern)
    vist_elapsed = time.perf_counter() - started
    return prix_stats.elapsed_seconds, vist_elapsed


def test_ablation_scale_growth(benchmark):
    rows = []
    factors = []
    for n_sentences in SIZES:
        prix_elapsed, vist_elapsed = measure(n_sentences)
        factor = vist_elapsed / max(prix_elapsed, 1e-9)
        factors.append(factor)
        rows.append([n_sentences, f"{prix_elapsed:.4f}",
                     f"{vist_elapsed:.4f}", f"{factor:.1f}x"])

    benchmark.pedantic(lambda: measure(SIZES[0]), rounds=1, iterations=1)

    render_table(
        f"Ablation A5: PRIX vs ViST elapsed time vs scale ({QUERY})",
        ["sentences", "PRIX (s)", "ViST (s)", "ViST/PRIX"],
        rows)

    # The gap must widen as the corpus grows (allowing noise at the
    # smallest sizes): the largest scale beats the smallest clearly.
    assert factors[-1] > factors[0], (
        f"factor did not grow with scale: {factors}")
    assert factors[-1] > 10, (
        f"at the largest scale PRIX should win by an order of magnitude, "
        f"got {factors[-1]:.1f}x")
