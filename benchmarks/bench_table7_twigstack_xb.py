"""Table 7: DBLP -- TwigStack vs TwigStackXB.

Paper values:

    Query  TwigStack       TwigStackXB
    Q1     20.74 s / 8756p 1.28 s / 201p
    Q2     7.25 s / 2310p  0.49 s / 63p
    Q3     6.17 s / 2271p  0.05 s / 8p

Shape: the XB-trees skip large regions of the sorted input lists, so
TwigStackXB reads far fewer pages and runs faster on every query.  Our
corpora are smaller (streams span fewer pages), so the factor is smaller
but the direction must hold.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table

PAPER = {
    "Q1": (20.74, 8756, 1.28, 201),
    "Q2": (7.25, 2310, 0.49, 63),
    "Q3": (6.17, 2271, 0.05, 8),
}


def test_table7_twigstack_vs_xb(benchmark):
    env = environment("dblp")
    results = {qid: (env.run_twigstack(qid), env.run_twigstack_xb(qid))
               for qid in ("Q1", "Q2", "Q3")}
    benchmark.pedantic(lambda: env.run_twigstack("Q1"),
                       rounds=1, iterations=1)

    rows = []
    for qid, (ts, xb) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{ts.elapsed:.4f}s / {ts.pages}p "
            f"(scanned={ts.extra['scanned']})",
            f"{xb.elapsed:.4f}s / {xb.pages}p "
            f"(scanned={xb.extra['scanned']}, "
            f"skips={xb.extra['coarse_advances']})",
            f"pages {ratio(ts.pages, max(xb.pages, 1))}",
            f"{paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p "
            f"({paper[1] / paper[3]:.0f}x pages)",
        ])
    render_table(
        "Table 7: DBLP -- TwigStack vs TwigStackXB",
        ["Query", "TwigStack (measured)", "TwigStackXB (measured)",
         "TS/XB pages", "Paper"],
        rows)

    for qid, (ts, xb) in results.items():
        assert ts.matches == xb.matches, f"{qid}: result sets must agree"
        # XB never scans more concrete elements than the full scan.
        assert xb.extra["scanned"] <= ts.extra["scanned"], qid
    # At least one query must show genuine page skipping.
    assert any(xb.pages < ts.pages for ts, xb in results.values()), (
        "XB-trees skipped no pages on any DBLP query")
