"""Figure 6: elapsed time for Q1-Q9 across all four systems.

The paper's figure shows, per query, total elapsed time for PRIX, ViST,
TwigStack and TwigStackXB.  Its qualitative shape: ViST is slowest on
value-heavy (Q1, Q3-Q6) and recursive-wildcard (Q7-Q9) queries, often by
orders of magnitude; TwigStackXB improves on TwigStack; PRIX is
competitive everywhere and far ahead of ViST on the hard queries.
"""

from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.bench.workloads import QUERIES


def collect_series():
    series = {}
    for spec in QUERIES:
        env = environment(spec.corpus)
        series[spec.qid] = {
            "PRIX": env.run_prix(spec.qid),
            "ViST": env.run_vist(spec.qid),
            "TwigStack": env.run_twigstack(spec.qid),
            "TwigStackXB": env.run_twigstack_xb(spec.qid),
        }
    return series


def test_figure6_elapsed_time(benchmark):
    series = collect_series()
    benchmark.pedantic(lambda: environment("treebank").run_prix("Q7"),
                       rounds=1, iterations=1)

    rows = []
    for qid, results in series.items():
        rows.append([
            qid,
            f"{results['PRIX'].elapsed:.4f}",
            f"{results['ViST'].elapsed:.4f}",
            f"{results['TwigStack'].elapsed:.4f}",
            f"{results['TwigStackXB'].elapsed:.4f}",
        ])
    render_table(
        "Figure 6: elapsed seconds per query (4 systems)",
        ["Query", "PRIX", "ViST", "TwigStack", "TwigStackXB"],
        rows)

    # Shape: PRIX beats ViST on the recursive/wildcard treebank queries,
    # which is the paper's headline Figure 6 story.
    for qid in ("Q7", "Q8", "Q9"):
        assert series[qid]["PRIX"].elapsed < series[qid]["ViST"].elapsed, (
            f"{qid}: PRIX should out-run ViST on recursive data")
    # PRIX answers every query and never reports a different count than
    # the stack joins.
    for qid, results in series.items():
        assert results["PRIX"].matches == results["TwigStack"].matches \
            == results["TwigStackXB"].matches
