"""Ablation A2: RPIndex vs EPIndex (Section 5.6).

Extended-Prufer sequences put value labels into the subsequence filter,
which prunes hard for selective value queries (Q1, Q3, Q4, Q5); for
value-free queries the shorter Regular-Prufer sequences win.  This is
the trade the paper's query optimizer navigates.
"""

from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.bench.workloads import QUERIES, query_by_id


def test_ablation_rp_vs_ep(benchmark):
    rows = []
    results = {}
    for spec in QUERIES:
        env = environment(spec.corpus)
        rp = env.run_prix(spec.qid, variant="rp", strategy="trie")
        ep = env.run_prix(spec.qid, variant="ep", strategy="trie")
        auto = env.run_prix(spec.qid)
        assert rp.matches == ep.matches == auto.matches, spec.qid
        results[spec.qid] = (rp, ep, auto)
        rows.append([
            spec.qid,
            "values" if spec.has_values else "no values",
            f"{rp.extra['range_queries']} rq / {rp.elapsed:.4f}s",
            f"{ep.extra['range_queries']} rq / {ep.elapsed:.4f}s",
            auto.extra["variant"],
        ])
    benchmark.pedantic(
        lambda: environment("dblp").run_prix("Q3", variant="ep",
                                            strategy="trie"),
        rounds=1, iterations=1)

    render_table(
        "Ablation A2: RPIndex vs EPIndex per query",
        ["Query", "Kind", "RPIndex", "EPIndex", "Optimizer picked"],
        rows)

    # Value queries always go to EPIndex (Section 5.6's rule); for
    # value-free queries the optimizer picks by first-label selectivity,
    # and its choice must never be slower than the alternative by more
    # than measurement noise allows.
    for spec in QUERIES:
        rp, ep, auto = results[spec.qid]
        if query_by_id(spec.qid).has_values:
            assert auto.extra["variant"] == "ep", spec.qid
        else:
            # The first-label frequency estimate is a heuristic; require
            # the chosen plan's I/O to be within a small factor of the
            # better variant's.
            best_pages = min(rp.pages, ep.pages)
            assert auto.pages <= max(best_pages * 4, 40), spec.qid

    # Selective value queries: EP inspects no more trie nodes than RP.
    for qid in ("Q3", "Q4"):
        rp, ep, _ = results[qid]
        assert ep.extra["nodes_visited"] <= rp.extra["nodes_visited"], qid
