"""Table 9: PRIX vs TwigStackXB -- scattered matches & parent/child edges.

Paper values:

    Query  PRIX            TwigStackXB
    Q2     0.05 s / 7p     0.49 s / 63p
    Q6     0.75 s / 86p    3.10 s / 485p
    Q8     0.35 s / 35p    1.93 s / 310p

Shape: scattered matches (Q2, Q6) force TwigStackXB to drill to the
leaves repeatedly; Q8's parent/child edges trigger TwigStack's
sub-optimality (partial path solutions the merge discards), while PRIX's
MaxGap metric kills those candidates during subsequence matching.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table

PAPER = {
    "Q2": (0.05, 7, 0.49, 63),
    "Q6": (0.75, 86, 3.10, 485),
    "Q8": (0.35, 35, 1.93, 310),
}


def test_table9_prix_vs_xb_scattered(benchmark):
    corpus_of = {"Q2": "dblp", "Q6": "swissprot", "Q8": "treebank"}
    results = {}
    for qid, corpus in corpus_of.items():
        env = environment(corpus)
        results[qid] = (env.run_prix(qid), env.run_twigstack_xb(qid))
    benchmark.pedantic(lambda: environment("dblp").run_prix("Q2"),
                       rounds=1, iterations=1)

    rows = []
    for qid, (prix, xb) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{prix.elapsed:.4f}s / {prix.pages}p",
            f"{xb.elapsed:.4f}s / {xb.pages}p "
            f"(drills={xb.extra['drilldowns']})",
            f"paper: {paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p "
            f"({ratio(paper[3], paper[1])} pages)",
        ])
    render_table(
        "Table 9: PRIX vs TwigStackXB (scattered / parent-child)",
        ["Query", "PRIX (measured)", "TwigStackXB (measured)", "Paper"],
        rows)

    for qid, (prix, xb) in results.items():
        assert prix.matches == xb.matches, qid
    # Q2: the paper's headline "several times faster" claim -- PRIX's
    # trie sharing answers it in very few pages.
    prix_q2, xb_q2 = results["Q2"]
    assert prix_q2.pages <= xb_q2.pages * 4
    # Q8 sub-optimality: TwigStackXB pushes elements for partial paths
    # that never merge; PRIX filters them out before refinement.
    prix_q8, _ = results["Q8"]
    assert prix_q8.matches >= 1
