"""Benchmark-suite pytest configuration."""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "src"))


def pytest_sessionstart(session):
    """Truncate the shared results file at the start of a bench run."""
    results = os.path.join(os.path.dirname(__file__), "results.txt")
    try:
        open(results, "w", encoding="utf-8").close()
    except OSError:
        pass
