"""Ablation A7: partitioned parallel indexing (docs/SHARDING.md).

Sweeps shard counts {1, 2, 4, 8} over a dblp corpus 20x the test-tier
scale and, at 4 shards, build-worker counts {1, 2, 4}.  Per shard count
it records build wall-clock, query latency percentiles over the Table 3
dblp queries, summed per-shard physical pages, and the configuration's
peak RSS -- each configuration runs in a forked child so the RSS number
is genuinely per-configuration, not a process-lifetime high-water mark.

The machine-readable bundle lands in ``BENCH_shards.json`` (override
with ``PRIX_BENCH_SHARDS``); the human-readable table goes to the
shared ``results.txt`` like every other ablation.

Two assertions ride along: the canonical answer bytes must be identical
at every shard count (the oracle property at bench scale), and -- only
when the host actually has >= 2 CPUs -- the 4-worker build must beat
the serial build of the same shard count (the parallel-speedup
acceptance gate; a single-CPU host records the sweep but cannot
demonstrate a speedup and says so in the bundle).
"""

import hashlib
import json
import multiprocessing
import os
import resource
import statistics
import tempfile
import time

from repro.bench.reporting import render_table
from repro.bench.workloads import queries_for
from repro.datasets import dblp
from repro.query.xpath import parse_xpath
from repro.shard import ShardedIndex, build_shards

N_RECORDS = 2400            # 20x the 120-record test-tier corpus
SHARD_COUNTS = (1, 2, 4, 8)
WORKER_SWEEP_SHARDS = 4     # the worker ablation runs at this count
WORKER_COUNTS = (1, 2, 4)
QUERY_REPETITIONS = 15
OUTPUT = os.environ.get(
    "PRIX_BENCH_SHARDS",
    os.path.join(os.path.dirname(os.path.dirname(__file__)),
                 "BENCH_shards.json"))


def _percentiles(samples):
    ordered = sorted(samples)
    pick = lambda q: ordered[min(len(ordered) - 1,
                                 int(q * (len(ordered) - 1) + 0.5))]
    return {"p50": statistics.median(ordered),
            "p95": pick(0.95), "p99": pick(0.99)}


def _run_configuration(shards, workers, conn):
    """Child-process body: build, query, report one configuration."""
    docs = dblp(n_records=N_RECORDS).documents
    specs = queries_for("dblp")
    with tempfile.TemporaryDirectory() as tmp:
        target = os.path.join(tmp, "shards")
        started = time.perf_counter()
        build_shards(docs, target, shards=shards, workers=workers)
        build_seconds = time.perf_counter() - started

        index_bytes = sum(
            os.path.getsize(os.path.join(target, name))
            for name in os.listdir(target) if name.endswith(".idx"))

        latencies = []
        physical = 0
        digest = hashlib.sha256()
        with ShardedIndex.open(target) as sharded:
            patterns = [(spec.qid, parse_xpath(spec.xpath))
                        for spec in specs]
            for _ in range(QUERY_REPETITIONS):
                for _, pattern in patterns:
                    begun = time.perf_counter()
                    _, stats = sharded.query_with_stats(pattern)
                    latencies.append(time.perf_counter() - begun)
                    physical += stats.physical_reads
            # Canonical answer bytes, digested across all queries: the
            # parent asserts every shard count agrees.
            for qid, pattern in patterns:
                rows = sorted(
                    (m.doc_id, [list(image) for image in m.images])
                    for m in sharded.query(pattern))
                digest.update(qid.encode())
                digest.update(json.dumps(
                    rows, separators=(",", ":")).encode())

    peak_rss_kib = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    conn.send({
        "shards": shards,
        "workers": workers,
        "build_seconds": build_seconds,
        "index_bytes": index_bytes,
        "query_latency_seconds": _percentiles(latencies),
        "physical_pages": physical,
        "queries_timed": len(latencies),
        "peak_rss_kib": peak_rss_kib,
        "answer_digest": digest.hexdigest(),
    })
    conn.close()


def run_configuration(shards, workers):
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    child = context.Process(target=_run_configuration,
                            args=(shards, workers, child_conn))
    child.start()
    row = parent_conn.recv()
    child.join()
    assert child.exitcode == 0
    return row


def test_ablation_shards(benchmark):
    cpus = os.cpu_count() or 1
    rows = []
    for shards in SHARD_COUNTS:
        rows.append(run_configuration(shards, workers=1))
    for workers in WORKER_COUNTS[1:]:
        rows.append(run_configuration(WORKER_SWEEP_SHARDS, workers))

    benchmark.pedantic(lambda: run_configuration(1, 1),
                       rounds=1, iterations=1)

    serial = next(r for r in rows
                  if r["shards"] == WORKER_SWEEP_SHARDS
                  and r["workers"] == 1)
    speedups = {
        r["workers"]: serial["build_seconds"] / r["build_seconds"]
        for r in rows if r["shards"] == WORKER_SWEEP_SHARDS}

    bundle = {
        "bench": "ablation_shards",
        "corpus": {"name": "dblp", "n_records": N_RECORDS,
                   "scale_vs_test_tier": N_RECORDS / 120},
        "host_cpus": cpus,
        "query_set": [spec.qid for spec in queries_for("dblp")],
        "repetitions": QUERY_REPETITIONS,
        "configurations": rows,
        "build_speedup_vs_serial_at_4_shards": speedups,
        "note": (None if cpus >= 2 else
                 "single-CPU host: the worker sweep records overhead "
                 "only; no parallel speedup is possible here"),
    }
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")

    render_table(
        f"Ablation A7: sharded build/query sweep (dblp x{N_RECORDS})",
        ["shards", "workers", "build (s)", "p50 (ms)", "p95 (ms)",
         "pages", "peak RSS (MiB)"],
        [[r["shards"], r["workers"], f"{r['build_seconds']:.2f}",
          f"{r['query_latency_seconds']['p50'] * 1e3:.1f}",
          f"{r['query_latency_seconds']['p95'] * 1e3:.1f}",
          r["physical_pages"],
          f"{r['peak_rss_kib'] / 1024:.0f}"] for r in rows])

    digests = {r["answer_digest"] for r in rows}
    assert len(digests) == 1, (
        "sharded answers diverge across configurations")

    if cpus >= 2:
        assert speedups[4] > 1.0, (
            f"4-worker build should beat serial on a {cpus}-CPU host, "
            f"got {speedups[4]:.2f}x")
