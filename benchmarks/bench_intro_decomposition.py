"""The introduction's motivation: holistic vs decomposed twig matching.

PRIX's opening argument (Sections 1-2): approaches that break a twig
into binary ancestor-descendant joins, or into root-to-leaf paths merged
afterwards, can produce intermediate results far exceeding the final
answer -- "the cost of post-processing may not always be trivial".  This
benchmark quantifies that on the SWISSPROT corpus, whose Piroplasmida
near-misses were planted precisely to create discardable partial
matches: binary structural joins vs TwigStack's path solutions vs PRIX.
"""

import time

from repro.baselines.structjoin import binary_twig_join
from repro.baselines.twigstack import twig_stack
from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.bench.workloads import query_by_id

QUERIES = ("Q5", "Q6")


def test_intro_decomposition_overhead(benchmark):
    env = environment("swissprot")
    rows = []
    measured = {}
    for qid in QUERIES:
        pattern = env.pattern(qid)

        prix = env.run_prix(qid)

        env._stream_pool.flush_and_clear()
        started = time.perf_counter()
        ts_matches, ts_stats = twig_stack(pattern, env.streams)
        ts_elapsed = time.perf_counter() - started

        env._stream_pool.flush_and_clear()
        started = time.perf_counter()
        bj_matches, bj_stats = binary_twig_join(pattern, env.streams)
        bj_elapsed = time.perf_counter() - started

        assert ts_matches == bj_matches
        assert prix.matches <= len(bj_matches)
        measured[qid] = (prix, ts_stats, bj_stats, len(bj_matches))
        rows.append([
            qid, len(bj_matches),
            f"{prix.elapsed:.4f}s",
            f"{ts_elapsed:.4f}s ({ts_stats.path_solutions} path sols)",
            f"{bj_elapsed:.4f}s ({bj_stats.pairs_produced} edge pairs, "
            f"{bj_stats.path_tuples} path tuples)",
        ])

    benchmark.pedantic(
        lambda: binary_twig_join(env.pattern("Q5"), env.streams),
        rounds=1, iterations=1)

    render_table(
        "Intro motivation: holistic vs decomposed twig matching "
        "(SWISSPROT)",
        ["Query", "Final matches", "PRIX (holistic)",
         "TwigStack (holistic paths)", "Binary joins (decomposed)"],
        rows)

    # The decomposition's intermediate pair lists dwarf the answers.
    for qid in QUERIES:
        _, _, bj_stats, final = measured[qid]
        assert bj_stats.pairs_produced > 10 * max(final, 1), (
            f"{qid}: expected intermediate blow-up, got "
            f"{bj_stats.pairs_produced} pairs for {final} matches")
