"""Supplemental: index construction cost and size, all four systems.

Not a paper table.  What it shows at these (shallow, laptop-scale)
corpora: PRIX's footprint is linear in tree nodes and covers *two*
sequence variants plus per-document records and insertion-scope state;
ViST's single trie is smaller here because shallow documents keep its
prefixes short -- the quadratic regime the paper criticizes only bites
with depth (measured directly in bench_ablation_space.py).  The stream
stores pay per-tag page padding: every distinct value string owns a
stream, so small pages multiply.
"""

import time

from repro.baselines.region import StreamSet, build_stream_entries
from repro.baselines.twigstackxb import XBForest
from repro.baselines.vist import VistIndex
from repro.bench.harness import BENCH_PAGE_SIZE, DEFAULT_SCALE
from repro.bench.reporting import render_table
from repro.datasets import get_corpus
from repro.prix.index import IndexOptions, PrixIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def build_all(corpus_name):
    corpus = get_corpus(corpus_name, DEFAULT_SCALE)
    docs = corpus.documents
    total_nodes = sum(doc.size for doc in docs)
    results = {}

    started = time.perf_counter()
    prix = PrixIndex.build(docs, IndexOptions(page_size=BENCH_PAGE_SIZE))
    results["PRIX (rp+ep)"] = (time.perf_counter() - started,
                               prix._pool.num_pages)

    pool = BufferPool(Pager.in_memory(page_size=BENCH_PAGE_SIZE))
    started = time.perf_counter()
    VistIndex.build(docs, pool)
    results["ViST"] = (time.perf_counter() - started,
                       pool._pager.num_pages)

    pool = BufferPool(Pager.in_memory(page_size=BENCH_PAGE_SIZE))
    started = time.perf_counter()
    StreamSet.build(docs, pool)
    results["Streams (TwigStack)"] = (time.perf_counter() - started,
                                      pool._pager.num_pages)

    pool = BufferPool(Pager.in_memory(page_size=BENCH_PAGE_SIZE))
    started = time.perf_counter()
    XBForest.build(build_stream_entries(docs), pool)
    results["XB-trees"] = (time.perf_counter() - started,
                           pool._pager.num_pages)
    return total_nodes, results


def test_build_costs(benchmark):
    rows = []
    prix_pages = {}
    vist_pages = {}
    for corpus_name in ("dblp", "swissprot", "treebank"):
        total_nodes, results = build_all(corpus_name)
        for system, (elapsed, pages) in results.items():
            rows.append([corpus_name, system, total_nodes,
                         f"{elapsed:.2f} s", pages,
                         f"{pages * BENCH_PAGE_SIZE / 1024:.0f} KiB"])
        prix_pages[corpus_name] = results["PRIX (rp+ep)"][1]
        vist_pages[corpus_name] = results["ViST"][1]

    benchmark.pedantic(lambda: build_all("dblp"), rounds=1, iterations=1)

    render_table(
        f"Index construction (scale={DEFAULT_SCALE}, "
        f"{BENCH_PAGE_SIZE}B pages)",
        ["Corpus", "System", "Tree nodes", "Build time", "Pages", "Size"],
        rows)

    # PRIX's two variants + records stay within a small constant of the
    # single-trie ViST build at every corpus (linear-vs-linear at these
    # depths; the quadratic separation is measured in A4).
    for corpus_name in prix_pages:
        assert prix_pages[corpus_name] <= 6 * vist_pages[corpus_name]
