"""Figure 1(b): ViST's false alarm, and PRIX's refinement rejecting it.

The query twig B[./C][./D] occurs in Doc1 only; Doc2 splits the C and D
under two different B elements.  ViST's structure-encoded subsequence
matching cannot tell the two apart and reports both documents; PRIX's
refinement-by-connectedness (Theorem 2) rejects Doc2.

Beyond the two-document example, a scaled corpus of such traps measures
the false-alarm *rate* each system produces.
"""

from repro.baselines.vist import VistIndex
from repro.bench.reporting import render_table
from repro.datasets import figure1_documents, figure1_query
from repro.prix.index import PrixIndex
from repro.query.xpath import parse_xpath
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.xmlkit.parser import parse_document


def build_trap_corpus(n_docs=200):
    """Half true matches, half Figure 1(b)-style traps."""
    docs = []
    for index in range(n_docs):
        if index % 2 == 0:
            text = "<A><B><C/><D/></B><E/></A>"          # true match
        else:
            text = "<A><B><C/></B><B><D/></B><E/></A>"   # trap
        docs.append(parse_document(text, index + 1))
    return docs


def test_fig1b_false_alarm(benchmark):
    doc1, doc2 = figure1_documents()
    query = figure1_query()

    prix = PrixIndex.build([doc1, doc2])
    vist_pool = BufferPool(Pager.in_memory())
    vist = VistIndex.build([doc1, doc2], vist_pool)

    prix_docs = {m.doc_id for m in prix.query(query)}
    vist_docs, _ = vist.query(query)
    benchmark.pedantic(lambda: prix.query(query), rounds=3, iterations=1)

    # Scaled trap corpus: measure false-alarm rates.
    trap_docs = build_trap_corpus()
    true_docs = {d.doc_id for d in trap_docs if d.doc_id % 2 == 1}
    prix_large = PrixIndex.build(trap_docs)
    vist_large_pool = BufferPool(Pager.in_memory())
    vist_large = VistIndex.build(trap_docs, vist_large_pool)
    pattern = parse_xpath("//B[./C][./D]")
    prix_found = {m.doc_id for m in prix_large.query(pattern)}
    vist_found, _ = vist_large.query(pattern)

    render_table(
        "Figure 1(b): false alarms (query //B[./C][./D])",
        ["System", "Fig1 docs reported", "Trap corpus: reported",
         "true", "false alarms"],
        [["PRIX", sorted(prix_docs), len(prix_found), len(true_docs),
          len(prix_found - true_docs)],
         ["ViST", sorted(vist_docs), len(vist_found), len(true_docs),
          len(vist_found - true_docs)]])

    assert prix_docs == {1}, "PRIX must not report the false alarm"
    assert vist_docs == {1, 2}, "ViST reports Doc2: the false alarm"
    assert prix_found == true_docs, "PRIX: exactly the true documents"
    assert vist_found > true_docs, "ViST: false alarms on every trap"
    assert len(vist_found - true_docs) == len(trap_docs) // 2
    prix.close()
    prix_large.close()
