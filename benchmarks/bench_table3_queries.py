"""Table 3: the XPath queries and their twig-match counts.

Paper counts (full snapshots): Q1=6, Q2=21, Q3=1, Q4=3, Q5=5, Q6=158,
Q7=9, Q8=1, Q9=6.  Our generators plant Q1/Q3/Q4/Q5 at the paper's exact
counts; the remaining counts scale with corpus size.  The PRIX engine's
counts are verified against the exhaustive oracle in the test suite
(tests/test_table3_counts.py); here we regenerate the table.
"""

from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.bench.workloads import QUERIES

PAPER_COUNTS = {"Q1": 6, "Q2": 21, "Q3": 1, "Q4": 3, "Q5": 5,
                "Q6": 158, "Q7": 9, "Q8": 1, "Q9": 6}


def test_table3_match_counts(benchmark):
    rows = []
    measured = {}
    for spec in QUERIES:
        env = environment(spec.corpus)
        result = env.run_prix(spec.qid)
        measured[spec.qid] = result.matches
        rows.append([spec.qid, spec.xpath, spec.corpus,
                     result.matches, PAPER_COUNTS[spec.qid]])

    benchmark.pedantic(lambda: environment("dblp").run_prix("Q1"),
                       rounds=1, iterations=1)

    render_table(
        "Table 3: XPath queries and twig match counts",
        ["Query", "XPath", "Dataset", "Matches (measured)",
         "Matches (paper)"],
        rows)

    # Exact-plant queries reproduce the paper's counts verbatim.
    assert measured["Q1"] == 6
    assert measured["Q3"] == 1
    assert measured["Q4"] == 3
    assert measured["Q5"] == 5
    # Every query has at least one match.
    assert all(count >= 1 for count in measured.values())
