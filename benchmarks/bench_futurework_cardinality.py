"""Future work (Section 7): query time vs result-set cardinality.

The paper closes with "as part of future work, we would like to explore
the behavior of the PRIX system for different query characteristics such
as the cardinality of result sets".  This benchmark does exactly that:
it samples ~120 twig queries from the DBLP-like corpus's own structure
(so cardinalities spread from 1 to thousands), buckets them by result
count, and reports mean elapsed time per bucket for PRIX and TwigStack.

Expected shape: both systems' cost grows with output size (TwigStack is
provably linear in input+output); PRIX's per-match overhead stays in the
same order, i.e. no cardinality regime where PRIX collapses.
"""

import random

from repro.baselines.region import StreamSet
from repro.baselines.twigstack import twig_stack
from repro.bench.generator import sample_twig
from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

BUCKETS = ((1, 3), (4, 15), (16, 63), (64, 255), (256, 1 << 30))
N_QUERIES = 120


def bucket_of(count):
    for low, high in BUCKETS:
        if low <= count <= high:
            return (low, high)
    return None


def test_futurework_cardinality(benchmark):
    env = environment("dblp")
    documents = env.corpus.documents
    rng = random.Random(20040301)

    stream_pool = BufferPool(Pager.in_memory(page_size=env.page_size))
    streams = StreamSet.build(documents, stream_pool)

    samples = {pair: [] for pair in BUCKETS}
    generated = 0
    while generated < N_QUERIES:
        pattern = sample_twig(documents, rng)
        try:
            matches, stats = env.prix.query_with_stats(pattern, cold=True)
        except NotImplementedError:
            continue
        generated += 1
        pair = bucket_of(len(matches))
        if pair is None:
            continue
        ts_matches, _ = twig_stack(pattern, streams)
        samples[pair].append((len(matches), stats.elapsed_seconds,
                              len(ts_matches)))

    benchmark.pedantic(
        lambda: env.prix.query(sample_twig(documents,
                                           random.Random(1))),
        rounds=1, iterations=1)

    rows = []
    per_match = []
    for pair in BUCKETS:
        bucket = samples[pair]
        if not bucket:
            rows.append([f"{pair[0]}-{pair[1]}", 0, "-", "-"])
            continue
        mean_count = sum(c for c, _, _ in bucket) / len(bucket)
        mean_time = sum(t for _, t, _ in bucket) / len(bucket)
        rows.append([
            f"{pair[0]}-{pair[1]}", len(bucket),
            f"{mean_count:.0f}", f"{mean_time * 1000:.2f} ms"])
        per_match.append(mean_time / max(mean_count, 1))

    render_table(
        "Future work: PRIX elapsed time vs result cardinality "
        f"({N_QUERIES} sampled DBLP twigs)",
        ["cardinality", "queries", "mean matches", "mean elapsed"],
        rows)

    # Sanity: every PRIX occurrence is an XPath occurrence, so the
    # TwigStack count (XPath semantics: branches may nest or share
    # nodes) bounds PRIX's from above on every sampled query.
    for bucket in samples.values():
        for count, _, ts_count in bucket:
            assert ts_count >= count

    # No cardinality collapse: time per match in the largest populated
    # bucket is not orders of magnitude above the smallest's.
    populated = [value for value in per_match if value > 0]
    if len(populated) >= 2:
        assert populated[-1] <= populated[0] * 50
