"""Table 6: TREEBANK -- PRIX vs ViST (wildcards over recursive tags).

Paper values:

    Query  PRIX time  PRIX IO    ViST time    ViST IO
    Q7     0.42 s     46 pages   198.40 s     40827 pages
    Q8     0.35 s     35 pages   672.20 s     94505 pages
    Q9     0.50 s     55 pages   767.24 s     121928 pages

Shape: '//' steps over deeply recursive tags make ViST match every
(symbol, prefix) key of the symbol (515 keys for Q7, 46355 for Q8 in the
paper), while PRIX's wildcard handling adds no filtering overhead.
"""

from repro.bench.harness import environment
from repro.bench.reporting import ratio, render_table

PAPER = {
    "Q7": (0.42, 46, 198.40, 40827),
    "Q8": (0.35, 35, 672.20, 94505),
    "Q9": (0.50, 55, 767.24, 121928),
}


def test_table6_treebank_prix_vs_vist(benchmark):
    env = environment("treebank")
    results = {qid: (env.run_prix(qid), env.run_vist(qid))
               for qid in ("Q7", "Q8", "Q9")}
    benchmark.pedantic(lambda: env.run_prix("Q7"), rounds=1, iterations=1)

    rows = []
    for qid, (prix, vist) in results.items():
        paper = PAPER[qid]
        rows.append([
            qid,
            f"{prix.elapsed:.4f}s / {prix.pages}p "
            f"({prix.extra['strategy']})",
            f"{vist.elapsed:.4f}s / {vist.pages}p "
            f"(rq={vist.extra['range_queries']}, "
            f"keys={vist.extra['keys_scanned']})",
            f"time {ratio(vist.elapsed, prix.elapsed)}, "
            f"pages {ratio(vist.pages, max(prix.pages, 1))}",
            f"{paper[0]}s/{paper[1]}p vs {paper[2]}s/{paper[3]}p "
            f"({paper[2] / paper[0]:.0f}x time)",
        ])
    render_table(
        "Table 6: TREEBANK -- PRIX vs ViST",
        ["Query", "PRIX (measured)", "ViST (measured)",
         "ViST/PRIX factors", "Paper (PRIX vs ViST)"],
        rows)

    # The paper's strongest result: PRIX wins all three, and ViST's
    # range-query count explodes relative to PRIX's.
    for qid, (prix, vist) in results.items():
        assert prix.elapsed < vist.elapsed, f"{qid}: PRIX should win"
        assert prix.pages * 2 < vist.pages, f"{qid}: page I/O gap"
