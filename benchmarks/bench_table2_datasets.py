"""Table 2: dataset statistics.

Paper values (full UW snapshots):

    Dataset    Size(MB)  Elements  Attributes  Max-depth  Sequences
    DBLP       134       3332130   404276      6          328858
    SWISSPROT  115       2977031   2189859     5          50000
    TREEBANK   86        2437666   1           36         56385

Our corpora are laptop-scale but preserve the structural signature:
DBLP-like has the most sequences and is shallow; SWISSPROT-like is
attribute-heavy and shallow; TREEBANK-like is by far the deepest and has
no attributes.
"""

from repro.bench.harness import environment
from repro.bench.reporting import render_table
from repro.datasets import corpus_stats

PAPER_ROWS = {
    "dblp": ("134 MB", 3332130, 404276, 6, 328858),
    "swissprot": ("115 MB", 2977031, 2189859, 5, 50000),
    "treebank": ("86 MB", 2437666, 1, 36, 56385),
}


def test_table2_dataset_stats(benchmark):
    stats = {}
    for name in ("dblp", "swissprot", "treebank"):
        corpus = environment(name).corpus
        stats[name] = corpus_stats(corpus)

    benchmark.pedantic(
        lambda: corpus_stats(environment("dblp").corpus),
        rounds=1, iterations=1)

    rows = []
    for name, measured in stats.items():
        paper = PAPER_ROWS[name]
        rows.append([
            name,
            f"{measured.size_mbytes:.2f} MB (paper {paper[0]})",
            f"{measured.n_elements} (paper {paper[1]})",
            f"{measured.n_attributes} (paper {paper[2]})",
            f"{measured.max_depth} (paper {paper[3]})",
            f"{measured.n_sequences} (paper {paper[4]})",
        ])
    render_table(
        "Table 2: datasets (measured vs paper)",
        ["Dataset", "Size", "Elements", "Attributes", "Max-depth",
         "Sequences"],
        rows)

    # Shape assertions mirroring the paper's signature.
    assert stats["treebank"].max_depth > stats["dblp"].max_depth
    assert stats["treebank"].max_depth > stats["swissprot"].max_depth
    assert stats["treebank"].n_attributes == 0
    assert stats["swissprot"].n_attributes > stats["dblp"].n_attributes
    assert stats["dblp"].n_sequences >= stats["swissprot"].n_sequences
