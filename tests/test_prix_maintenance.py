"""Deletion, record splitting and EXPLAIN tests."""

import pytest

from repro.prix.explain import explain
from repro.prix.index import IndexOptions, PrixIndex
from repro.query.xpath import parse_xpath
from repro.xmlkit.parser import parse_document, split_documents


def docs_from(texts):
    return [parse_document(text, doc_id=i + 1)
            for i, text in enumerate(texts)]


class TestDeleteDocument:
    def test_deleted_document_vanishes_from_results(self):
        index = PrixIndex.build(docs_from(
            ["<a><b/></a>", "<a><b/></a>", "<a><c/></a>"]))
        index.delete_document(2)
        docs = {m.doc_id for m in index.query("//a/b")}
        assert docs == {1}
        assert index.doc_count == 2

    def test_delete_then_rebuild_compacts(self):
        index = PrixIndex.build(docs_from(
            ["<a><b/></a>", "<x><y/></x>"]))
        index.delete_document(2)
        fresh = index.rebuilt()
        assert fresh.doc_count == 1
        assert fresh.query("//x/y") == []
        assert len(fresh.query("//a/b")) == 1

    def test_delete_unknown_raises(self):
        index = PrixIndex.build(docs_from(["<a><b/></a>"]))
        with pytest.raises(KeyError):
            index.delete_document(9)

    def test_shared_trie_path_other_docs_unaffected(self):
        index = PrixIndex.build(docs_from(
            ["<a><b/></a>"] * 5))
        index.delete_document(3)
        assert {m.doc_id for m in index.query("//a/b")} == {1, 2, 4, 5}

    def test_delete_then_insert_same_id(self):
        options = IndexOptions(labeler="dynamic")
        index = PrixIndex.build(docs_from(["<a><b/></a>"]), options)
        index.delete_document(1)
        index.insert_document(parse_document("<a><c/></a>", 1))
        assert index.query("//a/b") == []
        assert len(index.query("//a/c")) == 1

    def test_maxgap_remains_sound_after_delete(self):
        index = PrixIndex.build(docs_from(
            ["<a><b/><b/><b/></a>", "<a><b/></a>"]))
        index.delete_document(1)  # the wide-gap document
        with_pruning = {m.canonical
                        for m in index.query("//a/b", use_maxgap=True)}
        without = {m.canonical
                   for m in index.query("//a/b", use_maxgap=False)}
        assert with_pruning == without


class TestSplitDocuments:
    CORPUS = ("<dblp>text-noise"
              "<article><title>A</title></article>"
              "<inproceedings><title>B</title></inproceedings>"
              "<www><url>u</url></www>"
              "</dblp>")

    def test_splits_all_element_children(self):
        documents = split_documents(self.CORPUS)
        assert [d.root.tag for d in documents] == [
            "article", "inproceedings", "www"]
        assert [d.doc_id for d in documents] == [1, 2, 3]

    def test_record_tag_filter(self):
        documents = split_documents(self.CORPUS,
                                    record_tags={"article", "www"})
        assert [d.root.tag for d in documents] == ["article", "www"]

    def test_start_id(self):
        documents = split_documents(self.CORPUS, start_id=10)
        assert [d.doc_id for d in documents] == [10, 11, 12]

    def test_records_are_detached(self):
        documents = split_documents(self.CORPUS)
        for document in documents:
            assert document.root.parent is None
            assert document.root.postorder == document.size

    def test_split_then_index(self):
        documents = split_documents(self.CORPUS)
        index = PrixIndex.build(documents)
        assert len(index.query('//article[./title="A"]')) == 1


class TestExplain:
    @pytest.fixture()
    def index(self):
        return PrixIndex.build(docs_from(
            ["<a><b>x</b><c/></a>", "<a><b>y</b></a>"]))

    def test_value_query_explanation(self, index):
        text = explain(index, '//a[./b="x"]')
        assert "variant: ep" in text
        assert "value predicates" in text
        assert 'LPS(Q)' in text and '"x"' in text

    def test_value_free_explanation(self, index):
        text = explain(index, "//a[./b]/c")
        assert "first-label trie-node frequencies" in text
        assert "arrangements: 2" in text
        assert "maxgap pairs" in text

    def test_strategy_reported(self, index):
        text = explain(index, "//a/c")
        assert "strategy:" in text

    def test_accepts_pattern_object(self, index):
        text = explain(index, parse_xpath("//a//b"))
        assert "//" in text
