"""Twig model tests: collapse, edge specs, arrangements, signatures."""

import pytest

from repro.query.twig import (Axis, EdgeSpec, TwigNode, TwigPattern,
                              arrangements, collapse, node_signatures)
from repro.query.xpath import parse_xpath


class TestEdgeSpec:
    def test_plain_child(self):
        spec = EdgeSpec()
        assert spec.is_plain_child
        assert spec.admits(1)
        assert not spec.admits(2)

    def test_descendant(self):
        spec = EdgeSpec(min_steps=1, max_steps=None)
        assert spec.admits(1) and spec.admits(99)
        assert not spec.admits(0)

    def test_exact_two_steps(self):
        spec = EdgeSpec(min_steps=2, max_steps=2)
        assert spec.admits(2)
        assert not spec.admits(1) and not spec.admits(3)


class TestCollapse:
    def test_plain_twig_specs(self):
        collapsed = collapse(parse_xpath("//a/b/c"))
        doc = collapsed.document
        assert [n.tag for n in doc.nodes_in_postorder()] == ["c", "b", "a"]
        for node in doc.nodes_in_postorder():
            if node.parent is not None:
                assert collapsed.spec_of(node).is_plain_child
        assert collapsed.is_plain()

    def test_descendant_spec(self):
        collapsed = collapse(parse_xpath("//a//b"))
        b_node = collapsed.document.node_by_postorder(1)
        spec = collapsed.spec_of(b_node)
        assert spec.min_steps == 1 and spec.max_steps is None
        assert not collapsed.is_plain()

    def test_middle_star_folds_into_spec(self):
        collapsed = collapse(parse_xpath("//a/*/b"))
        assert collapsed.document.size == 2  # star removed
        b_node = collapsed.document.node_by_postorder(1)
        assert collapsed.spec_of(b_node) == EdgeSpec(min_steps=2,
                                                     max_steps=2)

    def test_star_then_descendant(self):
        collapsed = collapse(parse_xpath("//a/*//b"))
        b_node = collapsed.document.node_by_postorder(1)
        spec = collapsed.spec_of(b_node)
        assert spec.min_steps == 2 and spec.max_steps is None

    def test_trailing_star_kept_anonymous(self):
        collapsed = collapse(parse_xpath("//a/*"))
        star = collapsed.document.node_by_postorder(1)
        assert star.tag == "*"
        assert collapsed.source_of(star).is_star

    def test_value_nodes_preserved(self):
        collapsed = collapse(parse_xpath('//a[./b="x"]'))
        value_node = collapsed.document.node_by_postorder(1)
        assert value_node.is_value and value_node.tag == "x"

    def test_sources_map_to_pattern_nodes(self):
        pattern = parse_xpath("//a[./b]/c")
        collapsed = collapse(pattern)
        sources = {collapsed.source_of(n)
                   for n in collapsed.document.nodes_in_postorder()}
        assert sources == set(pattern.nodes())

    def test_copy_preserves_metadata(self):
        collapsed = collapse(parse_xpath("//a//b[./c]"))
        clone = collapsed.copy()
        for original, cloned in zip(
                collapsed.document.nodes_in_postorder(),
                clone.document.nodes_in_postorder()):
            assert original.tag == cloned.tag
            assert collapsed.spec_of(original) == clone.spec_of(cloned)
            assert collapsed.source_of(original) is clone.source_of(cloned)


class TestArrangements:
    def test_path_has_one_arrangement(self):
        assert len(list(arrangements(parse_xpath("//a/b/c")))) == 1

    def test_two_distinct_branches(self):
        pattern = parse_xpath("//a[./b]/c")
        arrangement_list = list(arrangements(pattern))
        assert len(arrangement_list) == 2
        orders = {tuple(n.tag
                        for n in arr.document.nodes_in_postorder())
                  for arr in arrangement_list}
        assert orders == {("b", "c", "a"), ("c", "b", "a")}

    def test_identical_branches_deduplicated(self):
        pattern = parse_xpath("//a[./b][./b]")
        assert len(list(arrangements(pattern))) == 1

    def test_three_branches(self):
        pattern = parse_xpath("//a[./b][./c]/d")
        assert len(list(arrangements(pattern))) == 6

    def test_pattern_restored_after_iteration(self):
        pattern = parse_xpath("//a[./b]/c")
        before = [n.label for n in pattern.nodes()]
        list(arrangements(pattern))
        assert [n.label for n in pattern.nodes()] == before

    def test_nested_branches_multiply(self):
        pattern = parse_xpath("//a[./b[./x][./y]][./c]")
        assert len(list(arrangements(pattern))) == 4


class TestNodeSignatures:
    def test_identical_siblings_share_signature(self):
        pattern = parse_xpath("//a[./b][./b]")
        signatures = node_signatures(pattern)
        b_nodes = [n for n in pattern.nodes() if n.label == "b"]
        assert signatures[id(b_nodes[0])] == signatures[id(b_nodes[1])]

    def test_different_labels_differ(self):
        pattern = parse_xpath("//a[./b]/c")
        signatures = node_signatures(pattern)
        b_node = next(n for n in pattern.nodes() if n.label == "b")
        c_node = next(n for n in pattern.nodes() if n.label == "c")
        assert signatures[id(b_node)] != signatures[id(c_node)]

    def test_same_label_different_context_differ(self):
        pattern = parse_xpath("//a[./c][./b/c]")
        signatures = node_signatures(pattern)
        c_nodes = [n for n in pattern.nodes() if n.label == "c"]
        assert signatures[id(c_nodes[0])] != signatures[id(c_nodes[1])]

    def test_same_label_different_subtrees_differ(self):
        pattern = parse_xpath("//a[./b/x][./b/y]")
        signatures = node_signatures(pattern)
        b_nodes = [n for n in pattern.nodes() if n.label == "b"]
        assert signatures[id(b_nodes[0])] != signatures[id(b_nodes[1])]

    def test_axis_matters(self):
        pattern = parse_xpath("//a[./b][.//b]")
        signatures = node_signatures(pattern)
        b_nodes = [n for n in pattern.nodes() if n.label == "b"]
        assert signatures[id(b_nodes[0])] != signatures[id(b_nodes[1])]


class TestTwigPattern:
    def test_star_root_rejected(self):
        with pytest.raises(ValueError):
            TwigPattern(TwigNode("*"))

    def test_named_nodes_excludes_stars(self):
        pattern = parse_xpath("//a/*")
        assert [n.label for n in pattern.named_nodes()] == ["a"]
