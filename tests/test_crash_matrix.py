"""The crash matrix: kill the engine at every injected IO point and
prove recovery.

For each (dataset, seed) schedule the harness first records a clean run
through the fault injector to count its IO operations, then re-runs the
same scenario -- a durable build followed by durable inserts -- crashing
at each injection point in turn.  After every crash it reopens only the
bytes that were fsynced, lets recovery replay the committed WAL tail,
re-applies whatever documents the crash lost, and requires the query
results to be identical to a clean build of the full corpus.

A failure dumps the schedule (a complete reproduction recipe: seed +
crash_at) as JSON to ``$PRIX_CRASH_ARTIFACT`` so CI can upload it.

The matrix is intentionally written against the public surface
(``PrixIndex.build`` / ``insert_document`` / ``save`` / ``open_from``);
it holds the whole durability story together, so keep it honest: no
mocking, no peeking at volatile state after a crash.
"""

import io
import json
import os

import pytest

from repro.prix.index import IndexOptions, PrixIndex
from repro.storage.faults import CrashPoint, FaultSchedule, FaultyFile
from repro.storage.recovery import recover
from repro.storage.wal import WriteAheadLog, _HEADER
from repro.xmlkit.parser import parse_document

SEEDS = (11, 23, 47)
PAGE_SIZE = 256
POOL_PAGES = 48

#: Minimum injected IO points a schedule must expose (driver floor: 50).
MIN_POINTS = 50

#: Cap on full-scenario replays per schedule, to bound suite runtime;
#: points are sampled evenly (plus both ends) when a run has more.  The
#: CI crash-matrix job raises this to sweep every point.
MAX_RUNS = int(os.environ.get("PRIX_CRASH_MAX_RUNS", "70"))


def _docs(texts):
    return [parse_document(text, doc_id)
            for doc_id, text in enumerate(texts, start=1)]


class Dataset:
    def __init__(self, name, base, inserts, queries):
        self.name = name
        self.base_docs = _docs(base + inserts)[:len(base)]
        self.insert_docs = _docs(base + inserts)[len(base):]
        self.queries = queries

    @property
    def all_docs(self):
        return self.base_docs + self.insert_docs


DATASETS = [
    Dataset(
        "bib",
        base=[
            '<bib><book><author>knuth</author><title>taocp</title></book>'
            '<book><author>gray</author><title>txn</title></book></bib>',
            '<bib><book><author>date</author><title>intro</title></book>'
            '</bib>',
            '<bib><article><author>codd</author></article></bib>',
        ],
        inserts=[
            '<bib><book><author>gray</author><title>benchmarks</title>'
            '</book></bib>',
            '<bib><article><author>knuth</author><note>errata</note>'
            '</article></bib>',
        ],
        queries=['//book/author', '//book[./author="gray"]/title',
                 '//article/author'],
    ),
    Dataset(
        "deep",
        base=[
            '<r><a><b><c><d>x</d></c></b></a></r>',
            '<r><a><b><d>y</d></b></a><a><c/></a></r>',
            '<r><b><c><d>z</d></c></b></r>',
        ],
        inserts=[
            '<r><a><b><c><d>w</d></c></b></a><b><c/></b></r>',
            '<r><a><c><d>v</d></c></a></r>',
        ],
        queries=['//a//d', '//b[./c]', '//a/b/c/d'],
    ),
    Dataset(
        "mixed",
        base=[
            '<shop><item><name>bolt</name><price>2</price></item>'
            '<item><name>nut</name><price>1</price></item></shop>',
            '<shop><item><name>gear</name><price>9</price></item></shop>',
            '<shop><bin><item><name>bolt</name></item></bin></shop>',
        ],
        inserts=[
            '<shop><bin><item><name>cam</name><price>7</price></item>'
            '</bin></shop>',
            '<shop><item><name>axle</name><price>5</price></item></shop>',
        ],
        queries=['//item/name', '//item[./name="bolt"]',
                 '//bin//name'],
    ),
]


def query_results(index, queries):
    return {q: sorted((m.doc_id, m.canonical) for m in index.query(q))
            for q in queries}


def oracle_results(dataset):
    """Clean, non-durable rebuild of the full corpus: the ground truth."""
    with PrixIndex.build(dataset.all_docs,
                         IndexOptions(page_size=PAGE_SIZE,
                                      pool_pages=POOL_PAGES,
                                      labeler="dynamic")) as index:
        return query_results(index, dataset.queries)


def run_scenario(dataset, schedule):
    """Durable build of the base docs, then durable inserts, through the
    fault injector.

    Returns the two faulty files.  A :class:`CrashPoint` is absorbed
    here -- after it, the in-memory index is simply abandoned, exactly
    like a dead process, and only the files' durable bytes matter
    (``schedule.crashed`` tells the caller it happened).
    """
    data_file = FaultyFile(schedule, "data")
    wal_file = FaultyFile(schedule, "wal", droppable_fsync=False)
    files = {"data": data_file, "wal": wal_file}
    options = IndexOptions(durable=True, page_size=PAGE_SIZE,
                           pool_pages=POOL_PAGES, labeler="dynamic",
                           file_factory=files.__getitem__)
    try:
        index = PrixIndex.build(dataset.base_docs, options)
        for doc in dataset.insert_docs:
            index.insert_document(doc)
            index.save()
        index.close()
    except CrashPoint:
        pass
    return data_file, wal_file


def recover_and_complete(dataset, data_bytes, wal_bytes):
    """What an operator does after a crash: recover, re-apply what was
    lost, return the query results."""
    try:
        index = PrixIndex.open_from(io.BytesIO(data_bytes),
                                    io.BytesIO(wal_bytes),
                                    pool_pages=POOL_PAGES)
    except ValueError:
        # The crash predates the first committed save: there is no
        # superblock, so the recovered index is empty by construction
        # and the operator redoes the whole build.
        index = PrixIndex.build(dataset.all_docs,
                                IndexOptions(page_size=PAGE_SIZE,
                                             pool_pages=POOL_PAGES,
                                             labeler="dynamic"))
    else:
        present = set(index._doc_ids)
        for doc in dataset.all_docs:
            if doc.doc_id not in present:
                index.insert_document(doc)
                index.save()
    with index:
        return query_results(index, dataset.queries)


def dump_artifact(dataset, schedule, detail):
    path = os.environ.get("PRIX_CRASH_ARTIFACT")
    if not path:
        return
    recipe = schedule.describe()
    recipe.update({"dataset": dataset.name, "detail": detail,
                   "page_size": PAGE_SIZE, "pool_pages": POOL_PAGES})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(recipe, handle, indent=2)


def sampled_points(total):
    if total <= MAX_RUNS:
        return list(range(total))
    stride = total / MAX_RUNS
    points = sorted({int(i * stride) for i in range(MAX_RUNS)}
                    | {0, total - 1})
    return points


@pytest.mark.parametrize("dataset", DATASETS, ids=lambda d: d.name)
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_matrix(dataset, seed):
    oracle = oracle_results(dataset)

    # Recording run: no crash, count the injection points and check the
    # fault-free durable scenario agrees with the oracle already.
    recording = FaultSchedule(seed, crash_at=None)
    data_file, wal_file = run_scenario(dataset, recording)
    total_ops = recording.ops
    assert total_ops >= MIN_POINTS, (
        f"schedule exposes only {total_ops} injection points; the "
        f"matrix needs at least {MIN_POINTS} to mean anything")
    clean = recover_and_complete(dataset, data_file.durable_bytes(),
                                 wal_file.durable_bytes())
    assert clean == oracle

    for crash_at in sampled_points(total_ops):
        schedule = FaultSchedule(seed, crash_at=crash_at)
        data_file, wal_file = run_scenario(dataset, schedule)
        assert schedule.crashed is not None, (
            f"crash_at={crash_at} never fired (ops drifted?)")
        crash = schedule.crashed
        try:
            got = recover_and_complete(dataset,
                                       data_file.durable_bytes(),
                                       wal_file.durable_bytes())
            assert got == oracle
        except Exception as error:
            dump_artifact(dataset, schedule,
                          f"{crash.kind} at op {crash.op_index} on "
                          f"{crash.name}: {error}")
            raise


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_survives_its_own_crash(seed):
    """Crash recovery mid-replay, then recover again: idempotence."""
    dataset = DATASETS[0]
    oracle = oracle_results(dataset)

    # Crash the scenario in its middle, deterministically per seed,
    # so the durable images hold a committed-but-unapplied WAL tail.
    recording = FaultSchedule(seed, crash_at=None)
    run_scenario(dataset, recording)
    schedule = FaultSchedule(seed, crash_at=recording.ops // 2)
    data_file, wal_file = run_scenario(dataset, schedule)
    assert schedule.crashed is not None
    durable_data = data_file.durable_bytes()
    durable_wal = wal_file.durable_bytes()

    # (_parse_header is a pure static parse, not an acquired handle)
    header = WriteAheadLog._parse_header(  # prixlint: disable=resource-safety
        durable_wal[:_HEADER.size])
    assert header is not None, "mid-run crash left no durable log header"
    page_size = header[1]

    for recovery_crash in (0, 2, 5):
        inner = FaultSchedule(seed + 1000, crash_at=recovery_crash)
        faulty_data = FaultyFile.from_bytes(inner, durable_data, "data")
        with WriteAheadLog(io.BytesIO(durable_wal), page_size) as wal:
            try:
                recover(faulty_data, wal)
            except CrashPoint:
                pass
        # Whatever the second crash left durable, recovering again (and
        # once more inside open_from) must still converge on the oracle.
        got = recover_and_complete(dataset, faulty_data.durable_bytes(),
                                   durable_wal)
        assert got == oracle
