"""Synthetic corpus tests: determinism, structure signatures, needles."""

import pytest

from repro.datasets import (corpus_stats, dblp, get_corpus, list_corpora,
                            swissprot, treebank)
from repro.datasets.dblp import NEEDLE_AUTHOR, NEEDLE_TITLE, NEEDLE_YEAR
from repro.datasets.swissprot import (NEEDLE_AUTHOR_A, NEEDLE_AUTHOR_B,
                                      NEEDLE_KEYWORD, NEEDLE_ORG)
from repro.xmlkit.serializer import serialize


class TestDeterminism:
    @pytest.mark.parametrize("generator", [dblp, swissprot, treebank])
    def test_same_seed_same_corpus(self, generator):
        first = generator(30)
        second = generator(30)
        assert len(first) == len(second)
        for doc_a, doc_b in zip(first.documents, second.documents):
            assert serialize(doc_a) == serialize(doc_b)

    def test_different_seed_differs(self):
        assert serialize(dblp(30, seed=1).documents[5]) != \
            serialize(dblp(30, seed=2).documents[5])


class TestDBLP:
    def test_q1_needles_planted_exactly(self):
        corpus = dblp(200, q1_matches=6)
        hits = 0
        for doc in corpus.documents:
            has_author = any(
                n.is_value and n.tag == NEEDLE_AUTHOR and
                n.parent.tag == "author"
                for n in doc.nodes_in_postorder())
            has_year = any(
                n.is_value and n.tag == NEEDLE_YEAR and
                n.parent.tag == "year"
                for n in doc.nodes_in_postorder())
            if has_author and has_year and doc.root.tag == "inproceedings":
                hits += 1
        assert hits == 6

    def test_q3_title_planted_exactly(self):
        corpus = dblp(200, q3_matches=1)
        hits = sum(1 for doc in corpus.documents
                   for n in doc.nodes_in_postorder()
                   if n.is_value and n.tag == NEEDLE_TITLE)
        assert hits == 1

    def test_www_records_scattered(self):
        corpus = dblp(500, www_fraction=0.02)
        positions = [i for i, doc in enumerate(corpus.documents)
                     if doc.root.tag == "www"]
        assert len(positions) == 10
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert min(gaps) > 10  # spread out, not clumped

    def test_shallow_depth(self):
        stats = corpus_stats(dblp(100))
        assert stats.max_depth <= 4

    def test_records_structurally_similar(self):
        """Most records share a small set of shapes (trie sharing)."""
        from repro.prufer.sequence import regular_sequence
        corpus = dblp(300)
        shapes = {regular_sequence(doc).lps for doc in corpus.documents}
        assert len(shapes) < len(corpus.documents) / 4


class TestSwissprot:
    def test_q4_keyword_planted(self):
        corpus = swissprot(100, q4_matches=3)
        hits = sum(1 for doc in corpus.documents
                   for n in doc.nodes_in_postorder()
                   if n.is_value and n.tag == NEEDLE_KEYWORD)
        assert hits == 3

    def test_q5_coauthors_planted(self):
        corpus = swissprot(100, q5_matches=5)
        hits = 0
        for doc in corpus.documents:
            for node in doc.nodes_in_postorder():
                if node.tag != "Ref":
                    continue
                authors = {child.children[0].tag
                           for child in node.children
                           if child.tag == "Author" and child.children}
                if NEEDLE_AUTHOR_A in authors and NEEDLE_AUTHOR_B in authors:
                    hits += 1
        assert hits == 5

    def test_piroplasmida_scattered_with_near_misses(self):
        corpus = swissprot(200, piroplasmida_entries=8,
                           piroplasmida_full=2)
        full = 0
        near = 0
        for doc in corpus.documents:
            has_org = any(n.is_value and n.tag == NEEDLE_ORG
                          for n in doc.nodes_in_postorder())
            if not has_org:
                continue
            has_author = doc.root.find("Author") is not None
            if has_author:
                full += 1
            else:
                near += 1
        assert full == 2
        assert near == 6

    def test_bushy_and_shallow(self):
        stats = corpus_stats(swissprot(50))
        assert stats.max_depth <= 5
        # Heavy attribute use, as in the paper's snapshot.
        assert stats.n_attributes > 0.2 * stats.n_elements


class TestTreebank:
    def test_deep_recursion(self):
        corpus = treebank(200)
        stats = corpus_stats(corpus)
        assert stats.max_depth >= 10
        assert stats.n_attributes == 0

    def test_recursive_tags_at_multiple_levels(self):
        corpus = treebank(100)
        np_levels = {n.level for doc in corpus.documents
                     for n in doc.nodes_in_postorder() if n.tag == "NP"}
        assert len(np_levels) >= 4

    def test_template_sharing(self):
        from repro.prufer.sequence import regular_sequence
        corpus = treebank(300, n_templates=20)
        shapes = {regular_sequence(doc).lps for doc in corpus.documents}
        # Far fewer distinct sequences than documents.
        assert len(shapes) < 120

    def test_values_are_opaque_tokens(self):
        corpus = treebank(20)
        for doc in corpus.documents:
            for node in doc.nodes_in_postorder():
                if node.is_value:
                    assert node.tag.startswith("VAL")


class TestRegistry:
    def test_list_corpora(self):
        assert list_corpora() == ["dblp", "swissprot", "treebank"]

    def test_named_scales(self):
        corpus = get_corpus("dblp", "tiny")
        assert len(corpus) == 120

    def test_integer_scale(self):
        assert len(get_corpus("treebank", 33)) == 33

    def test_unknown_corpus(self):
        with pytest.raises(KeyError):
            get_corpus("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_corpus("dblp", "galactic")


class TestTable2Stats:
    def test_stats_fields(self):
        stats = corpus_stats(dblp(50))
        assert stats.name == "dblp"
        assert stats.n_sequences == 50
        assert stats.size_bytes > 0
        assert stats.size_mbytes == stats.size_bytes / (1024 * 1024)

    def test_characteristic_ordering(self):
        """The Table 2 signature: TREEBANK much deeper than the others;
        one sequence per document everywhere."""
        dblp_stats = corpus_stats(dblp(100))
        swiss_stats = corpus_stats(swissprot(40))
        tree_stats = corpus_stats(treebank(60))
        assert tree_stats.max_depth > 2 * dblp_stats.max_depth
        assert tree_stats.max_depth > 2 * swiss_stats.max_depth
