"""Query plan tests: match-tree construction, specs, MaxGap pair kinds."""

import pytest

from repro.prix.plan import (REL_ANCESTOR, REL_CHILD, REL_SIBLING,
                             REL_UNPRUNABLE, build_plan)
from repro.query.twig import collapse
from repro.query.xpath import parse_xpath
from repro.xmlkit.tree import VALUE_LABEL_PREFIX


def plan_for(xpath, extended=False):
    return build_plan(collapse(parse_xpath(xpath)), extended=extended)


class TestRegularPlans:
    def test_path_plan_sequences(self):
        plan = plan_for("//a/b/c")
        assert plan.qlps == ("b", "a")
        assert plan.qnps == (2, 3)
        assert plan.root_number == 3

    def test_twig_plan_sequences(self):
        # a[./b]/c -> postorder b=1, c=2, a=3; LPS = (a, a).
        plan = plan_for("//a[./b]/c")
        assert plan.qlps == ("a", "a")
        assert plan.qnps == (3, 3)

    def test_leaf_checks_cover_leaves(self):
        plan = plan_for("//a[./b]/c")
        assert sorted(check.number for check in plan.leaf_checks) == [1, 2]
        assert {check.label for check in plan.leaf_checks} == {"b", "c"}

    def test_star_leaf_check(self):
        plan = plan_for("//a/*")
        (check,) = plan.leaf_checks
        assert check.is_star and check.label is None

    def test_single_step_query_rejected(self):
        with pytest.raises(ValueError):
            plan_for("//a")

    def test_internal_numbers(self):
        plan = plan_for("//a/b/c")
        assert plan.internal_numbers == {2, 3}


class TestExtendedPlans:
    def test_dummies_added_under_leaves(self):
        plan = plan_for("//a[./b]/c", extended=True)
        # b and c each gain a dummy child: 5 nodes, LPS covers b, c.
        assert plan.n_nodes == 5
        assert plan.qlps == ("b", "a", "c", "a")
        assert not plan.leaf_checks  # nothing left for leaf refinement

    def test_value_leaf_in_lps(self):
        plan = plan_for('//a[./b="x"]', extended=True)
        assert VALUE_LABEL_PREFIX + "x" in plan.qlps

    def test_star_leaves_not_extended(self):
        plan = plan_for("//a/*", extended=True)
        (check,) = plan.leaf_checks
        assert check.is_star

    def test_plan_flagged_extended(self):
        assert plan_for("//a/b", extended=True).extended
        assert not plan_for("//a/b").extended


class TestRelationshipKinds:
    def test_siblings(self):
        # a[./b][./c]: positions 1,2 are sibling leaves under a.
        plan = plan_for("//a[./b][./c]")
        assert plan.rel_kinds == (REL_SIBLING,)

    def test_child_pair_on_path(self):
        # a/b/c: q1=c (child of b), q2=b -> child case with plain edge.
        plan = plan_for("//a/b/c")
        assert plan.rel_kinds == (REL_CHILD,)

    def test_child_pair_unprunable_with_descendant_edge(self):
        # a//b/c: b's edge to a is a descendant edge, so the (c,b) pair
        # cannot be pruned with MaxGap's child bound.
        plan = plan_for("//a//b/c")
        assert plan.rel_kinds == (REL_UNPRUNABLE,)

    def test_ancestor_pair(self):
        # a[./b/x][./c]: q1=x, q2=b, q3=c, q4=a; pair (q2,q3):
        # parent(q2)=a is a proper ancestor of... actually parent(q3)=a
        # equals parent(q2)? q2=b has parent a; q3=c parent a -> sibling.
        # Use a[./b/x]/c with deeper left branch for the ancestor case:
        # x=1 (parent b), b=2 (parent a), c=3 (parent a), a=4.
        # pair (q1,q2): parent(x)=b, q2==b -> child.
        # pair (q2,q3): parent(b)=a == parent(c) -> sibling.
        plan = plan_for("//a[./b/x]/c")
        assert plan.rel_kinds == (REL_CHILD, REL_SIBLING)

    def test_true_ancestor_kind(self):
        # a[./b][./c/d]: postorder b=1, d=2, c=3, a=4.
        # pair (q1,q2): parent(b)=a, parent(d)=c, a proper ancestor of c.
        plan = plan_for("//a[./b][./c/d]")
        assert plan.rel_kinds[0] == REL_ANCESTOR

    def test_plain_flag(self):
        assert plan_for("//a/b[./c]").plain
        assert not plan_for("//a//b").plain

    def test_absolute_flag(self):
        assert plan_for("/a/b").absolute
        assert not plan_for("//a/b").absolute
