"""Key codec tests: order preservation is what the B+-trees rely on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.codec import (decode_key, decode_varints, encode_int,
                                 encode_key, encode_str, encode_varints,
                                 split_varints)


class TestIntEncoding:
    def test_order_preserved(self):
        values = [0, 1, 2, 255, 256, 2 ** 32, 2 ** 63, 2 ** 64 - 1]
        encoded = [encode_int(v) for v in values]
        assert encoded == sorted(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_int(-1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_int(2 ** 64)


class TestStrEncoding:
    def test_prefix_sorts_first(self):
        assert encode_str("ab") < encode_str("abc")

    def test_embedded_nul_handled(self):
        assert decode_key(encode_key("a\x00b")) == ("a\x00b",)

    def test_nul_ordering(self):
        # "a" < "a\x00" < "ab" must survive encoding.
        keys = [encode_str("a"), encode_str("a\x00"), encode_str("ab")]
        assert keys == sorted(keys)


class TestCompositeKeys:
    def test_roundtrip(self):
        key = encode_key("tag", 42, "suffix")
        assert decode_key(key) == ("tag", 42, "suffix")

    def test_component_order_dominates(self):
        assert encode_key("a", 99) < encode_key("b", 0)

    def test_int_within_same_prefix(self):
        assert encode_key("a", 1) < encode_key("a", 2)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_key(1.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            encode_key(True)


class TestVarints:
    def test_roundtrip_simple(self):
        values = [0, 1, 127, 128, 300, 2 ** 20]
        assert decode_varints(encode_varints(values)) == values

    def test_empty(self):
        assert decode_varints(encode_varints([])) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varints([-1])

    def test_truncated_stream_rejected(self):
        with pytest.raises(ValueError):
            decode_varints(b"\x80")


class TestBoundaryRoundtrips:
    """Edges the WAL payload codec leans on (see storage/wal.py)."""

    def test_zero_length_payload_after_varints(self):
        # A REC_PAGE payload is varint(page_id) + image; an empty
        # remainder must decode cleanly, not raise.
        data = encode_varints([42])
        (values, end) = split_varints(data, 1)
        assert values == [42]
        assert data[end:] == b""

    def test_split_reads_exactly_count(self):
        data = encode_varints([1, 300, 0]) + b"payload"
        values, end = split_varints(data, 3)
        assert values == [1, 300, 0]
        assert data[end:] == b"payload"

    def test_split_with_start_offset(self):
        data = b"\xff\xff" + encode_varints([7])
        values, end = split_varints(data, 1, start=2)
        assert values == [7]
        assert end == len(data)

    def test_split_truncated_raises(self):
        with pytest.raises(ValueError):
            split_varints(b"\x80", 1)

    def test_split_count_beyond_stream_raises(self):
        with pytest.raises(ValueError):
            split_varints(encode_varints([5]), 2)

    def test_max_width_varints(self):
        # 2**64 - 1 needs ten 7-bit groups: the widest varint the page
        # ids and commit sequence numbers can ever produce.
        top = 2 ** 64 - 1
        encoded = encode_varints([top, 0, top])
        assert len(encoded) == 10 + 1 + 10
        values, end = split_varints(encoded, 3)
        assert values == [top, 0, top]
        assert end == len(encoded)

    def test_single_byte_boundary(self):
        assert len(encode_varints([127])) == 1
        assert len(encode_varints([128])) == 2

    def test_non_ascii_tags_roundtrip(self):
        for tag in ("bücher", "記事", "café-menu"):
            assert decode_key(encode_key(tag, 3)) == (tag, 3)

    def test_non_ascii_order_is_bytewise(self):
        tags = sorted(["a", "z", "é", "記"],
                      key=lambda t: t.encode("utf-8"))
        encoded = [encode_str(t) for t in tags]
        assert encoded == sorted(encoded)

    def test_empty_string_component(self):
        assert decode_key(encode_key("", 0)) == ("", 0)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(
    st.text(max_size=8),
    st.integers(min_value=0, max_value=2 ** 64 - 1)), min_size=2, max_size=6))
def test_composite_key_order_matches_tuple_order(pairs):
    encoded = [(encode_key(text, number), (text, number))
               for text, number in pairs]
    by_bytes = sorted(encoded, key=lambda item: item[0])
    by_tuple = sorted(encoded, key=lambda item: item[1])
    assert [item[1] for item in by_bytes] == [item[1] for item in by_tuple]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=50))
def test_varint_roundtrip_property(values):
    assert decode_varints(encode_varints(values)) == values
