"""Shared helpers for the test suite (importable without packaging)."""

import random

from repro.xmlkit.tree import Document, XMLNode


def make_random_tree(rng, max_nodes=16, tags="abcd", value_p=0.2,
                     values=("v1", "v2", "v3")):
    """Random ordered labeled tree (shared by differential tests)."""
    root = XMLNode(rng.choice(tags))
    nodes = [root]
    for _ in range(rng.randint(1, max_nodes)):
        parent = rng.choice([n for n in nodes if not n.is_value])
        if rng.random() < value_p:
            child = XMLNode(rng.choice(values), is_value=True)
        else:
            child = XMLNode(rng.choice(tags))
        parent.append(child)
        nodes.append(child)
    return root


def make_random_document(seed, doc_id=1, **kwargs):
    rng = random.Random(seed)
    return Document(make_random_tree(rng, **kwargs), doc_id=doc_id)


#: Mutation operators for :func:`mutate_text`, chosen per seed.
MUTATION_OPS = ("truncate", "delete", "duplicate", "insert_byte",
                "insert_nul", "swap", "close_tag", "break_entity")


def mutate_text(rng, text, mutations=1):
    """Seeded structural damage to a text blob (fuzz-test input maker).

    Applies ``mutations`` random operators: truncation, byte deletion /
    duplication / insertion, NUL injection, adjacent swaps, a stray
    close tag, or chopping the text mid-entity.  Deterministic for a
    given ``rng`` state, so a failing seed is a reproduction recipe.
    """
    for _ in range(mutations):
        if not text:
            return "<"
        op = rng.choice(MUTATION_OPS)
        pos = rng.randrange(len(text))
        if op == "truncate":
            text = text[:max(1, pos)]
        elif op == "delete":
            text = text[:pos] + text[pos + 1:]
        elif op == "duplicate":
            text = text[:pos] + text[pos] + text[pos:]
        elif op == "insert_byte":
            text = text[:pos] + rng.choice("<>&/'\"=x ") + text[pos:]
        elif op == "insert_nul":
            text = text[:pos] + "\x00" + text[pos:]
        elif op == "swap" and len(text) > pos + 1:
            text = (text[:pos] + text[pos + 1] + text[pos]
                    + text[pos + 2:])
        elif op == "close_tag":
            tag = rng.choice("abcd")
            text = text[:pos] + f"</{tag}>" + text[pos:]
        elif op == "break_entity":
            amp = text.find("&")
            cut = amp + 1 if amp >= 0 else pos
            text = text[:cut]
    return text


def make_random_twig(rng, max_nodes=5, tags="abcd", star_p=0.15,
                     value_p=0.12, descendant_p=0.35, absolute_p=0.15,
                     values=("v1", "v2", "v3")):
    """Random twig pattern over the same alphabet as make_random_tree."""
    from repro.query.twig import Axis, TwigNode, TwigPattern

    root = TwigNode(rng.choice(tags))
    nodes = [root]
    for _ in range(rng.randint(1, max_nodes)):
        parents = [n for n in nodes if not n.is_value and not n.is_star]
        parent = rng.choice(parents)
        axis = Axis.DESCENDANT if rng.random() < descendant_p else Axis.CHILD
        roll = rng.random()
        if roll < value_p:
            child = TwigNode(rng.choice(values), axis=axis, is_value=True)
        elif roll < value_p + star_p:
            child = TwigNode("*", axis=axis)
        else:
            child = TwigNode(rng.choice(tags), axis=axis)
        parent.append(child)
        nodes.append(child)
    return TwigPattern(root, absolute=rng.random() < absolute_p,
                       source="random")
